//! Offline stand-in for `criterion`.
//!
//! Provides the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! best-of-N wall-clock timing (no statistics, no HTML reports): good
//! enough to run the benches end-to-end and spot order-of-magnitude
//! regressions.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation; reported as elements/sec or bytes/sec.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set how many timed samples to take (min 2: one warmup discarded).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark and print its best sample time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed < best {
                best = b.elapsed;
            }
        }
        let mut line = format!("  {name}: {best:?}");
        match self.throughput {
            Some(Throughput::Elements(n)) if best > Duration::ZERO => {
                let rate = n as f64 / best.as_secs_f64();
                line.push_str(&format!("  ({rate:.0} elem/s)"));
            }
            Some(Throughput::Bytes(n)) if best > Duration::ZERO => {
                let rate = n as f64 / best.as_secs_f64();
                line.push_str(&format!("  ({rate:.0} B/s)"));
            }
            _ => {}
        }
        println!("{line}");
        self
    }

    /// End the group (reporting already happened per-function).
    pub fn finish(&mut self) {}
}

/// Handed to each benchmark closure; times the routine passed to `iter`.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `routine` (real criterion runs many
    /// iterations per sample; one is enough for a smoke-level shim).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// Collect benchmark functions into a named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut runs = 0u32;
        g.sample_size(3).bench_function("count", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
        assert_eq!(runs, 3);
    }
}
