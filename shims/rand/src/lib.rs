//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the narrow slice of `rand`'s API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`RngCore::next_u64`],
//! [`Rng::gen`] for `f64`/`u64`/`bool`, and [`Rng::gen_range`] over integer
//! ranges.
//!
//! [`rngs::StdRng`] is **bit-compatible with rand 0.8**: ChaCha12 keyed via
//! rand_core's PCG32-based `seed_from_u64`, read through the same block-
//! buffer word order, with `gen_range` using the same widening-multiply
//! rejection sampler. Given the same seed and call sequence it reproduces
//! the upstream stream exactly, so simulation results calibrated against
//! real `rand` carry over unchanged.

use std::ops::Range;

/// Core trait: a source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (PCG32 key expansion, matching
    /// rand_core 0.6).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over the full range,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range` (half-open).
    fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1); rand's
        // multiply-based Standard sampler.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        // rand samples the sign bit of a u32 (MSBs beat LSBs on weak RNGs).
        (rng.next_u32() as i32) < 0
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformRange: Sized {
    /// Uniform sample from the half-open range.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

// rand 0.8's `UniformInt::sample_single_inclusive`: widening multiply
// with a bitmask zone, one fresh draw per rejection. Implemented per
// "large" working width so draws consume exactly the same words as
// upstream (u8/u16 widen to u32; u32/u64/usize sample at their own
// width).
macro_rules! impl_uniform_small {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            #[inline]
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - 1).wrapping_sub(range.start).wrapping_add(1) as u32;
                if span == 0 {
                    return rng.next_u32() as $t;
                }
                // Small types reject by exact modulo (rand's `<= u16` arm).
                let zone = u32::MAX - (u32::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u32();
                    let m = (v as u64) * (span as u64);
                    let (hi, lo) = ((m >> 32) as u32, m as u32);
                    if lo <= zone {
                        return range.start.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}
impl_uniform_small!(u8, u16);

impl UniformRange for u32 {
    #[inline]
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - 1).wrapping_sub(range.start).wrapping_add(1);
        if span == 0 {
            return rng.next_u32();
        }
        let zone = (span << span.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u32();
            let m = (v as u64) * (span as u64);
            let (hi, lo) = ((m >> 32) as u32, m as u32);
            if lo <= zone {
                return range.start.wrapping_add(hi);
            }
        }
    }
}

macro_rules! impl_uniform_wide {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            #[inline]
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = ((range.end - 1).wrapping_sub(range.start) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let zone = (span << span.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = (v as u128) * (span as u128);
                    let (hi, lo) = ((m >> 64) as u64, m as u64);
                    if lo <= zone {
                        return range.start.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}
impl_uniform_wide!(u64, usize);

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    const BLOCK_WORDS: usize = 16;
    /// rand_chacha refills four blocks at a time; the concatenation equals
    /// the sequential ChaCha stream, so buffer size only affects when the
    /// `next_u64` word-straddle case can occur — keep it identical.
    const BUF_WORDS: usize = 64;

    /// The workspace's standard generator: ChaCha12, bit-compatible with
    /// rand 0.8's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; BUF_WORDS],
        index: usize,
    }

    impl StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS, // empty: first draw refills
            }
        }

        /// One ChaCha12 block for the current key at block index `ctr`.
        fn block(&self, ctr: u64, out: &mut [u32]) {
            let mut x = [
                0x6170_7865,
                0x3320_646e,
                0x7962_2d32,
                0x6b20_6574,
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                ctr as u32,
                (ctr >> 32) as u32,
                0,
                0,
            ];
            let initial = x;

            #[inline(always)]
            fn qr(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
                x[a] = x[a].wrapping_add(x[b]);
                x[d] = (x[d] ^ x[a]).rotate_left(16);
                x[c] = x[c].wrapping_add(x[d]);
                x[b] = (x[b] ^ x[c]).rotate_left(12);
                x[a] = x[a].wrapping_add(x[b]);
                x[d] = (x[d] ^ x[a]).rotate_left(8);
                x[c] = x[c].wrapping_add(x[d]);
                x[b] = (x[b] ^ x[c]).rotate_left(7);
            }

            for _ in 0..6 {
                // 6 double rounds = 12 rounds
                qr(&mut x, 0, 4, 8, 12);
                qr(&mut x, 1, 5, 9, 13);
                qr(&mut x, 2, 6, 10, 14);
                qr(&mut x, 3, 7, 11, 15);
                qr(&mut x, 0, 5, 10, 15);
                qr(&mut x, 1, 6, 11, 12);
                qr(&mut x, 2, 7, 8, 13);
                qr(&mut x, 3, 4, 9, 14);
            }
            for (o, (w, i)) in out.iter_mut().zip(x.iter().zip(initial.iter())) {
                *o = w.wrapping_add(*i);
            }
        }

        fn refill(&mut self) {
            for b in 0..BUF_WORDS / BLOCK_WORDS {
                let ctr = self.counter.wrapping_add(b as u64);
                let start = b * BLOCK_WORDS;
                let mut blk = [0u32; BLOCK_WORDS];
                self.block(ctr, &mut blk);
                self.buf[start..start + BLOCK_WORDS].copy_from_slice(&blk);
            }
            self.counter = self.counter.wrapping_add((BUF_WORDS / BLOCK_WORDS) as u64);
            self.index = 0;
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_core 0.6: expand via PCG32, 4 bytes per step, LE.
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            StdRng::from_seed(seed)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            // rand_core BlockRng: low word first, with the buffer-boundary
            // straddle reading the last word then the first of a refill.
            if self.index < BUF_WORDS - 1 {
                let lo = self.buf[self.index] as u64;
                let hi = self.buf[self.index + 1] as u64;
                self.index += 2;
                (hi << 32) | lo
            } else if self.index >= BUF_WORDS {
                self.refill();
                let lo = self.buf[0] as u64;
                let hi = self.buf[1] as u64;
                self.index = 2;
                (hi << 32) | lo
            } else {
                let lo = self.buf[BUF_WORDS - 1] as u64;
                self.refill();
                let hi = self.buf[0] as u64;
                self.index = 1;
                (hi << 32) | lo
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let i = r.gen_range(0usize..7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
