//! Offline stand-in for `serde`.
//!
//! Real serde's visitor-based data model is far more than this workspace
//! needs: the only consumer is the bench harness persisting result structs
//! as JSON. This stand-in collapses the model to a concrete [`Value`]
//! tree: `Serialize` converts a value into the tree, and `serde_json`
//! (the sibling shim) renders the tree. The `#[derive(Serialize)]` macro
//! from `serde_derive` emits the field-by-field conversion for structs
//! with named fields.

pub use serde_derive::Serialize;

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point (non-finite values render as `null`, as real
    /// serde_json rejects them).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on an array; `None` out of range or for non-arrays.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// Numeric view: `UInt`, `Int` and `Float` all coerce to `f64`
    /// (counters in result files are integers, rates are floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned-integer view (exact; floats only if integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::Float(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object view (insertion-ordered key/value pairs).
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}
impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(3u64.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u32, 2.5f64).to_value(),
            Value::Array(vec![Value::UInt(1), Value::Float(2.5)])
        );
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::Float(0.5)),
            ("n".into(), Value::UInt(7)),
            ("s".into(), Value::Str("x".into())),
            ("l".into(), Value::Array(vec![Value::Int(-1)])),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(0.5));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("l").and_then(|l| l.at(0)).and_then(Value::as_f64),
            Some(-1.0)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.at(0), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Float(1.5).as_u64(), None);
        assert_eq!(Value::Float(3.0).as_u64(), Some(3));
    }
}
