//! Strategies: composable value generators sampled per test case.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of values for property tests. Unlike real proptest there
/// is no value tree / shrinking — `sample` draws one concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Box this strategy (type-erased arm for [`Union`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed arms (`prop_oneof!` backing type).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from already-boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }

    /// Box one arm (helper for the `prop_oneof!` macro so each arm can
    /// be a different concrete strategy type).
    pub fn boxed<S: Strategy<Value = V> + 'static>(s: S) -> BoxedStrategy<V> {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple!(A / 0);
impl_tuple!(A / 0, B / 1);
impl_tuple!(A / 0, B / 1, C / 2);
impl_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_map_compose() {
        let mut rng = TestRng::new(1);
        let s = (0u64..8, 40u32..1500).prop_map(|(a, b)| (a, b + 1));
        for _ in 0..200 {
            let (a, b) = s.sample(&mut rng);
            assert!(a < 8);
            assert!((41..=1500).contains(&b));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::new(2);
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
