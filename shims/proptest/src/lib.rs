//! Offline stand-in for `proptest`.
//!
//! Provides the API surface this workspace's property tests use — the
//! `proptest!` macro, range/`any`/`vec`/tuple/`prop_oneof`/`prop_map`
//! strategies, `prop_assert*` and `ProptestConfig` — backed by a plain
//! seeded RNG. Differences from real proptest:
//!
//! - **No shrinking.** A failing case reports its arguments and the
//!   deterministic per-test seed instead of a minimized example.
//! - **Deterministic by default.** Case `i` of test `f` always uses the
//!   same seed (derived from the test name), so failures reproduce
//!   without a persistence file.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below((self.len.end - self.len.start) as u64) as usize + self.len.start;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, min..max)`: a vector of `element` samples.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` module path used inside tests.
        pub use crate::collection;
    }
}

/// One strategy arm picked uniformly (the `prop_oneof!` building block).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::boxed($arm)),+
        ])
    };
}

/// Property assertion: returns a [`test_runner::TestCaseError`] instead of
/// panicking, so helper functions can propagate with `?`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// The `proptest!` block: each contained `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let base = $crate::test_runner::fnv1a(stringify!($name));
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::new(base ^ ((case as u64) << 32));
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}
