//! Test-runner support types: the per-case RNG, config, and failure type.

/// Per-case deterministic RNG (xoshiro256++, SplitMix64-seeded).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically from a 64-bit value.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)` via rejection sampling (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a string — used to derive a stable per-test seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runner configuration; only `cases` is honored by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A property failure (the `Err` side of `prop_assert!`-style checks).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure with its message.
    Fail(String),
    /// Case rejected as invalid input (counted, not a failure, in real
    /// proptest; the shim treats it as a failure too since no test here
    /// uses rejection).
    Reject(String),
}

impl TestCaseError {
    /// Construct an assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }
}
