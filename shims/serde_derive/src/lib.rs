//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace uses:
//! structs with named fields and enums whose variants are all unit-like
//! (serialized as their name string). The input is parsed directly from
//! the token stream — no `syn`/`quote`, which are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the shim's value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility to find `struct`/`enum`.
    let mut kind = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // #[...]
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    i += 1;
                    break;
                }
                i += 1; // pub, crate, etc.
            }
            _ => i += 1,
        }
    }
    let kind = kind.expect("derive(Serialize): expected struct or enum");
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, got {other}"),
    };
    i += 1;

    // Find the brace-delimited body (skipping where-clauses would go here;
    // the workspace derives only on plain types).
    let body = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.stream(),
            TokenTree::Group(_) | TokenTree::Ident(_) | TokenTree::Punct(_) => i += 1,
            other => panic!("derive(Serialize): unexpected {other}"),
        }
    };

    let out = if kind == "struct" {
        let fields = named_fields(body);
        let entries: String = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value(&self.{f})),"
                )
            })
            .collect();
        format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
             serde::Value::Object(vec![{entries}])\n}}\n}}"
        )
    } else {
        let variants = unit_variants(body);
        let arms: String = variants
            .iter()
            .map(|v| format!("{name}::{v} => \"{v}\","))
            .collect();
        format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
             serde::Value::Str(::std::string::String::from(match self {{ {arms} }}))\n}}\n}}"
        )
    };
    out.parse()
        .expect("derive(Serialize): generated code parses")
}

/// Extract field names from a named-field struct body.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match toks.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s == "pub" {
                        // Possible pub(...) restriction group follows.
                        if let Some(TokenTree::Group(_)) = toks.peek() {
                            toks.next();
                        }
                    } else {
                        break s;
                    }
                }
                Some(other) => panic!("derive(Serialize): unexpected field token {other}"),
            }
        };
        fields.push(name);
        // Expect ':' then consume the type up to a top-level comma.
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive(Serialize): expected ':' after field, got {other:?}"),
        }
        let mut depth = 0i32; // < > nesting in the type
        loop {
            match toks.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Extract variant names from an all-unit-variant enum body.
fn unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    while let Some(t) = toks.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next();
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                // Unit variants only: next token must be ',' or end.
                match toks.next() {
                    None => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(other) => {
                        panic!("derive(Serialize): only unit enum variants supported, got {other}")
                    }
                }
            }
            other => panic!("derive(Serialize): unexpected enum token {other}"),
        }
    }
    variants
}
