//! Offline stand-in for `serde_json`: JSON rendering *and parsing* of the
//! [`serde`] shim's value tree. Output matches real serde_json for the
//! types the workspace serializes: compact `to_string`, two-space-indented
//! `to_string_pretty`, shortest-round-trip float formatting, and string
//! escaping per RFC 8259. [`from_str`] parses any RFC 8259 document back
//! into a [`Value`] (the reproduction gate reads `results/*.json` with it);
//! numbers without a fraction or exponent parse as integers, everything
//! else as `f64`, so serialize → parse round-trips the workspace's files.

pub use serde::Value;

use serde::Serialize;
use std::fmt::Write as _;

/// Serialization error. The value-tree model cannot actually fail, but
/// the `Result` shape mirrors real serde_json so call sites port over
/// unchanged.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` on f64 is shortest-round-trip, but prints integral
                // values without a fractional part; serde_json prints
                // `1.0`, not `1` — match that so parsers see a float.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// Parse a JSON document into a [`Value`].
///
/// Strict RFC 8259: one top-level value, surrounding whitespace allowed,
/// trailing garbage rejected. Errors carry the byte offset they occurred at.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a low surrogate.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if neg {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_shapes() {
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&(0.8f64, "x")).unwrap(), "[0.8,\"x\"]");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn pretty_indents() {
        let s = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_scalars_and_containers() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("1.0").unwrap(), Value::Float(1.0));
        assert_eq!(from_str("2.5e-3").unwrap(), Value::Float(0.0025));
        assert_eq!(from_str("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        assert_eq!(
            from_str("[1, 2]").unwrap(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            from_str("{\"k\": 0.5}").unwrap(),
            Value::Object(vec![("k".into(), Value::Float(0.5))])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1,}").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(from_str("\"\\u0041\"").unwrap(), Value::Str("A".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(
            from_str("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{1F600}".into())
        );
        assert!(from_str("\"\\ud83d\"").is_err());
    }

    #[test]
    fn round_trips_rendered_output() {
        let v = Value::Object(vec![
            ("design".into(), Value::Str("drop (in-band)".into())),
            ("param".into(), Value::Float(0.05)),
            ("util".into(), Value::Float(1.0)),
            ("count".into(), Value::UInt(672)),
            ("neg".into(), Value::Int(-3)),
            (
                "rows".into(),
                Value::Array(vec![Value::Float(0.5), Value::Null]),
            ),
        ]);
        for render in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&render).unwrap(), v);
        }
    }

    #[test]
    fn derived_struct_renders_named_fields() {
        #[derive(serde::Serialize)]
        struct P {
            x: u64,
            label: String,
        }
        let p = P {
            x: 7,
            label: "hi".into(),
        };
        assert_eq!(to_string(&p).unwrap(), "{\"x\":7,\"label\":\"hi\"}");
    }
}
