//! Offline stand-in for `serde_json`: JSON rendering of the [`serde`]
//! shim's value tree. Output matches real serde_json for the types the
//! workspace serializes: compact `to_string`, two-space-indented
//! `to_string_pretty`, shortest-round-trip float formatting, and string
//! escaping per RFC 8259.

use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Serialization error. The value-tree model cannot actually fail, but
/// the `Result` shape mirrors real serde_json so call sites port over
/// unchanged.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` on f64 is shortest-round-trip, but prints integral
                // values without a fractional part; serde_json prints
                // `1.0`, not `1` — match that so parsers see a float.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_shapes() {
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&(0.8f64, "x")).unwrap(), "[0.8,\"x\"]");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn pretty_indents() {
        let s = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn derived_struct_renders_named_fields() {
        #[derive(serde::Serialize)]
        struct P {
            x: u64,
            label: String,
        }
        let p = P {
            x: 7,
            label: "hi".into(),
        };
        assert_eq!(to_string(&p).unwrap(), "{\"x\":7,\"label\":\"hi\"}");
    }
}
