//! The stolen-bandwidth argument of §2.1.1, demonstrated on the packet
//! simulator: fair queueing isolates flows, so later small-flow arrivals
//! steal bandwidth from an already-admitted large flow — its loss jumps
//! to (r2−r1)/r2 even though the link was idle when it probed. Under
//! FIFO the same arrival pattern shares pain equally, which is exactly
//! why the paper rules fair queueing out for admission-controlled
//! traffic.
//!
//! ```sh
//! cargo run --release --example stolen_bandwidth
//! ```

use endpoint_admission::fluid::statics::fq_stolen_loss_fraction;
use endpoint_admission::netsim::{
    Agent, Api, DropTail, Drr, FlowId, Limit, Network, NodeId, Packet, Qdisc, Sim, TrafficClass,
};
use endpoint_admission::simcore::{SimDuration, SimRng, SimTime};
use std::any::Any;

/// Parameters of one CBR sender (driven by the Mux agent below).
struct Cbr {
    flow: u64,
    peer: NodeId,
    rate_bps: f64,
    pkt: u32,
    start: SimTime,
    seq: u64,
}

/// Counts received packets per flow.
struct CountingSink {
    counts: std::collections::HashMap<u64, u64>,
}
impl Agent for CountingSink {
    fn on_packet(&mut self, p: Packet, _api: &mut Api) {
        *self.counts.entry(p.flow.0).or_insert(0) += 1;
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Run the scenario with the given bottleneck qdisc. Returns the loss
/// fraction of the big flow over the contention period.
fn run(qdisc: Box<dyn Qdisc>, label: &str) -> f64 {
    const LINK: u64 = 1_000_000; // 1 Mbps bottleneck
    const BIG: f64 = 500_000.0; // one admitted big flow: r2 = 500 kbps
    const SMALL: f64 = 250_000.0; // small flows: r1 = 250 kbps (r2 = 2 r1)

    let mut net = Network::new();
    // One source node per flow so DRR sees distinct flows via FlowId.
    let src = net.add_node();
    let dst = net.add_node();
    net.add_link(src, dst, LINK, SimDuration::from_millis(10), qdisc, None);

    let mut sim = Sim::new(net);
    // Big flow starts at t=0 on an idle link (its "probe" would have seen
    // zero loss). Three small flows arrive at t=5s: offered 0.5+0.75 Mbps
    // on a 1 Mbps link.
    sim.attach(
        dst,
        Box::new(CountingSink {
            counts: std::collections::HashMap::new(),
        }),
    );
    // Bank all senders on the src node via a tiny multiplexer agent.
    // Each gap gets ±5% jitter: perfectly periodic CBR streams phase-lock
    // against the queue and make drop shares an artifact of alignment.
    struct Mux {
        senders: Vec<Cbr>,
        rng: SimRng,
    }
    impl Agent for Mux {
        fn on_start(&mut self, api: &mut Api) {
            for (i, s) in self.senders.iter().enumerate() {
                api.timer_at(s.start.max(api.now()), i as u32, 0);
            }
        }
        fn on_packet(&mut self, _p: Packet, _api: &mut Api) {}
        fn on_timer(&mut self, k: u32, _d: u64, api: &mut Api) {
            let s = &mut self.senders[k as usize];
            let p = Packet::new(
                s.seq,
                FlowId(s.flow),
                api.node,
                s.peer,
                s.pkt,
                TrafficClass::Data,
                s.seq,
                api.now(),
            );
            s.seq += 1;
            api.send(p);
            let nominal = s.pkt as f64 * 8.0 / s.rate_bps;
            let gap = SimDuration::from_secs_f64(nominal * self.rng.uniform_range(0.95, 1.05));
            api.timer_in(gap, k, 0);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mk = |flow: u64, rate: f64, start_s: f64| Cbr {
        flow,
        peer: dst,
        rate_bps: rate,
        pkt: 125,
        start: SimTime::from_secs_f64(start_s),
        seq: 0,
    };
    let senders = vec![
        mk(1, BIG, 0.0),
        mk(2, SMALL, 5.0),
        mk(3, SMALL, 5.0),
        mk(4, SMALL, 5.0),
    ];
    sim.attach(
        src,
        Box::new(Mux {
            senders,
            rng: SimRng::new(7),
        }),
    );

    // Measure the big flow over the contended window [10s, 40s].
    sim.run_until(SimTime::from_secs(10));
    let before = *sim
        .agent::<CountingSink>(dst)
        .unwrap()
        .counts
        .get(&1)
        .unwrap_or(&0);
    sim.run_until(SimTime::from_secs(40));
    let after = *sim
        .agent::<CountingSink>(dst)
        .unwrap()
        .counts
        .get(&1)
        .unwrap_or(&0);

    let received = (after - before) as f64;
    let sent = BIG * 30.0 / (125.0 * 8.0);
    let loss = 1.0 - received / sent;
    println!("{label:<18} big-flow loss over contention: {loss:.3}");
    loss
}

fn main() {
    println!("Stolen bandwidth (Section 2.1.1): a 500 kbps flow is admitted on");
    println!("an idle 1 Mbps link; three 250 kbps flows arrive later.\n");

    let fq_loss = run(
        Box::new(Drr::new(125, Limit::Packets(100))),
        "fair queueing:",
    );
    let fifo_loss = run(
        Box::new(DropTail::new(Limit::Packets(100))),
        "FIFO drop-tail:",
    );

    let predicted = fq_stolen_loss_fraction(250_000.0, 500_000.0);
    println!("\nthe paper's closed form predicts the fair-queueing case loses");
    println!("(r2-r1)/r2 = {predicted:.2} of the big flow's packets (observed {fq_loss:.3}).");
    println!("FIFO spreads the overload across all flows instead ({fifo_loss:.3}),");
    println!("which is why endpoint admission control must not run over");
    println!("per-flow fair queueing.");
    assert!(fq_loss > fifo_loss, "demo invariant violated");
}
