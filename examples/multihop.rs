//! Multi-hop probing (§4.6, Fig 10): long flows fight for admission
//! across three congested backbone links while cross traffic contends
//! with one. Prints the Table 5/6 rows for one design.
//!
//! ```sh
//! cargo run --release --example multihop
//! ```

use endpoint_admission::eac::multihop::{product_blocking, MultihopScenario};

fn main() {
    println!("12-node topology: 4 routers, 3 congested 10 Mbps backbone links.");
    println!("Cross flows cross one congested hop; long flows cross all three.");
    println!("EXP1 sources, slow-start probing, eps = 0. Running...\n");

    let report = MultihopScenario::tables56()
        .horizon_secs(1_200.0)
        .warmup_secs(300.0)
        .seed(7)
        .run()
        .expect("no watchdogs armed");

    println!(
        "backbone utilizations: {:?}\n",
        report
            .link_utils
            .iter()
            .map(|u| format!("{u:.3}"))
            .collect::<Vec<_>>()
    );

    println!(
        "{:<10} {:>9} {:>9} {:>12}",
        "group", "blocking", "loss", "hops"
    );
    for (g, hops) in report.groups.iter().zip([1, 1, 1, 3]) {
        println!(
            "{:<10} {:>9.3} {:>9.5} {:>12}",
            g.name, g.blocking, g.loss, hops
        );
    }

    let cross: Vec<f64> = (0..3).map(|i| report.groups[i].blocking).collect();
    let product = product_blocking(&cross);
    let long = report.groups[3].blocking;
    println!("\nper-hop product approximation for long flows: {product:.3}");
    println!("observed long-flow blocking:                  {long:.3}");
    println!("\nthe paper's two findings: the long path does not corrupt the");
    println!("admission signal (long loss ~ 3x short loss), and dropping");
    println!("designs discriminate against multi-hop flows somewhat more than");
    println!("the product approximation predicts.");
}
