//! The thrashing transition of §2.2.3 / Fig 1, from the fluid model:
//! sweep the mean probe duration and watch utilization collapse while
//! in-band loss climbs toward one.
//!
//! ```sh
//! cargo run --release --example thrashing
//! ```

use endpoint_admission::fluid::{fig1_sweep, ThrashModel};

fn main() {
    let m = ThrashModel::fig1(2.0);
    println!(
        "fluid model: link {} Mbps, flows {} kbps (max {} admitted),",
        m.capacity_bps / 1e6,
        m.flow_bps / 1e3,
        m.max_admitted()
    );
    println!(
        "Poisson arrivals every {:.3} s, exponential {} s lifetimes",
        1.0 / m.lambda,
        m.mean_lifetime_s
    );
    println!(
        "(offered load {:.1} flows). Sweeping probe duration...\n",
        m.offered_flows()
    );

    let xs = [1.0, 1.8, 2.2, 2.6, 3.0, 3.4, 3.6, 4.0, 5.0];
    let pts = fig1_sweep(&xs, 6_000.0, 6);

    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "probe-s", "utilization", "loss(in-band)", "E[probing]"
    );
    for p in &pts {
        let bar = "#".repeat((p.utilization * 40.0) as usize);
        println!(
            "{:>8.1} {:>12.3} {:>14.4} {:>12.1}  {bar}",
            p.mean_probe_s, p.utilization, p.loss_in_band, p.mean_probing
        );
    }

    println!();
    println!("below the transition probes are short enough that the probing");
    println!("population drains; past it, probing flows accumulate without");
    println!("bound, strangling admissions: utilization collapses and (with");
    println!("in-band probing) the loss fraction approaches one. Out-of-band");
    println!("probing starves instead: same utilization collapse, zero data");
    println!("loss.");
}
