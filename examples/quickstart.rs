//! Quickstart: run the paper's basic scenario (§4.1) under endpoint
//! admission control and under the MBAC benchmark, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use endpoint_admission::eac::design::Design;
use endpoint_admission::eac::probe::{Placement, ProbeStyle, Signal};
use endpoint_admission::eac::scenario::Scenario;

fn main() {
    // EXP1 sources (256 kbps bursts, 128 kbps average) arrive every 3.5 s
    // on average and live ~300 s, sharing a 10 Mbps bottleneck.
    // Each flow probes for 5 s with the slow-start ladder; the receiver
    // accepts it if the probe loss fraction stays within epsilon.
    let endpoint = Scenario::basic()
        .design(Design::endpoint(
            Signal::Drop,
            Placement::InBand,
            ProbeStyle::SlowStart,
            0.01,
        ))
        .horizon_secs(1_000.0)
        .warmup_secs(200.0)
        .seed(42);

    println!("running endpoint admission control (drop, in-band, eps=0.01)...");
    let r = endpoint.run().expect("no watchdogs armed");
    println!(
        "  utilization {:.3}, data loss {:.5}, blocking {:.3}, probe overhead {:.3}",
        r.utilization, r.data_loss, r.blocking, r.probe_overhead
    );

    // The router-based benchmark: Measured Sum with a 0.9 target.
    let mbac = Scenario::basic()
        .design(Design::mbac(0.9))
        .horizon_secs(1_000.0)
        .warmup_secs(200.0)
        .seed(42);

    println!("running the Measured Sum MBAC benchmark (eta=0.9)...");
    let m = mbac.run().expect("no watchdogs armed");
    println!(
        "  utilization {:.3}, data loss {:.5}, blocking {:.3}",
        m.utilization, m.data_loss, m.blocking
    );

    println!();
    println!("the paper's headline: the endpoint scheme loses only modestly");
    println!(
        "to the router-based benchmark — here {:.5} vs {:.5} loss at",
        r.data_loss, m.data_loss
    );
    println!(
        "{:.2} vs {:.2} utilization, with no router state at all.",
        r.utilization, m.utilization
    );
}
