//! Incremental deployment (§4.7, Fig 11): admission-controlled traffic
//! meets 20 TCP Reno flows at a legacy drop-tail router. Below a
//! critical ε the TCP-induced loss locks the probers out entirely; above
//! it the two populations share.
//!
//! ```sh
//! cargo run --release --example tcp_coexistence
//! ```

use endpoint_admission::eac::coexist::CoexistScenario;

fn main() {
    println!("legacy router: one 10 Mbps drop-tail FIFO shared by 20 TCP Reno");
    println!("flows (from t=0) and EXP1 admission-controlled flows probing");
    println!("in-band (from t=50s). Sweeping the acceptance threshold...\n");

    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "eps", "TCP util", "EAC util", "blocking"
    );
    let mut locked_out = 0;
    let mut sharing = 0;
    for eps in [0.0, 0.02, 0.05, 0.08, 0.10, 0.12] {
        let r = CoexistScenario::fig11(eps)
            .horizon_secs(800.0)
            .steady_after_secs(250.0)
            .seed(3)
            .run();
        println!(
            "{:>6.2} {:>10.3} {:>10.3} {:>10.3}",
            eps, r.tcp_util, r.eac_util, r.blocking
        );
        if r.eac_util < 0.02 {
            locked_out += 1;
        } else {
            sharing += 1;
        }
    }

    println!();
    println!("{locked_out} threshold(s) below the critical value (TCP keeps the link,");
    println!("the admission-controlled traffic surrenders gracefully);");
    println!("{sharing} above it (the two classes share the bandwidth).");
    println!("that is the paper's conclusion: at legacy routers endpoint");
    println!("admission control either shares fairly or backs off — it never");
    println!("starves TCP.");
}
