//! # endpoint-admission — umbrella crate
//!
//! Facade over the workspace that reproduces *Breslau, Knightly, Shenker,
//! Stoica, Zhang — "Endpoint Admission Control: Architectural Issues and
//! Performance" (SIGCOMM 2000)*.
//!
//! Re-exports every workspace crate so examples and downstream users can
//! depend on a single crate:
//!
//! - [`simcore`] — discrete-event engine (time, event queue, RNG, stats);
//! - [`netsim`] — packet-level network substrate (links, qdiscs, routing,
//!   agents);
//! - [`traffic`] — the paper's traffic sources (EXP1–4, POO1, video) and
//!   token buckets;
//! - [`tcpsim`] — TCP Reno endpoints for the incremental-deployment study;
//! - [`fluid`] — the analytical models of Section 2 (thrashing CTMC,
//!   stolen-bandwidth statics);
//! - [`eac`] — the paper's contribution: endpoint probing admission
//!   control, the MBAC baseline, scenario builders and metrics.
//!
//! ## Quickstart
//!
//! ```
//! use endpoint_admission::eac::design::Design;
//! use endpoint_admission::eac::probe::{Placement, ProbeStyle, Signal};
//! use endpoint_admission::eac::scenario::Scenario;
//!
//! let report = Scenario::basic()
//!     .design(Design::endpoint(
//!         Signal::Drop,
//!         Placement::InBand,
//!         ProbeStyle::SlowStart,
//!         0.01,
//!     ))
//!     .horizon_secs(60.0)
//!     .warmup_secs(20.0)
//!     .seed(1)
//!     .run()
//!     .expect("no watchdogs armed");
//! assert!(report.utilization >= 0.0 && report.utilization <= 1.5);
//! ```

pub use eac;
pub use fluid;
pub use netsim;
pub use simcore;
pub use tcpsim;
pub use traffic;
