//! # tcpsim — packet-level TCP Reno endpoints
//!
//! Fig 11 of the paper studies incremental deployment: admission-
//! controlled traffic sharing a legacy drop-tail queue with TCP Reno
//! flows. This crate provides the TCP half: a [`TcpSenderBank`] of
//! long-lived (FTP-style, infinite backlog) Reno senders and a
//! [`TcpSinkBank`] of receivers generating cumulative ACKs.
//!
//! The implementation follows the classic Reno algorithms as implemented
//! in ns-2: slow start, congestion avoidance, fast retransmit on three
//! duplicate ACKs, fast recovery (window inflation, deflation on new
//! ACK), and Jacobson/Karels RTO estimation with exponential backoff and
//! go-back-N after a timeout. Windows are counted in packets, as in ns-2.

pub mod reno;

pub use reno::{TcpSenderBank, TcpSinkBank, TcpStats};
