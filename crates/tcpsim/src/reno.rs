//! TCP Reno senders and receivers as netsim agents.

use netsim::{Agent, Api, FlowId, NodeId, Packet, TrafficClass};
use simcore::stats::Counter;
use simcore::{SimDuration, SimTime};
use std::any::Any;
use std::collections::{BTreeSet, HashMap};

/// Timer kinds.
mod timer {
    /// Retransmission timeout check for flow `data`.
    pub const RTO: u32 = 30;
    /// Initial start of flow `data`.
    pub const START: u32 = 31;
}

/// ACK packet size, bytes.
const ACK_BYTES: u32 = 40;
/// Minimum RTO, seconds.
const MIN_RTO_S: f64 = 0.5;
/// Maximum RTO after backoff, seconds.
const MAX_RTO_S: f64 = 60.0;
/// Initial RTO before any RTT sample, seconds.
const INITIAL_RTO_S: f64 = 1.0;
/// Initial congestion window, packets.
const INITIAL_CWND: f64 = 2.0;

/// Aggregate sender-side statistics (warm-up markable).
#[derive(Debug, Default)]
pub struct TcpStats {
    /// Data packets sent (including retransmissions).
    pub sent: Counter,
    /// Retransmitted packets.
    pub retransmits: Counter,
    /// Timeouts taken.
    pub timeouts: Counter,
    /// Fast retransmits taken.
    pub fast_retransmits: Counter,
    /// Unique data acked (delivered), packets.
    pub acked: Counter,
    /// Timer events of an unknown kind (counted and ignored).
    pub stray_timers: Counter,
}

impl TcpStats {
    /// Snapshot all counters.
    pub fn mark_all(&mut self) {
        self.sent.mark();
        self.retransmits.mark();
        self.timeouts.mark();
        self.fast_retransmits.mark();
        self.acked.mark();
        self.stray_timers.mark();
    }
}

struct TcpFlow {
    cwnd: f64,
    ssthresh: f64,
    /// Next new sequence to send.
    next_seq: u64,
    /// Oldest unacknowledged sequence.
    snd_una: u64,
    dupacks: u32,
    in_recovery: bool,
    srtt: Option<f64>,
    rttvar: f64,
    rto_s: f64,
    backoff: f64,
    /// Outstanding RTT measurement: (sequence, send time).
    timing: Option<(u64, SimTime)>,
    /// Current RTO deadline; timers earlier than this are stale.
    rto_deadline: Option<SimTime>,
}

impl TcpFlow {
    fn new() -> Self {
        TcpFlow {
            cwnd: INITIAL_CWND,
            ssthresh: 1e9,
            next_seq: 0,
            snd_una: 0,
            dupacks: 0,
            in_recovery: false,
            srtt: None,
            rttvar: 0.0,
            rto_s: INITIAL_RTO_S,
            backoff: 1.0,
            timing: None,
            rto_deadline: None,
        }
    }

    fn flight(&self) -> f64 {
        self.next_seq.saturating_sub(self.snd_una) as f64
    }

    fn update_rtt(&mut self, sample_s: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample_s);
                self.rttvar = sample_s / 2.0;
            }
            Some(srtt) => {
                let err = sample_s - srtt;
                self.srtt = Some(srtt + 0.125 * err);
                self.rttvar += 0.25 * (err.abs() - self.rttvar);
            }
        }
        self.rto_s = (self.srtt.expect("just set") + 4.0 * self.rttvar).max(MIN_RTO_S);
        self.backoff = 1.0;
    }

    fn effective_rto(&self) -> SimDuration {
        SimDuration::from_secs_f64((self.rto_s * self.backoff).min(MAX_RTO_S))
    }
}

/// A bank of long-lived Reno senders at one node, all transmitting to
/// `peer`. Flow ids are `flow_base + i`.
pub struct TcpSenderBank {
    peer: NodeId,
    flow_base: u64,
    nflows: usize,
    pkt_bytes: u32,
    start_at: SimTime,
    flows: HashMap<u64, TcpFlow>,
    /// Aggregate statistics.
    pub stats: TcpStats,
}

impl TcpSenderBank {
    /// `nflows` infinite-backlog senders of `pkt_bytes`-byte segments to
    /// `peer`, starting at `start_at`. `flow_base` must leave the flow-id
    /// space of other agents untouched.
    pub fn new(
        peer: NodeId,
        nflows: usize,
        pkt_bytes: u32,
        flow_base: u64,
        start_at: SimTime,
    ) -> Self {
        assert!(nflows > 0 && pkt_bytes > ACK_BYTES);
        TcpSenderBank {
            peer,
            flow_base,
            nflows,
            pkt_bytes,
            start_at,
            flows: HashMap::new(),
            stats: TcpStats::default(),
        }
    }

    /// Current congestion window of flow index `i` (for tests).
    pub fn cwnd(&self, i: usize) -> f64 {
        self.flows
            .get(&(self.flow_base + i as u64))
            .map(|f| f.cwnd)
            .unwrap_or(0.0)
    }

    fn send_segment(&mut self, id: u64, seq: u64, retransmit: bool, api: &mut Api) {
        let now = api.now();
        let pkt = Packet::new(
            seq,
            FlowId(id),
            api.node,
            self.peer,
            self.pkt_bytes,
            TrafficClass::BestEffort,
            seq,
            now,
        );
        self.stats.sent.inc();
        if retransmit {
            self.stats.retransmits.inc();
        }
        let flow = self.flows.get_mut(&id).expect("flow exists");
        if !retransmit && flow.timing.is_none() {
            flow.timing = Some((seq, now));
        }
        api.send(pkt);
    }

    fn arm_rto(&mut self, id: u64, api: &mut Api) {
        let flow = self.flows.get_mut(&id).expect("flow exists");
        let deadline = api.now() + flow.effective_rto();
        flow.rto_deadline = Some(deadline);
        api.timer_at(deadline, timer::RTO, id);
    }

    /// Send as much new data as the window allows.
    fn pump(&mut self, id: u64, api: &mut Api) {
        loop {
            let flow = self.flows.get(&id).expect("flow exists");
            let window = flow.cwnd.floor().max(1.0);
            if flow.flight() >= window {
                break;
            }
            let seq = flow.next_seq;
            self.flows.get_mut(&id).expect("flow exists").next_seq += 1;
            self.send_segment(id, seq, false, api);
        }
    }

    fn on_ack(&mut self, id: u64, ackno: u64, api: &mut Api) {
        let Some(flow) = self.flows.get_mut(&id) else {
            return;
        };
        if ackno > flow.snd_una {
            // New data acknowledged.
            let newly = ackno - flow.snd_una;
            flow.snd_una = ackno;
            // After a go-back-N timeout the cumulative ACK can jump past
            // next_seq (the receiver had buffered beyond the hole).
            flow.next_seq = flow.next_seq.max(ackno);
            flow.dupacks = 0;
            if let Some((tseq, tsent)) = flow.timing {
                if ackno > tseq {
                    let sample = api.now().since(tsent).as_secs_f64();
                    flow.update_rtt(sample);
                    flow.timing = None;
                }
            }
            if flow.in_recovery {
                // Plain Reno: leave fast recovery on the first new ACK,
                // deflating the window back to ssthresh.
                flow.in_recovery = false;
                flow.cwnd = flow.ssthresh;
            } else if flow.cwnd < flow.ssthresh {
                flow.cwnd += newly as f64; // slow start
            } else {
                flow.cwnd += newly as f64 / flow.cwnd; // congestion avoidance
            }
            self.stats.acked.add(newly);
            self.arm_rto(id, api);
            self.pump(id, api);
        } else if ackno == flow.snd_una {
            flow.dupacks += 1;
            if flow.in_recovery {
                // Window inflation per duplicate ACK.
                flow.cwnd += 1.0;
                self.pump(id, api);
            } else if flow.dupacks == 3 {
                // Fast retransmit + fast recovery.
                flow.ssthresh = (flow.flight() / 2.0).max(2.0);
                flow.cwnd = flow.ssthresh + 3.0;
                flow.in_recovery = true;
                let seq = flow.snd_una;
                self.stats.fast_retransmits.inc();
                self.send_segment(id, seq, true, api);
                self.arm_rto(id, api);
            }
        }
        // ackno < snd_una: stale ACK, ignore.
    }

    fn on_rto(&mut self, id: u64, api: &mut Api) {
        let now = api.now();
        let Some(flow) = self.flows.get_mut(&id) else {
            return;
        };
        // Stale timer (rearmed since it was scheduled)?
        match flow.rto_deadline {
            Some(d) if d <= now => {}
            _ => return,
        }
        if flow.flight() <= 0.0 {
            flow.rto_deadline = None;
            return;
        }
        // Timeout: multiplicative backoff, collapse to one segment,
        // go-back-N from the oldest unacked byte.
        flow.ssthresh = (flow.flight() / 2.0).max(2.0);
        flow.cwnd = 1.0;
        flow.dupacks = 0;
        flow.in_recovery = false;
        flow.backoff = (flow.backoff * 2.0).min(64.0);
        flow.timing = None;
        flow.next_seq = flow.snd_una + 1;
        let seq = flow.snd_una;
        self.stats.timeouts.inc();
        self.send_segment(id, seq, true, api);
        self.arm_rto(id, api);
    }
}

impl Agent for TcpSenderBank {
    fn on_start(&mut self, api: &mut Api) {
        for i in 0..self.nflows {
            let id = self.flow_base + i as u64;
            self.flows.insert(id, TcpFlow::new());
            // Stagger starts by one segment transmission to avoid phase
            // locking of initial windows.
            let jitter = SimDuration::from_micros(137 * i as u64);
            let at = self.start_at.max(api.now()) + jitter;
            api.timer_at(at, timer::START, id);
        }
    }

    fn on_packet(&mut self, pkt: Packet, api: &mut Api) {
        // Only ACKs arrive here.
        self.on_ack(pkt.flow.0, pkt.seq, api);
    }

    fn on_timer(&mut self, kind: u32, data: u64, api: &mut Api) {
        match kind {
            timer::START => {
                self.pump(data, api);
                self.arm_rto(data, api);
            }
            timer::RTO => self.on_rto(data, api),
            // Count and ignore unknown timer kinds rather than aborting
            // the whole run over a wiring bug elsewhere.
            _ => self.stats.stray_timers.inc(),
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct SinkFlow {
    rcv_next: u64,
    ooo: BTreeSet<u64>,
}

/// Receiver bank: generates a cumulative ACK for every data segment.
pub struct TcpSinkBank {
    flows: HashMap<u64, SinkFlow>,
    /// Data bytes received in order (goodput accounting).
    pub goodput_bytes: Counter,
    /// Segments received (any order).
    pub segments: Counter,
}

impl TcpSinkBank {
    /// An empty receiver bank (flows materialise on first segment).
    pub fn new() -> Self {
        TcpSinkBank {
            flows: HashMap::new(),
            goodput_bytes: Counter::new(),
            segments: Counter::new(),
        }
    }
}

impl Default for TcpSinkBank {
    fn default() -> Self {
        Self::new()
    }
}

impl Agent for TcpSinkBank {
    fn on_packet(&mut self, pkt: Packet, api: &mut Api) {
        let flow = self.flows.entry(pkt.flow.0).or_insert(SinkFlow {
            rcv_next: 0,
            ooo: BTreeSet::new(),
        });
        self.segments.inc();
        let size = pkt.size as u64;
        if pkt.seq == flow.rcv_next {
            flow.rcv_next += 1;
            self.goodput_bytes.add(size);
            // Drain any buffered continuation.
            while flow.ooo.remove(&flow.rcv_next) {
                flow.rcv_next += 1;
                self.goodput_bytes.add(size);
            }
        } else if pkt.seq > flow.rcv_next {
            flow.ooo.insert(pkt.seq);
        }
        // Cumulative ACK for every arriving segment (no delayed ACKs).
        let ack = Packet::new(
            flow.rcv_next,
            pkt.flow,
            api.node,
            pkt.src,
            ACK_BYTES,
            TrafficClass::BestEffort,
            flow.rcv_next,
            api.now(),
        );
        api.send(ack);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{DropTail, Limit, Network, Qdisc, Sim};

    fn dumbbell(bottleneck_bps: u64, buffer: usize) -> (Sim, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let q: Box<dyn Qdisc> = Box::new(DropTail::new(Limit::Packets(buffer)));
        net.add_link(a, b, bottleneck_bps, SimDuration::from_millis(10), q, None);
        net.add_link(
            b,
            a,
            100_000_000,
            SimDuration::from_millis(10),
            Box::new(DropTail::new(Limit::Packets(10_000))),
            None,
        );
        (Sim::new(net), a, b)
    }

    #[test]
    fn single_flow_fills_the_pipe() {
        let (mut sim, a, b) = dumbbell(1_000_000, 50);
        sim.attach(
            a,
            Box::new(TcpSenderBank::new(b, 1, 1000, 1 << 48, SimTime::ZERO)),
        );
        sim.attach(b, Box::new(TcpSinkBank::new()));
        sim.run_until(SimTime::from_secs(30));
        let sink = sim.agent::<TcpSinkBank>(b).unwrap();
        let goodput = sink.goodput_bytes.total() as f64 * 8.0 / 30.0;
        // A single Reno flow should achieve most of 1 Mbps.
        assert!(goodput > 800_000.0, "goodput {goodput}");
        assert!(goodput <= 1_050_000.0, "goodput {goodput}");
    }

    #[test]
    fn loss_triggers_fast_retransmit_not_only_timeouts() {
        // Small buffer forces periodic drops.
        let (mut sim, a, b) = dumbbell(1_000_000, 10);
        sim.attach(
            a,
            Box::new(TcpSenderBank::new(b, 1, 1000, 1 << 48, SimTime::ZERO)),
        );
        sim.attach(b, Box::new(TcpSinkBank::new()));
        sim.run_until(SimTime::from_secs(60));
        let s = sim.agent::<TcpSenderBank>(a).unwrap();
        assert!(s.stats.retransmits.total() > 0, "no losses induced");
        assert!(
            s.stats.fast_retransmits.total() > s.stats.timeouts.total(),
            "fast retransmits {} vs timeouts {}",
            s.stats.fast_retransmits.total(),
            s.stats.timeouts.total()
        );
    }

    #[test]
    fn no_data_is_lost_end_to_end() {
        let (mut sim, a, b) = dumbbell(500_000, 8);
        sim.attach(
            a,
            Box::new(TcpSenderBank::new(b, 2, 1000, 1 << 48, SimTime::ZERO)),
        );
        sim.attach(b, Box::new(TcpSinkBank::new()));
        sim.run_until(SimTime::from_secs(40));
        // Reliable delivery: unique acked data never exceeds unique sent,
        // and the sink's in-order stream advanced substantially.
        let acked = {
            let s = sim.agent::<TcpSenderBank>(a).unwrap();
            s.stats.acked.total()
        };
        let sink = sim.agent::<TcpSinkBank>(b).unwrap();
        let delivered = sink.goodput_bytes.total() / 1000;
        assert!(acked > 500, "acked {acked}");
        // Everything acked was genuinely delivered in order.
        assert!(delivered >= acked, "delivered {delivered} < acked {acked}");
    }

    #[test]
    fn two_flows_share_roughly_fairly() {
        let (mut sim, a, b) = dumbbell(2_000_000, 40);
        sim.attach(
            a,
            Box::new(TcpSenderBank::new(b, 2, 1000, 1 << 48, SimTime::ZERO)),
        );
        sim.attach(b, Box::new(TcpSinkBank::new()));
        sim.run_until(SimTime::from_secs(120));
        let sink = sim.agent::<TcpSinkBank>(b).unwrap();
        // Both flows progressed: per-flow receive state exists and both
        // advanced far.
        let mins: Vec<u64> = sink.flows.values().map(|f| f.rcv_next).collect();
        assert_eq!(mins.len(), 2);
        let (lo, hi) = (*mins.iter().min().unwrap(), *mins.iter().max().unwrap());
        assert!(lo > 1000, "slow flow only {lo}");
        // Same-RTT Reno flows should be within ~3x of each other long-run.
        assert!(hi < lo * 3, "unfair split {lo} vs {hi}");
    }

    #[test]
    fn cwnd_grows_in_slow_start_without_loss() {
        let (mut sim, a, b) = dumbbell(100_000_000, 10_000);
        sim.attach(
            a,
            Box::new(TcpSenderBank::new(b, 1, 1000, 1 << 48, SimTime::ZERO)),
        );
        sim.attach(b, Box::new(TcpSinkBank::new()));
        sim.run_until(SimTime::from_secs(1));
        let s = sim.agent::<TcpSenderBank>(a).unwrap();
        assert!(s.cwnd(0) > 100.0, "cwnd {}", s.cwnd(0));
    }
}
