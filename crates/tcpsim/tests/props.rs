//! Property-based tests of TCP Reno: reliability and congestion-window
//! sanity across randomized bottleneck conditions.

use netsim::{DropTail, Limit, Network, NodeId, Qdisc, Sim};
use proptest::prelude::*;
use simcore::{SimDuration, SimTime};
use tcpsim::{TcpSenderBank, TcpSinkBank};

fn dumbbell(bps: u64, buffer: usize, delay_ms: u64) -> (Sim, NodeId, NodeId) {
    let mut net = Network::new();
    let a = net.add_node();
    let b = net.add_node();
    let q: Box<dyn Qdisc> = Box::new(DropTail::new(Limit::Packets(buffer)));
    net.add_link(a, b, bps, SimDuration::from_millis(delay_ms), q, None);
    net.add_link(
        b,
        a,
        1_000_000_000,
        SimDuration::from_millis(delay_ms),
        Box::new(DropTail::new(Limit::Packets(100_000))),
        None,
    );
    (Sim::new(net), a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Reliability: regardless of bottleneck rate, buffer and RTT, the
    /// amount of data the sender counts as acknowledged never exceeds the
    /// in-order bytes the receiver delivered, and the connection always
    /// makes progress.
    #[test]
    fn acked_data_was_delivered(
        bps_kb in 200u64..5_000,
        buffer in 4usize..64,
        delay_ms in 1u64..50,
        nflows in 1usize..4,
    ) {
        let (mut sim, a, b) = dumbbell(bps_kb * 1_000, buffer, delay_ms);
        sim.attach(a, Box::new(TcpSenderBank::new(b, nflows, 1_000, 1 << 48, SimTime::ZERO)));
        sim.attach(b, Box::new(TcpSinkBank::new()));
        sim.run_until(SimTime::from_secs(20));
        let acked = {
            let s = sim.agent::<TcpSenderBank>(a).unwrap();
            s.stats.acked.total()
        };
        let delivered_pkts = {
            let sink = sim.agent::<TcpSinkBank>(b).unwrap();
            sink.goodput_bytes.total() / 1_000
        };
        prop_assert!(acked > 0, "no progress");
        prop_assert!(delivered_pkts >= acked,
            "acked {acked} exceeds delivered {delivered_pkts}");
    }

    /// Goodput never exceeds the bottleneck rate (no phantom bandwidth).
    #[test]
    fn goodput_bounded_by_link(
        bps_kb in 200u64..5_000,
        buffer in 4usize..64,
    ) {
        let horizon = 20.0;
        let (mut sim, a, b) = dumbbell(bps_kb * 1_000, buffer, 10);
        sim.attach(a, Box::new(TcpSenderBank::new(b, 2, 1_000, 1 << 48, SimTime::ZERO)));
        sim.attach(b, Box::new(TcpSinkBank::new()));
        sim.run_until(SimTime::from_secs_f64(horizon));
        let sink = sim.agent::<TcpSinkBank>(b).unwrap();
        let goodput = sink.goodput_bytes.total() as f64 * 8.0 / horizon;
        prop_assert!(goodput <= bps_kb as f64 * 1_000.0 * 1.02,
            "goodput {goodput} exceeds link {}", bps_kb * 1_000);
    }

    /// With a tiny buffer the sender must take losses yet keep delivering
    /// (retransmissions recover every hole).
    #[test]
    fn recovers_from_heavy_loss(seed_buffer in 2usize..6) {
        let (mut sim, a, b) = dumbbell(500_000, seed_buffer, 5);
        sim.attach(a, Box::new(TcpSenderBank::new(b, 1, 1_000, 1 << 48, SimTime::ZERO)));
        sim.attach(b, Box::new(TcpSinkBank::new()));
        sim.run_until(SimTime::from_secs(60));
        let (retx, acked) = {
            let s = sim.agent::<TcpSenderBank>(a).unwrap();
            (s.stats.retransmits.total(), s.stats.acked.total())
        };
        prop_assert!(retx > 0, "tiny buffer should force losses");
        prop_assert!(acked > 1_000, "delivery stalled: {acked}");
    }
}
