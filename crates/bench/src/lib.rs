//! # eac-bench — the experiment harness
//!
//! One entry point per table and figure of the paper (see the
//! `experiments` binary), plus shared machinery: the workload catalogue
//! (§3.2/Table 2), the design sweeps (§3.2's ε grids), run-length
//! presets (`--quick` vs `--paper`), the work pool and [`sweep::Sweep`]
//! builder that parallelize every multi-run experiment deterministically,
//! aligned table printing and JSON persistence under `results/`.
//!
//! The reproduction gate lives in [`shapecheck`] (the spec language and
//! evaluator) and [`spec`] (the per-target catalog): `experiments --
//! check` replays EXPERIMENTS.md's verdicts against `results/*.json`.

pub mod catalog;
pub mod experiments;
pub mod output;
pub mod pool;
pub mod runner;
pub mod shapecheck;
pub mod spec;
pub mod sweep;
pub mod telemetry_session;

pub use catalog::{Workload, EPS_IN_BAND, EPS_OUT_OF_BAND, ETAS_MBAC};
pub use output::{print_table, save_json};
pub use pool::{available_jobs, default_jobs, set_default_jobs};
pub use runner::{loss_load_curve, run_seeds, run_seeds_isolated, Fidelity, SeedOutcome};
pub use shapecheck::{check_targets, TargetSpec, Verdicts};
pub use spec::catalog as spec_catalog;
pub use sweep::{Sweep, SweepResult, SweepTelemetry};
