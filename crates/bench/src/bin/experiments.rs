//! CLI regenerating every table and figure of the paper.
//!
//! ```text
//! experiments <target> [--smoke|--quick|--paper] [--jobs N] [--telemetry DIR]
//!
//! targets: fig1 fig2 fig3 fig4 fig5 fig6 fig7
//!          fig8a fig8b fig8c fig8d fig8e fig8f fig9 fig11
//!          table3 table4 tables56
//!          ablate-probe-duration ablate-vq-factor ablate-pushout ablate-buffer ablate-retry
//!          robust-flap robust-ctrl-loss
//!          bench-sweep  (pooled vs serial wall-clock, saves BENCH_sweep.json)
//!          all          (everything above except bench-sweep)
//!
//! --jobs N sets the worker count for every sweep (default: available
//! parallelism; --jobs 1 forces the serial path). Results are
//! byte-identical at any worker count.
//!
//! --telemetry DIR captures per-seed time-series (CSV), metrics (JSON)
//! and flight-recorder dumps for failed seeds under numbered sweep
//! subdirectories of DIR. Output is byte-identical at any --jobs value.
//! ```

use eac_bench::experiments as ex;
use eac_bench::pool;
use eac_bench::runner::Fidelity;

/// Parse `--jobs N` / `--jobs=N`; exits with usage on a malformed value.
fn parse_jobs(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = if a == "--jobs" {
            it.next().cloned()
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match val.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n >= 1 => return Some(n),
            _ => {
                eprintln!("--jobs takes a positive integer (got {val:?})");
                std::process::exit(2);
            }
        }
    }
    None
}

/// Parse `--telemetry DIR` / `--telemetry=DIR`; exits on a missing value.
fn parse_telemetry(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = if a == "--telemetry" {
            it.next().cloned()
        } else if let Some(v) = a.strip_prefix("--telemetry=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match val {
            Some(dir) if !dir.is_empty() && !dir.starts_with("--") => return Some(dir),
            _ => {
                eprintln!("--telemetry takes an output directory (got {val:?})");
                std::process::exit(2);
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fid = Fidelity::from_args(&args);
    if let Some(n) = parse_jobs(&args) {
        pool::set_default_jobs(n);
    }
    if let Some(dir) = parse_telemetry(&args) {
        eac_bench::telemetry_session::set_session_dir(dir);
    }
    let mut skip_value = false;
    let target = args
        .iter()
        .find(|a| {
            if skip_value {
                skip_value = false;
                return false;
            }
            if *a == "--jobs" || *a == "--telemetry" {
                skip_value = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .unwrap_or_else(|| {
            eprintln!(
                "usage: experiments <target> [--smoke|--quick|--paper] [--jobs N] [--telemetry DIR]"
            );
            eprintln!("targets: fig1 fig2 fig3 fig4..fig7 fig8a..fig8f fig9 fig11");
            eprintln!("         table3 table4 tables56 ablate-* robust-* bench-sweep all");
            std::process::exit(2);
        });

    let t0 = std::time::Instant::now();
    run(&target, fid);
    eprintln!(
        "\n[{target} done in {:.1?} at {fid:?} fidelity, {} worker(s)]",
        t0.elapsed(),
        pool::default_jobs()
    );
}

fn run(target: &str, fid: Fidelity) {
    match target {
        "fig1" => ex::fig1(fid),
        "fig2" => ex::fig2(fid),
        "fig3" => ex::fig3(fid),
        "fig4" => ex::fig4to7(4, fid),
        "fig5" => ex::fig4to7(5, fid),
        "fig6" => ex::fig4to7(6, fid),
        "fig7" => ex::fig4to7(7, fid),
        "fig8a" => ex::fig8('a', fid),
        "fig8b" => ex::fig8('b', fid),
        "fig8c" => ex::fig8('c', fid),
        "fig8d" => ex::fig8('d', fid),
        "fig8e" => ex::fig8('e', fid),
        "fig8f" => ex::fig8('f', fid),
        "fig9" => ex::fig9(fid),
        "fig11" => ex::fig11(fid),
        "table3" => ex::table3(fid),
        "table4" => ex::table4(fid),
        "tables56" => ex::tables56(fid),
        "ablate-probe-duration" => ex::ablate("probe-duration", fid),
        "ablate-vq-factor" => ex::ablate("vq-factor", fid),
        "ablate-pushout" => ex::ablate("pushout", fid),
        "ablate-buffer" => ex::ablate("buffer", fid),
        "ablate-retry" => ex::ablate("retry", fid),
        "robust-flap" => ex::robust_flap(fid),
        "robust-ctrl-loss" => ex::robust_ctrl_loss(fid),
        "bench-sweep" => ex::bench_sweep(fid),
        "all" => {
            for t in [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8a",
                "fig8b",
                "fig8c",
                "fig8d",
                "fig8e",
                "fig8f",
                "fig9",
                "table3",
                "table4",
                "tables56",
                "fig11",
                "ablate-probe-duration",
                "ablate-vq-factor",
                "ablate-pushout",
                "ablate-buffer",
                "ablate-retry",
                "robust-flap",
                "robust-ctrl-loss",
            ] {
                println!("\n=============== {t} ===============");
                run(t, fid);
            }
        }
        other => {
            eprintln!("unknown target '{other}'");
            std::process::exit(2);
        }
    }
}
