//! CLI regenerating every table and figure of the paper.
//!
//! ```text
//! experiments <target> [--smoke|--quick|--paper] [--jobs N] [--telemetry DIR]
//!
//! targets: fig1 fig2 fig3 fig4 fig5 fig6 fig7
//!          fig8a fig8b fig8c fig8d fig8e fig8f fig9 fig11
//!          table3 table4 tables56
//!          ablate-probe-duration ablate-vq-factor ablate-pushout ablate-buffer ablate-retry
//!          robust-flap robust-ctrl-loss
//!          bench-sweep  (pooled vs serial wall-clock, saves BENCH_sweep.json)
//!          all          (everything above except bench-sweep)
//!          check        (reproduction gate; see below)
//!
//! --jobs N sets the worker count for every sweep (default: available
//! parallelism; --jobs 1 forces the serial path). Results are
//! byte-identical at any worker count.
//!
//! --telemetry DIR captures per-seed time-series (CSV), metrics (JSON)
//! and flight-recorder dumps for failed seeds under numbered sweep
//! subdirectories of DIR. Output is byte-identical at any --jobs value.
//!
//! experiments check [--target T] [--write-docs]
//!
//! Evaluates the shape-spec catalog (`crates/bench/src/spec.rs`) against
//! the persisted `results/*.json` (honoring EAC_RESULTS_DIR) and exits
//! non-zero if any EXPERIMENTS.md claim no longer holds. Without
//! --target it also rewrites results/verdicts.json; with --write-docs it
//! additionally regenerates the verdict block between the GENERATED
//! VERDICTS markers in EXPERIMENTS.md (path override: EAC_DOCS_PATH).
//! ```

use eac_bench::experiments as ex;
use eac_bench::pool;
use eac_bench::runner::Fidelity;

/// Parse `--jobs N` / `--jobs=N`; exits with usage on a malformed value.
fn parse_jobs(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = if a == "--jobs" {
            it.next().cloned()
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match val.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n >= 1 => return Some(n),
            _ => {
                eprintln!("--jobs takes a positive integer (got {val:?})");
                std::process::exit(2);
            }
        }
    }
    None
}

/// Parse `--telemetry DIR` / `--telemetry=DIR`; exits on a missing value.
fn parse_telemetry(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = if a == "--telemetry" {
            it.next().cloned()
        } else if let Some(v) = a.strip_prefix("--telemetry=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match val {
            Some(dir) if !dir.is_empty() && !dir.starts_with("--") => return Some(dir),
            _ => {
                eprintln!("--telemetry takes an output directory (got {val:?})");
                std::process::exit(2);
            }
        }
    }
    None
}

/// Parse `--target T` / `--target=T` for the check mode.
fn parse_target(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = if a == "--target" {
            it.next().cloned()
        } else if let Some(v) = a.strip_prefix("--target=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match val {
            Some(t) if !t.is_empty() && !t.starts_with("--") => return Some(t),
            _ => {
                eprintln!("--target takes a target name (got {val:?})");
                std::process::exit(2);
            }
        }
    }
    None
}

/// The reproduction gate: evaluate the spec catalog against the results
/// directory, persist verdicts, optionally regenerate the docs block.
/// Exits 0 only if every checked claim holds.
fn run_check(args: &[String]) -> ! {
    use eac_bench::shapecheck;

    let specs = eac_bench::spec::catalog();
    let only = parse_target(args);
    if let Some(t) = &only {
        if !specs.iter().any(|s| s.target == t.as_str()) {
            eprintln!("unknown check target '{t}'");
            std::process::exit(2);
        }
    }
    let write_docs = args.iter().any(|a| a == "--write-docs");
    let dir = std::path::PathBuf::from(
        std::env::var("EAC_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
    );
    let verdicts = shapecheck::check_targets(&dir, &specs, only.as_deref());
    for t in &verdicts.results {
        println!(
            "{} {} ({}/{} checks)",
            if t.pass { "PASS" } else { "FAIL" },
            t.target,
            t.checks.iter().filter(|c| c.pass).count(),
            t.checks.len()
        );
        for c in t.checks.iter().filter(|c| !c.pass) {
            println!("     ✘ {} — {} [{}]", c.id, c.claim, c.detail);
        }
    }
    println!(
        "\n{}: {}/{} targets, {}/{} checks",
        if verdicts.pass { "PASS" } else { "FAIL" },
        verdicts.targets_passed,
        verdicts.targets_checked,
        verdicts.checks_passed,
        verdicts.checks_total
    );
    // A --target run is a partial view; don't overwrite the full verdicts.
    if only.is_none() {
        eac_bench::output::save_json("verdicts", &verdicts);
    }
    if write_docs {
        if only.is_some() {
            eprintln!("--write-docs needs the full catalog; drop --target");
            std::process::exit(2);
        }
        let path = std::env::var("EAC_DOCS_PATH").unwrap_or_else(|_| "EXPERIMENTS.md".to_string());
        let doc =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let updated = shapecheck::inject_docs(&doc, &shapecheck::render_docs(&verdicts))
            .unwrap_or_else(|e| panic!("cannot update {path}: {e}"));
        if updated != doc {
            std::fs::write(&path, &updated).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("updated {path}");
        } else {
            println!("{path} already up to date");
        }
    }
    std::process::exit(if verdicts.pass { 0 } else { 1 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check") {
        run_check(&args);
    }
    let fid = Fidelity::from_args(&args);
    if let Some(n) = parse_jobs(&args) {
        pool::set_default_jobs(n);
    }
    if let Some(dir) = parse_telemetry(&args) {
        eac_bench::telemetry_session::set_session_dir(dir);
    }
    let mut skip_value = false;
    let target = args
        .iter()
        .find(|a| {
            if skip_value {
                skip_value = false;
                return false;
            }
            if *a == "--jobs" || *a == "--telemetry" {
                skip_value = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .unwrap_or_else(|| {
            eprintln!(
                "usage: experiments <target> [--smoke|--quick|--paper] [--jobs N] [--telemetry DIR]"
            );
            eprintln!("targets: fig1 fig2 fig3 fig4..fig7 fig8a..fig8f fig9 fig11");
            eprintln!("         table3 table4 tables56 ablate-* robust-* bench-sweep all");
            eprintln!("         check [--target T] [--write-docs]  (reproduction gate)");
            std::process::exit(2);
        });

    let t0 = std::time::Instant::now();
    run(&target, fid);
    eprintln!(
        "\n[{target} done in {:.1?} at {fid:?} fidelity, {} worker(s)]",
        t0.elapsed(),
        pool::default_jobs()
    );
}

fn run(target: &str, fid: Fidelity) {
    match target {
        "fig1" => ex::fig1(fid),
        "fig2" => ex::fig2(fid),
        "fig3" => ex::fig3(fid),
        "fig4" => ex::fig4to7(4, fid),
        "fig5" => ex::fig4to7(5, fid),
        "fig6" => ex::fig4to7(6, fid),
        "fig7" => ex::fig4to7(7, fid),
        "fig8a" => ex::fig8('a', fid),
        "fig8b" => ex::fig8('b', fid),
        "fig8c" => ex::fig8('c', fid),
        "fig8d" => ex::fig8('d', fid),
        "fig8e" => ex::fig8('e', fid),
        "fig8f" => ex::fig8('f', fid),
        "fig9" => ex::fig9(fid),
        "fig11" => ex::fig11(fid),
        "table3" => ex::table3(fid),
        "table4" => ex::table4(fid),
        "tables56" => ex::tables56(fid),
        "ablate-probe-duration" => ex::ablate("probe-duration", fid),
        "ablate-vq-factor" => ex::ablate("vq-factor", fid),
        "ablate-pushout" => ex::ablate("pushout", fid),
        "ablate-buffer" => ex::ablate("buffer", fid),
        "ablate-retry" => ex::ablate("retry", fid),
        "robust-flap" => ex::robust_flap(fid),
        "robust-ctrl-loss" => ex::robust_ctrl_loss(fid),
        "bench-sweep" => ex::bench_sweep(fid),
        "all" => {
            for t in [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8a",
                "fig8b",
                "fig8c",
                "fig8d",
                "fig8e",
                "fig8f",
                "fig9",
                "table3",
                "table4",
                "tables56",
                "fig11",
                "ablate-probe-duration",
                "ablate-vq-factor",
                "ablate-pushout",
                "ablate-buffer",
                "ablate-retry",
                "robust-flap",
                "robust-ctrl-loss",
            ] {
                println!("\n=============== {t} ===============");
                run(t, fid);
            }
        }
        other => {
            eprintln!("unknown target '{other}'");
            std::process::exit(2);
        }
    }
}
