//! CLI regenerating every table and figure of the paper.
//!
//! ```text
//! experiments <target> [--smoke|--quick|--paper]
//!
//! targets: fig1 fig2 fig3 fig4 fig5 fig6 fig7
//!          fig8a fig8b fig8c fig8d fig8e fig8f fig9 fig11
//!          table3 table4 tables56
//!          ablate-probe-duration ablate-vq-factor ablate-pushout ablate-buffer ablate-retry
//!          robust-flap robust-ctrl-loss
//!          all          (everything above at the chosen fidelity)
//! ```

use eac_bench::experiments as ex;
use eac_bench::runner::Fidelity;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fid = Fidelity::from_args(&args);
    let target = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            eprintln!("usage: experiments <target> [--smoke|--quick|--paper]");
            eprintln!("targets: fig1 fig2 fig3 fig4..fig7 fig8a..fig8f fig9 fig11");
            eprintln!("         table3 table4 tables56 ablate-* robust-* all");
            std::process::exit(2);
        });

    let t0 = std::time::Instant::now();
    run(&target, fid);
    eprintln!(
        "\n[{target} done in {:.1?} at {fid:?} fidelity]",
        t0.elapsed()
    );
}

fn run(target: &str, fid: Fidelity) {
    match target {
        "fig1" => ex::fig1(fid),
        "fig2" => ex::fig2(fid),
        "fig3" => ex::fig3(fid),
        "fig4" => ex::fig4to7(4, fid),
        "fig5" => ex::fig4to7(5, fid),
        "fig6" => ex::fig4to7(6, fid),
        "fig7" => ex::fig4to7(7, fid),
        "fig8a" => ex::fig8('a', fid),
        "fig8b" => ex::fig8('b', fid),
        "fig8c" => ex::fig8('c', fid),
        "fig8d" => ex::fig8('d', fid),
        "fig8e" => ex::fig8('e', fid),
        "fig8f" => ex::fig8('f', fid),
        "fig9" => ex::fig9(fid),
        "fig11" => ex::fig11(fid),
        "table3" => ex::table3(fid),
        "table4" => ex::table4(fid),
        "tables56" => ex::tables56(fid),
        "ablate-probe-duration" => ex::ablate("probe-duration", fid),
        "ablate-vq-factor" => ex::ablate("vq-factor", fid),
        "ablate-pushout" => ex::ablate("pushout", fid),
        "ablate-buffer" => ex::ablate("buffer", fid),
        "ablate-retry" => ex::ablate("retry", fid),
        "robust-flap" => ex::robust_flap(fid),
        "robust-ctrl-loss" => ex::robust_ctrl_loss(fid),
        "all" => {
            for t in [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8a",
                "fig8b",
                "fig8c",
                "fig8d",
                "fig8e",
                "fig8f",
                "fig9",
                "table3",
                "table4",
                "tables56",
                "fig11",
                "ablate-probe-duration",
                "ablate-vq-factor",
                "ablate-pushout",
                "ablate-buffer",
                "ablate-retry",
                "robust-flap",
                "robust-ctrl-loss",
            ] {
                println!("\n=============== {t} ===============");
                run(t, fid);
            }
        }
        other => {
            eprintln!("unknown target '{other}'");
            std::process::exit(2);
        }
    }
}
