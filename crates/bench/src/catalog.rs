//! The workload catalogue (Table 2 of the paper) and the design sweeps.

use eac::design::{Design, Group};
use eac::probe::{Placement, ProbeStyle, Signal};
use eac::scenario::Scenario;
use traffic::SourceSpec;

/// ε grid for the in-band designs (§3.2).
pub const EPS_IN_BAND: [f64; 6] = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05];
/// ε grid for the out-of-band designs (§3.2).
pub const EPS_OUT_OF_BAND: [f64; 5] = [0.0, 0.05, 0.10, 0.15, 0.20];
/// η grid tracing the MBAC benchmark's loss-load curve.
pub const ETAS_MBAC: [f64; 6] = [0.75, 0.8, 0.85, 0.9, 0.95, 1.0];

/// The simulation scenarios of Table 2 (minus the fluid model and the
/// multi-hop/coexistence topologies, which have their own builders).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Fig 2: EXP1, τ = 3.5 s.
    Basic,
    /// Figs 4–7: EXP1, τ = 1.0 s (≈ 400 % offered load).
    HighLoad,
    /// Fig 8(a): EXP2 — four times the burst rate, same average.
    Exp2,
    /// Fig 8(b): EXP3 — twice burst and average, τ = 7.0 s.
    Exp3,
    /// Fig 8(c): POO1 — Pareto on/off, LRD aggregate.
    Poo1,
    /// Fig 8(d): the video-trace stand-in, τ = 8.0 s.
    StarWars,
    /// Fig 8(e): heterogeneous mix EXP1 + EXP2 + EXP4 + POO1.
    Hetero,
    /// Fig 8(f): low multiplexing — 1 Mbps link, τ = 35 s.
    LowMux,
}

impl Workload {
    /// All catalogued workloads (Fig 9's sweep).
    pub const ALL: [Workload; 8] = [
        Workload::Basic,
        Workload::Exp2,
        Workload::Exp3,
        Workload::Poo1,
        Workload::Hetero,
        Workload::LowMux,
        Workload::StarWars,
        Workload::HighLoad,
    ];

    /// Display name (matches the paper's figure labels).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Basic => "EXP1",
            Workload::HighLoad => "Heavy Load",
            Workload::Exp2 => "EXP2",
            Workload::Exp3 => "EXP3",
            Workload::Poo1 => "POO1",
            Workload::StarWars => "Star Wars",
            Workload::Hetero => "Heterogeneous",
            Workload::LowMux => "Low multiplexing",
        }
    }

    /// Build the scenario skeleton (design and run length set by caller).
    pub fn scenario(self) -> Scenario {
        let base = Scenario::basic();
        match self {
            Workload::Basic => base,
            Workload::HighLoad => base.tau(1.0),
            Workload::Exp2 => base.groups(vec![Group::new("EXP2", SourceSpec::exp2(), 1.0)]),
            Workload::Exp3 => base
                .groups(vec![Group::new("EXP3", SourceSpec::exp3(), 1.0)])
                .tau(7.0),
            Workload::Poo1 => base.groups(vec![Group::new("POO1", SourceSpec::poo1(), 1.0)]),
            Workload::StarWars => base
                .groups(vec![Group::new("StarWars", SourceSpec::starwars(), 1.0)])
                .tau(8.0),
            Workload::Hetero => base.groups(vec![
                Group::new("EXP1", SourceSpec::exp1(), 1.0),
                Group::new("EXP2", SourceSpec::exp2(), 1.0),
                Group::new("EXP4", SourceSpec::exp4(), 1.0),
                Group::new("POO1", SourceSpec::poo1(), 1.0),
            ]),
            Workload::LowMux => base.link_bps(1_000_000).tau(35.0),
        }
    }
}

/// The four endpoint prototype designs, with the probing `style` applied.
pub fn endpoint_designs(style: ProbeStyle) -> Vec<(&'static str, Signal, Placement)> {
    let _ = style;
    vec![
        ("drop (in band)", Signal::Drop, Placement::InBand),
        ("drop (out of band)", Signal::Drop, Placement::OutOfBand),
        ("mark (in band)", Signal::Mark, Placement::InBand),
        ("mark (out of band)", Signal::Mark, Placement::OutOfBand),
    ]
}

/// The ε grid appropriate to a placement.
pub fn eps_grid(placement: Placement) -> Vec<f64> {
    match placement {
        Placement::InBand => EPS_IN_BAND.to_vec(),
        Placement::OutOfBand => EPS_OUT_OF_BAND.to_vec(),
    }
}

/// Fig 9's fixed thresholds: ε = 0.01 in-band, ε = 0.05 out-of-band.
pub fn fig9_eps(placement: Placement) -> f64 {
    match placement {
        Placement::InBand => 0.01,
        Placement::OutOfBand => 0.05,
    }
}

/// Shorthand to build an endpoint design.
pub fn design(signal: Signal, placement: Placement, style: ProbeStyle, eps: f64) -> Design {
    Design::endpoint(signal, placement, style, eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_builds_every_workload() {
        for w in Workload::ALL {
            let s = w.scenario();
            assert!(!s.groups.is_empty(), "{w:?}");
            assert!(s.tau_s > 0.0);
        }
    }

    #[test]
    fn workload_parameters_match_table2() {
        assert_eq!(Workload::Basic.scenario().tau_s, 3.5);
        assert_eq!(Workload::HighLoad.scenario().tau_s, 1.0);
        assert_eq!(Workload::Exp3.scenario().tau_s, 7.0);
        assert_eq!(Workload::StarWars.scenario().tau_s, 8.0);
        assert_eq!(Workload::LowMux.scenario().tau_s, 35.0);
        assert_eq!(Workload::LowMux.scenario().link_bps, 1_000_000);
        assert_eq!(Workload::Hetero.scenario().groups.len(), 4);
    }

    #[test]
    fn eps_grids_match_section_3_2() {
        assert_eq!(
            eps_grid(Placement::InBand),
            vec![0.0, 0.01, 0.02, 0.03, 0.04, 0.05]
        );
        assert_eq!(
            eps_grid(Placement::OutOfBand),
            vec![0.0, 0.05, 0.10, 0.15, 0.20]
        );
    }
}
