//! Session-wide telemetry opt-in (the `--telemetry DIR` flag).
//!
//! The experiments binary runs many sweeps per target; rather than thread
//! a directory through every experiment function, the CLI registers one
//! session directory here and each [`Sweep`](crate::Sweep) that was not
//! given an explicit telemetry destination claims the next numbered
//! subdirectory (`sweep000`, `sweep001`, ...). Sweeps execute in program
//! order, so the numbering — and therefore the whole output tree — is
//! identical across reruns and worker counts.

use crate::sweep::SweepTelemetry;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static SESSION_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static SWEEP_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Enable session telemetry: every subsequent sweep without its own
/// [`Sweep::telemetry`](crate::Sweep::telemetry) destination writes into
/// a numbered subdirectory of `dir`. Also resets the numbering.
pub fn set_session_dir(dir: impl Into<PathBuf>) {
    *SESSION_DIR.lock().expect("session dir lock") = Some(dir.into());
    SWEEP_COUNTER.store(0, Ordering::Relaxed);
}

/// The registered session directory, if any.
pub fn session_dir() -> Option<PathBuf> {
    SESSION_DIR.lock().expect("session dir lock").clone()
}

/// Claim the next numbered sweep output config, if a session directory
/// is registered.
pub(crate) fn next_sweep_config() -> Option<SweepTelemetry> {
    let dir = session_dir()?;
    let n = SWEEP_COUNTER.fetch_add(1, Ordering::Relaxed);
    Some(SweepTelemetry::new(dir.join(format!("sweep{n:03}"))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_session_yields_no_config() {
        // Note: other tests in this binary must not set the session dir;
        // the experiments CLI is the only production caller.
        assert!(next_sweep_config().is_none() || session_dir().is_some());
    }
}
