//! Machine-checked reproduction gate: a declarative shape-spec language
//! evaluated over the result rows in `results/*.json`.
//!
//! EXPERIMENTS.md asserts that every figure and table reproduces the
//! paper's *shapes* — who wins, crossovers, direction of effects, order-
//! of-magnitude separations. This module turns those prose claims into
//! executable predicates:
//!
//! - [`monotone_increasing`] / [`monotone_decreasing`]`(x, y)` — a curve's
//!   direction (e.g. MBAC utilization rises with η);
//! - [`dominates`]`(a, b, metric, tol)` — design `a`'s best value beats
//!   design `b`'s best by at least a factor (e.g. out-of-band marking's
//!   loss floor sits decades below in-band dropping's);
//! - [`crossover_between`]`(x1, x2)` — a transition happens inside a given
//!   x-window (e.g. Fig 1's thrashing collapse, Fig 11's critical ε);
//! - [`within`]`(paper_value, rel_tol)` — a measured scalar lands near the
//!   paper's published number.
//!
//! The catalog in [`crate::spec`] holds one [`TargetSpec`] per experiment
//! target, each tagged with the EXPERIMENTS.md verdict code it encodes.
//! [`check_targets`] evaluates the specs against a results directory and
//! the `experiments -- check` mode turns the outcome into a CI exit code,
//! `results/verdicts.json`, and the generated verdict block between
//! [`DOCS_BEGIN`]/[`DOCS_END`] markers in EXPERIMENTS.md.

use eac::metrics::Report;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// One result row, flattened to named string and numeric fields.
///
/// Report-shaped rows expose `design`, `param`, `utilization`, ... plus
/// per-group fields `g0.loss`, `g0.blocking`, `g0.name`, ...; tuple rows
/// are named positionally by the target's [`RowShape::Tuple`] schema;
/// object rows expose their scalar members (booleans as 0/1).
#[derive(Clone, Debug, Default)]
pub struct Row {
    /// String-valued fields (design labels, group/scenario names).
    pub strs: BTreeMap<String, String>,
    /// Numeric fields.
    pub nums: BTreeMap<String, f64>,
}

/// How a target's JSON maps to [`Row`]s.
#[derive(Clone, Copy, Debug)]
pub enum RowShape {
    /// An array of serialized [`eac::metrics::Report`] objects.
    Reports,
    /// An array of fixed-arity arrays; cells named by position.
    Tuple(&'static [&'static str]),
    /// An array of flat objects (or a single object — one row). Scalar
    /// members become fields; nested arrays/objects are ignored.
    Objects,
}

/// A per-row expression (fields are [`Row::nums`] keys).
#[derive(Clone, Debug)]
pub enum Expr {
    /// The field itself.
    Field(&'static str),
    /// `num / den` (0/0 evaluates to 0; x/0 fails the check).
    Ratio(&'static str, &'static str),
    /// Mean of several fields.
    MeanOf(&'static [&'static str]),
    /// Max of several fields.
    MaxOf(&'static [&'static str]),
}

impl Expr {
    fn eval(&self, row: &Row) -> Result<f64, String> {
        let field = |name: &'static str| {
            row.nums
                .get(name)
                .copied()
                .ok_or_else(|| format!("missing field '{name}'"))
        };
        match self {
            Expr::Field(f) => field(f),
            Expr::Ratio(num, den) => {
                let (n, d) = (field(num)?, field(den)?);
                if d == 0.0 {
                    if n == 0.0 {
                        Ok(0.0)
                    } else {
                        Err(format!("ratio {num}/{den} divides by zero"))
                    }
                } else {
                    Ok(n / d)
                }
            }
            Expr::MeanOf(fs) => {
                let mut sum = 0.0;
                for f in *fs {
                    sum += field(f)?;
                }
                Ok(sum / fs.len() as f64)
            }
            Expr::MaxOf(fs) => {
                let mut best = f64::NEG_INFINITY;
                for f in *fs {
                    best = best.max(field(f)?);
                }
                Ok(best)
            }
        }
    }
}

/// Row filter. All set conditions must hold; [`Sel::block`] then slices
/// the filtered sequence (for files whose style/variant blocks are only
/// distinguishable by position, e.g. Figs 3–7).
#[derive(Clone, Debug, Default)]
pub struct Sel {
    design: Option<&'static str>,
    contains: Option<(&'static str, &'static str)>,
    range: Option<(&'static str, f64, f64)>,
    skip: usize,
    take: usize,
}

impl Sel {
    /// Every row.
    pub fn all() -> Sel {
        Sel::default()
    }

    /// Rows whose `design` field equals `name` exactly.
    pub fn design(name: &'static str) -> Sel {
        Sel {
            design: Some(name),
            ..Sel::default()
        }
    }

    /// Keep rows whose string field contains a substring.
    pub fn has(mut self, field: &'static str, needle: &'static str) -> Sel {
        self.contains = Some((field, needle));
        self
    }

    /// Keep rows whose numeric field lies in `[lo, hi]`.
    pub fn range(mut self, field: &'static str, lo: f64, hi: f64) -> Sel {
        self.range = Some((field, lo, hi));
        self
    }

    /// After filtering, keep `take` rows starting at `skip`.
    pub fn block(mut self, skip: usize, take: usize) -> Sel {
        self.skip = skip;
        self.take = take;
        self
    }

    fn apply<'r>(&self, rows: &'r [Row]) -> Vec<&'r Row> {
        let picked: Vec<&Row> = rows
            .iter()
            .filter(|r| {
                if let Some(d) = self.design {
                    if r.strs.get("design").map(String::as_str) != Some(d) {
                        return false;
                    }
                }
                if let Some((f, needle)) = self.contains {
                    if !r.strs.get(f).is_some_and(|s| s.contains(needle)) {
                        return false;
                    }
                }
                if let Some((f, lo, hi)) = self.range {
                    if !r.nums.get(f).is_some_and(|&x| x >= lo && x <= hi) {
                        return false;
                    }
                }
                true
            })
            .collect();
        if self.take == 0 {
            picked.into_iter().skip(self.skip).collect()
        } else {
            picked.into_iter().skip(self.skip).take(self.take).collect()
        }
    }
}

/// Aggregation over the selected rows' expression values.
#[derive(Clone, Copy, Debug)]
pub enum Agg {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Mean.
    Mean,
    /// First selected row (file order).
    First,
    /// Last selected row.
    Last,
    /// Sum.
    Sum,
    /// Number of selected rows (the expression is not evaluated).
    Count,
}

/// A scalar extracted from the rows: filter, evaluate, aggregate.
#[derive(Clone, Debug)]
pub struct Extract {
    /// Row filter.
    pub sel: Sel,
    /// Per-row expression.
    pub expr: Expr,
    /// Aggregation.
    pub agg: Agg,
}

/// Shorthand: aggregate a single field over a selection.
pub fn ext(sel: Sel, field: &'static str, agg: Agg) -> Extract {
    Extract {
        sel,
        expr: Expr::Field(field),
        agg,
    }
}

impl Extract {
    fn eval(&self, rows: &[Row]) -> Result<f64, String> {
        let picked = self.sel.apply(rows);
        if let Agg::Count = self.agg {
            return Ok(picked.len() as f64);
        }
        if picked.is_empty() {
            return Err(format!("selection matched no rows ({:?})", self.sel));
        }
        let vals: Vec<f64> = picked
            .iter()
            .map(|r| self.expr.eval(r))
            .collect::<Result<_, _>>()?;
        Ok(match self.agg {
            Agg::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
            Agg::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Agg::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
            Agg::First => vals[0],
            Agg::Last => *vals.last().unwrap(),
            Agg::Sum => vals.iter().sum(),
            Agg::Count => unreachable!(),
        })
    }
}

/// Comparison operator.
#[derive(Clone, Copy, Debug)]
pub enum Op {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

impl Op {
    fn holds(self, a: f64, b: f64) -> bool {
        match self {
            Op::Le => a <= b,
            Op::Ge => a >= b,
            Op::Lt => a < b,
            Op::Gt => a > b,
        }
    }

    fn sym(self) -> &'static str {
        match self {
            Op::Le => "<=",
            Op::Ge => ">=",
            Op::Lt => "<",
            Op::Gt => ">",
        }
    }
}

/// Right-hand side of a comparison.
#[derive(Clone, Debug)]
pub enum Rhs {
    /// A constant.
    Const(f64),
    /// Another extraction scaled by a factor.
    Scaled(Extract, f64),
}

/// A shape predicate over a target's rows.
#[derive(Clone, Debug)]
pub enum Pred {
    /// `lhs op rhs`.
    Cmp {
        /// Left scalar.
        lhs: Extract,
        /// Operator.
        op: Op,
        /// Right scalar.
        rhs: Rhs,
    },
    /// `|lhs - value| <= rel_tol * |value|`.
    Within {
        /// Measured scalar.
        lhs: Extract,
        /// Reference (paper) value.
        value: f64,
        /// Relative tolerance.
        rel_tol: f64,
    },
    /// Sorted by `x`, successive `y` values move in one direction
    /// (within an absolute tolerance `tol`).
    Monotone {
        /// Row filter.
        sel: Sel,
        /// Sort field.
        x: &'static str,
        /// Value field.
        y: &'static str,
        /// Direction.
        increasing: bool,
        /// Absolute backsliding tolerance.
        tol: f64,
    },
    /// `y` first rises through `threshold` at an `x` inside `[x1, x2]`.
    Crossover {
        /// Row filter.
        sel: Sel,
        /// Sort field.
        x: &'static str,
        /// Value field.
        y: &'static str,
        /// Level being crossed (rising).
        threshold: f64,
        /// Window start.
        x1: f64,
        /// Window end.
        x2: f64,
    },
    /// Every selected row satisfies `expr op value`.
    EachRow {
        /// Row filter.
        sel: Sel,
        /// Per-row expression.
        expr: Expr,
        /// Operator.
        op: Op,
        /// Constant bound.
        value: f64,
    },
    /// The selected row maximizing `metric` has `label` in `allowed`.
    ArgmaxIn {
        /// Row filter.
        sel: Sel,
        /// Metric to maximize.
        metric: &'static str,
        /// String field identifying the row.
        label: &'static str,
        /// Accepted identities.
        allowed: &'static [&'static str],
    },
}

/// `a`'s best (minimum) `metric` is at most `tol` times `b`'s best —
/// design `a` dominates design `b` on a lower-is-better metric.
pub fn dominates(a: Sel, b: Sel, metric: &'static str, tol: f64) -> Pred {
    Pred::Cmp {
        lhs: ext(a, metric, Agg::Min),
        op: Op::Le,
        rhs: Rhs::Scaled(ext(b, metric, Agg::Min), tol),
    }
}

/// `y` never decreases (beyond `tol`) as `x` grows over the selection.
pub fn monotone_increasing(sel: Sel, x: &'static str, y: &'static str, tol: f64) -> Pred {
    Pred::Monotone {
        sel,
        x,
        y,
        increasing: true,
        tol,
    }
}

/// `y` never increases (beyond `tol`) as `x` grows over the selection.
pub fn monotone_decreasing(sel: Sel, x: &'static str, y: &'static str, tol: f64) -> Pred {
    Pred::Monotone {
        sel,
        x,
        y,
        increasing: false,
        tol,
    }
}

/// The extraction lands within `rel_tol` of the paper's `value`.
pub fn within(lhs: Extract, value: f64, rel_tol: f64) -> Pred {
    Pred::Within {
        lhs,
        value,
        rel_tol,
    }
}

/// `y` (over all rows) first rises through `threshold` between `x1`, `x2`.
pub fn crossover_between(
    x: &'static str,
    y: &'static str,
    threshold: f64,
    x1: f64,
    x2: f64,
) -> Pred {
    Pred::Crossover {
        sel: Sel::all(),
        x,
        y,
        threshold,
        x1,
        x2,
    }
}

/// Deterministic value formatting for check details and generated docs.
fn fmtv(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e-3 && x.abs() < 1e6 {
        format!("{x:.4}")
    } else {
        format!("{x:.2e}")
    }
}

impl Pred {
    /// Evaluate against the rows: pass/fail plus a measured-value detail.
    /// Structural problems (missing fields, empty selections) fail the
    /// check with the problem as the detail — a gate must never pass on a
    /// file it cannot interpret.
    pub fn eval(&self, rows: &[Row]) -> (bool, String) {
        match self.try_eval(rows) {
            Ok(r) => r,
            Err(e) => (false, e),
        }
    }

    fn try_eval(&self, rows: &[Row]) -> Result<(bool, String), String> {
        match self {
            Pred::Cmp { lhs, op, rhs } => {
                let a = lhs.eval(rows)?;
                let (b, desc) = match rhs {
                    Rhs::Const(c) => (*c, fmtv(*c)),
                    Rhs::Scaled(e, k) => {
                        let v = e.eval(rows)?;
                        (v * k, format!("{} x {}", fmtv(*k), fmtv(v)))
                    }
                };
                Ok((op.holds(a, b), format!("{} {} {desc}", fmtv(a), op.sym())))
            }
            Pred::Within {
                lhs,
                value,
                rel_tol,
            } => {
                let a = lhs.eval(rows)?;
                let ok = (a - value).abs() <= rel_tol * value.abs();
                Ok((
                    ok,
                    format!(
                        "{} vs paper {} (tol {:.0}%)",
                        fmtv(a),
                        fmtv(*value),
                        rel_tol * 100.0
                    ),
                ))
            }
            Pred::Monotone {
                sel,
                x,
                y,
                increasing,
                tol,
            } => {
                let pts = sorted_points(sel, x, y, rows)?;
                for w in pts.windows(2) {
                    let (prev, next) = (w[0].1, w[1].1);
                    let bad = if *increasing {
                        next + tol < prev
                    } else {
                        next - tol > prev
                    };
                    if bad {
                        return Ok((
                            false,
                            format!(
                                "{y} moves {} -> {} at {x}={} against direction",
                                fmtv(prev),
                                fmtv(next),
                                fmtv(w[1].0)
                            ),
                        ));
                    }
                }
                Ok((
                    true,
                    format!(
                        "{y} {} over {} points",
                        if *increasing {
                            "non-decreasing"
                        } else {
                            "non-increasing"
                        },
                        pts.len()
                    ),
                ))
            }
            Pred::Crossover {
                sel,
                x,
                y,
                threshold,
                x1,
                x2,
            } => {
                let pts = sorted_points(sel, x, y, rows)?;
                if pts[0].1 >= *threshold {
                    return Ok((
                        false,
                        format!("{y} already {} at {x}={}", fmtv(pts[0].1), fmtv(pts[0].0)),
                    ));
                }
                for w in pts.windows(2) {
                    if w[0].1 < *threshold && w[1].1 >= *threshold {
                        let at = w[1].0;
                        let ok = at >= *x1 && at <= *x2;
                        return Ok((
                            ok,
                            format!(
                                "{y} crosses {} at {x}={} (window {}..{})",
                                fmtv(*threshold),
                                fmtv(at),
                                fmtv(*x1),
                                fmtv(*x2)
                            ),
                        ));
                    }
                }
                Ok((false, format!("{y} never crosses {}", fmtv(*threshold))))
            }
            Pred::EachRow {
                sel,
                expr,
                op,
                value,
            } => {
                let picked = sel.apply(rows);
                if picked.is_empty() {
                    return Err("selection matched no rows".into());
                }
                for (i, row) in picked.iter().enumerate() {
                    let v = expr.eval(row)?;
                    if !op.holds(v, *value) {
                        let who = row
                            .strs
                            .get("design")
                            .cloned()
                            .unwrap_or_else(|| format!("row {i}"));
                        return Ok((
                            false,
                            format!("{who}: {} !{} {}", fmtv(v), op.sym(), fmtv(*value)),
                        ));
                    }
                }
                Ok((
                    true,
                    format!("all {} rows {} {}", picked.len(), op.sym(), fmtv(*value)),
                ))
            }
            Pred::ArgmaxIn {
                sel,
                metric,
                label,
                allowed,
            } => {
                let picked = sel.apply(rows);
                if picked.is_empty() {
                    return Err("selection matched no rows".into());
                }
                let mut best: Option<(&Row, f64)> = None;
                for row in picked {
                    let v = Expr::Field(metric).eval(row)?;
                    if best.is_none_or(|(_, bv)| v > bv) {
                        best = Some((row, v));
                    }
                }
                let (row, v) = best.unwrap();
                let name = row
                    .strs
                    .get(*label)
                    .ok_or_else(|| format!("missing label field '{label}'"))?;
                Ok((
                    allowed.contains(&name.as_str()),
                    format!("max {metric} {} at '{name}'", fmtv(v)),
                ))
            }
        }
    }
}

fn sorted_points(
    sel: &Sel,
    x: &'static str,
    y: &'static str,
    rows: &[Row],
) -> Result<Vec<(f64, f64)>, String> {
    let picked = sel.apply(rows);
    if picked.len() < 2 {
        return Err(format!(
            "need >= 2 rows, selection matched {}",
            picked.len()
        ));
    }
    let mut pts: Vec<(f64, f64)> = picked
        .iter()
        .map(|r| Ok((Expr::Field(x).eval(r)?, Expr::Field(y).eval(r)?)))
        .collect::<Result<_, String>>()?;
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    Ok(pts)
}

/// One named invariant: a prose claim plus the predicate encoding it.
#[derive(Clone, Debug)]
pub struct Check {
    /// Stable identifier (`fig2.inband-floor`).
    pub id: &'static str,
    /// The EXPERIMENTS.md claim this encodes, in one sentence.
    pub claim: &'static str,
    /// The executable form.
    pub pred: Pred,
}

/// The spec for one experiment target.
#[derive(Clone, Debug)]
pub struct TargetSpec {
    /// Target name; rows load from `<dir>/<target>.json`.
    pub target: &'static str,
    /// The EXPERIMENTS.md verdict code this spec encodes ("✓" or "✓~").
    pub code: &'static str,
    /// Short title for the generated docs (the figure/table name).
    pub title: &'static str,
    /// How the JSON maps to rows.
    pub shape: RowShape,
    /// Derived per-row fields, added before checks run.
    pub derive: Vec<(&'static str, Expr)>,
    /// The invariants.
    pub checks: Vec<Check>,
}

/// Outcome of one check.
#[derive(Clone, Debug, Serialize)]
pub struct CheckResult {
    /// Check identifier.
    pub id: String,
    /// The claim being checked.
    pub claim: String,
    /// Whether it held.
    pub pass: bool,
    /// Measured values (or the structural error).
    pub detail: String,
}

/// Outcome of one target's spec.
#[derive(Clone, Debug, Serialize)]
pub struct TargetResult {
    /// Target name.
    pub target: String,
    /// Verdict code the spec encodes.
    pub code: String,
    /// Whether every check held.
    pub pass: bool,
    /// Title for docs.
    pub title: String,
    /// Per-check outcomes.
    pub checks: Vec<CheckResult>,
}

/// The file persisted as `results/verdicts.json`.
#[derive(Clone, Debug, Serialize)]
pub struct Verdicts {
    /// Whether every target passed.
    pub pass: bool,
    /// Targets checked / passed.
    pub targets_checked: usize,
    /// Count of passing targets.
    pub targets_passed: usize,
    /// Count of individual checks evaluated.
    pub checks_total: usize,
    /// Count of passing checks.
    pub checks_passed: usize,
    /// Per-target outcomes.
    pub results: Vec<TargetResult>,
}

/// Flatten one serialized [`Report`] into a [`Row`].
fn report_row(v: &Value) -> Result<Row, String> {
    let rep = Report::from_json(v)?;
    let mut row = Row::default();
    row.strs.insert("design".into(), rep.design.clone());
    let mut put = |k: &str, v: f64| {
        row.nums.insert(k.to_string(), v);
    };
    put("param", rep.param);
    put("utilization", rep.utilization);
    put("data_loss", rep.data_loss);
    put("link_loss", rep.link_loss);
    put("blocking", rep.blocking);
    put("probe_overhead", rep.probe_overhead);
    put("mark_fraction", rep.mark_fraction);
    put("delay_ms_mean", rep.delay_ms_mean);
    put("delay_ms_std", rep.delay_ms_std);
    put("delay_p99_ms", rep.delay_hist.p99_ms);
    put("timeouts", rep.timeouts as f64);
    put("leaked_flows", rep.leaked_flows as f64);
    put("measured_s", rep.measured_s);
    put("events", rep.events as f64);
    put("seed", rep.seed as f64);
    for (i, g) in rep.groups.iter().enumerate() {
        row.nums.insert(format!("g{i}.blocking"), g.blocking);
        row.nums.insert(format!("g{i}.loss"), g.loss);
        row.nums.insert(format!("g{i}.decided"), g.decided as f64);
        row.strs.insert(format!("g{i}.name"), g.name.clone());
    }
    for (i, u) in rep.link_utils.iter().enumerate() {
        row.nums.insert(format!("l{i}.util"), *u);
    }
    Ok(row)
}

/// Flatten a tuple row against a positional schema.
fn tuple_row(names: &[&'static str], v: &Value) -> Result<Row, String> {
    let items = v.as_array().ok_or("tuple row is not an array")?;
    if items.len() != names.len() {
        return Err(format!(
            "tuple row has {} cells, schema names {}",
            items.len(),
            names.len()
        ));
    }
    let mut row = Row::default();
    for (name, cell) in names.iter().zip(items) {
        if let Some(s) = cell.as_str() {
            row.strs.insert(name.to_string(), s.to_string());
        } else if let Some(x) = cell.as_f64() {
            row.nums.insert(name.to_string(), x);
        } else {
            return Err(format!("tuple cell '{name}' is neither string nor number"));
        }
    }
    Ok(row)
}

/// Flatten a flat object: scalars only, booleans as 0/1.
fn object_row(v: &Value) -> Result<Row, String> {
    let entries = v.as_object().ok_or("row is not a JSON object")?;
    let mut row = Row::default();
    for (k, val) in entries {
        if let Some(s) = val.as_str() {
            row.strs.insert(k.clone(), s.to_string());
        } else if let Some(x) = val.as_f64() {
            row.nums.insert(k.clone(), x);
        } else if let Some(b) = val.as_bool() {
            row.nums.insert(k.clone(), if b { 1.0 } else { 0.0 });
        }
        // Nested arrays/objects (e.g. fig11's time series) are not scalar
        // row fields; specs address them via their own targets.
    }
    Ok(row)
}

/// Load and flatten a target's rows from `<dir>/<target>.json`.
pub fn load_rows(dir: &Path, spec: &TargetSpec) -> Result<Vec<Row>, String> {
    let path = dir.join(format!("{}.json", spec.target));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    let mut rows = match (&spec.shape, &value) {
        (RowShape::Reports, Value::Array(items)) => items
            .iter()
            .map(report_row)
            .collect::<Result<Vec<_>, _>>()?,
        (RowShape::Tuple(names), Value::Array(items)) => items
            .iter()
            .map(|v| tuple_row(names, v))
            .collect::<Result<Vec<_>, _>>()?,
        (RowShape::Objects, Value::Array(items)) => items
            .iter()
            .map(object_row)
            .collect::<Result<Vec<_>, _>>()?,
        (RowShape::Objects, v @ Value::Object(_)) => vec![object_row(v)?],
        _ => {
            return Err(format!(
                "{} has an unexpected top-level shape",
                path.display()
            ))
        }
    };
    for row in &mut rows {
        for (name, expr) in &spec.derive {
            if let Ok(v) = expr.eval(row) {
                row.nums.insert(name.to_string(), v);
            }
        }
    }
    Ok(rows)
}

/// Evaluate one spec against a results directory.
pub fn check_target(dir: &Path, spec: &TargetSpec) -> TargetResult {
    let checks = match load_rows(dir, spec) {
        Ok(rows) => spec
            .checks
            .iter()
            .map(|c| {
                let (pass, detail) = c.pred.eval(&rows);
                CheckResult {
                    id: c.id.to_string(),
                    claim: c.claim.to_string(),
                    pass,
                    detail,
                }
            })
            .collect(),
        Err(e) => vec![CheckResult {
            id: format!("{}.load", spec.target),
            claim: "result rows load and parse".to_string(),
            pass: false,
            detail: e,
        }],
    };
    TargetResult {
        target: spec.target.to_string(),
        code: spec.code.to_string(),
        pass: checks.iter().all(|c| c.pass),
        title: spec.title.to_string(),
        checks,
    }
}

/// Evaluate many specs (optionally restricted to one target) and fold the
/// outcomes into a [`Verdicts`] summary.
pub fn check_targets(dir: &Path, specs: &[TargetSpec], only: Option<&str>) -> Verdicts {
    let results: Vec<TargetResult> = specs
        .iter()
        .filter(|s| only.is_none_or(|t| s.target == t))
        .map(|s| check_target(dir, s))
        .collect();
    let checks_total = results.iter().map(|r| r.checks.len()).sum();
    let checks_passed = results
        .iter()
        .flat_map(|r| &r.checks)
        .filter(|c| c.pass)
        .count();
    Verdicts {
        pass: !results.is_empty() && results.iter().all(|r| r.pass),
        targets_checked: results.len(),
        targets_passed: results.iter().filter(|r| r.pass).count(),
        checks_total,
        checks_passed,
        results,
    }
}

/// Start marker of the generated verdict block in EXPERIMENTS.md.
pub const DOCS_BEGIN: &str =
    "<!-- BEGIN GENERATED VERDICTS (experiments -- check --write-docs; do not edit) -->";
/// End marker of the generated verdict block in EXPERIMENTS.md.
pub const DOCS_END: &str = "<!-- END GENERATED VERDICTS -->";

/// Render the generated verdict block (the text between the markers).
pub fn render_docs(v: &Verdicts) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "_{} of {} targets pass ({}/{} checks). Derived from the spec catalog\n\
         in `crates/bench/src/spec.rs`, evaluated against `results/*.json`;\n\
         regenerate with `experiments -- check --write-docs`._\n",
        v.targets_passed, v.targets_checked, v.checks_passed, v.checks_total
    ));
    for r in &v.results {
        let code = if r.pass {
            r.code.clone()
        } else {
            "✗".to_string()
        };
        let n_pass = r.checks.iter().filter(|c| c.pass).count();
        out.push_str(&format!(
            "\n- **{}** (`{}`) {} — {}/{} invariants hold\n",
            r.title,
            r.target,
            code,
            n_pass,
            r.checks.len()
        ));
        for c in &r.checks {
            out.push_str(&format!(
                "  - {} `{}` — {} [{}]\n",
                if c.pass { "✔" } else { "✘" },
                c.id,
                c.claim,
                c.detail
            ));
        }
    }
    out
}

/// Splice the generated block between the markers of a document. Errors
/// if the markers are missing or out of order.
pub fn inject_docs(doc: &str, block: &str) -> Result<String, String> {
    let begin = doc
        .find(DOCS_BEGIN)
        .ok_or("EXPERIMENTS.md is missing the BEGIN GENERATED VERDICTS marker")?;
    let end = doc
        .find(DOCS_END)
        .ok_or("EXPERIMENTS.md is missing the END GENERATED VERDICTS marker")?;
    if end < begin {
        return Err("generated-verdict markers are out of order".into());
    }
    let mut out = String::with_capacity(doc.len() + block.len());
    out.push_str(&doc[..begin + DOCS_BEGIN.len()]);
    out.push('\n');
    out.push_str(block);
    out.push_str(&doc[end..]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(design: &str, pairs: &[(&str, f64)]) -> Row {
        let mut r = Row::default();
        r.strs.insert("design".into(), design.into());
        for (k, v) in pairs {
            r.nums.insert(k.to_string(), *v);
        }
        r
    }

    fn grid() -> Vec<Row> {
        vec![
            row("a", &[("x", 0.0), ("loss", 0.004), ("util", 0.80)]),
            row("a", &[("x", 1.0), ("loss", 0.005), ("util", 0.85)]),
            row("a", &[("x", 2.0), ("loss", 0.006), ("util", 0.90)]),
            row("b", &[("x", 0.0), ("loss", 0.0001), ("util", 0.70)]),
            row("b", &[("x", 1.0), ("loss", 0.0002), ("util", 0.75)]),
        ]
    }

    #[test]
    fn extraction_aggregates() {
        let rows = grid();
        let v = |agg| ext(Sel::design("a"), "loss", agg).eval(&rows).unwrap();
        assert_eq!(v(Agg::Min), 0.004);
        assert_eq!(v(Agg::Max), 0.006);
        assert!((v(Agg::Mean) - 0.005).abs() < 1e-12);
        assert_eq!(v(Agg::First), 0.004);
        assert_eq!(v(Agg::Last), 0.006);
        assert_eq!(v(Agg::Count), 3.0);
        assert!(ext(Sel::design("zzz"), "loss", Agg::Min)
            .eval(&rows)
            .is_err());
        assert!(ext(Sel::design("a"), "nope", Agg::Min).eval(&rows).is_err());
    }

    #[test]
    fn selector_blocks_slice_after_filtering() {
        let rows = grid();
        let first_two = ext(Sel::design("a").block(0, 2), "loss", Agg::Max)
            .eval(&rows)
            .unwrap();
        assert_eq!(first_two, 0.005);
        let last = ext(Sel::design("a").block(2, 1), "loss", Agg::Max)
            .eval(&rows)
            .unwrap();
        assert_eq!(last, 0.006);
    }

    #[test]
    fn dominates_compares_best_points() {
        let rows = grid();
        // b's loss floor is 40x below a's: b dominates a at tol 0.1.
        let (pass, _) = dominates(Sel::design("b"), Sel::design("a"), "loss", 0.1).eval(&rows);
        assert!(pass);
        // a does not dominate b even at tol 1.0.
        let (pass, _) = dominates(Sel::design("a"), Sel::design("b"), "loss", 1.0).eval(&rows);
        assert!(!pass);
    }

    #[test]
    fn monotone_directions() {
        let rows = grid();
        let (pass, _) = monotone_increasing(Sel::design("a"), "x", "util", 0.0).eval(&rows);
        assert!(pass);
        let (pass, _) = monotone_decreasing(Sel::design("a"), "x", "util", 0.0).eval(&rows);
        assert!(!pass);
        // Tolerance forgives small backsliding.
        let mut rows2 = grid();
        rows2[1].nums.insert("util".into(), 0.7995);
        let (pass, _) = monotone_increasing(Sel::design("a"), "x", "util", 0.001).eval(&rows2);
        assert!(pass);
        let (pass, _) = monotone_increasing(Sel::design("a"), "x", "util", 0.0).eval(&rows2);
        assert!(!pass);
    }

    #[test]
    fn within_tolerance() {
        let rows = grid();
        let (pass, _) = within(ext(Sel::design("a"), "util", Agg::First), 0.78, 0.05).eval(&rows);
        assert!(pass); // 0.80 within 5% of 0.78
        let (pass, _) = within(ext(Sel::design("a"), "util", Agg::First), 0.78, 0.01).eval(&rows);
        assert!(!pass);
    }

    #[test]
    fn crossover_window() {
        let rows = vec![
            row("c", &[("x", 1.0), ("y", 0.01)]),
            row("c", &[("x", 2.0), ("y", 0.02)]),
            row("c", &[("x", 3.0), ("y", 0.9)]),
            row("c", &[("x", 4.0), ("y", 0.95)]),
        ];
        let (pass, _) = crossover_between("x", "y", 0.5, 2.5, 3.5).eval(&rows);
        assert!(pass);
        // Wrong window.
        let (pass, _) = crossover_between("x", "y", 0.5, 3.5, 4.0).eval(&rows);
        assert!(!pass);
        // Never crosses.
        let (pass, _) = crossover_between("x", "y", 0.99, 1.0, 4.0).eval(&rows);
        assert!(!pass);
        // Already above at the first point.
        let (pass, _) = crossover_between("x", "y", 0.005, 1.0, 4.0).eval(&rows);
        assert!(!pass);
    }

    #[test]
    fn each_row_and_argmax() {
        let rows = grid();
        let every = Pred::EachRow {
            sel: Sel::all(),
            expr: Expr::Field("util"),
            op: Op::Ge,
            value: 0.7,
        };
        let (pass, _) = every.eval(&rows);
        assert!(pass);
        let every_strict = Pred::EachRow {
            sel: Sel::all(),
            expr: Expr::Field("util"),
            op: Op::Ge,
            value: 0.75,
        };
        let (pass, detail) = every_strict.eval(&rows);
        assert!(!pass);
        assert!(detail.contains('b'), "failing row named: {detail}");
        let argmax = Pred::ArgmaxIn {
            sel: Sel::all(),
            metric: "loss",
            label: "design",
            allowed: &["a"],
        };
        let (pass, _) = argmax.eval(&rows);
        assert!(pass);
    }

    #[test]
    fn ratio_and_compound_exprs() {
        let r = row("t", &[("long", 0.3), ("s0", 0.1), ("s1", 0.2), ("s2", 0.3)]);
        let mean = Expr::MeanOf(&["s0", "s1", "s2"]).eval(&r).unwrap();
        assert!((mean - 0.2).abs() < 1e-12);
        let max = Expr::MaxOf(&["s0", "s1", "s2"]).eval(&r).unwrap();
        assert!((max - 0.3).abs() < 1e-12);
        let ratio = Expr::Ratio("long", "s1").eval(&r).unwrap();
        assert!((ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn structural_errors_fail_checks() {
        let rows = grid();
        let missing = Pred::Cmp {
            lhs: ext(Sel::all(), "no_such_field", Agg::Min),
            op: Op::Le,
            rhs: Rhs::Const(1.0),
        };
        let (pass, detail) = missing.eval(&rows);
        assert!(!pass);
        assert!(detail.contains("no_such_field"));
    }

    #[test]
    fn docs_injection_round_trips() {
        let doc = format!("# title\n\nprose\n\n{DOCS_BEGIN}\nold\n{DOCS_END}\n\ntail\n");
        let updated = inject_docs(&doc, "new block\n").unwrap();
        assert!(updated.contains("new block"));
        assert!(!updated.contains("old"));
        assert!(updated.starts_with("# title"));
        assert!(updated.ends_with("tail\n"));
        // Idempotent: injecting the same block again changes nothing.
        assert_eq!(inject_docs(&updated, "new block\n").unwrap(), updated);
        assert!(inject_docs("no markers", "x").is_err());
    }
}
