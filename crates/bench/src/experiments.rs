//! One function per table/figure of the paper. Each prints the same
//! rows/series the paper reports and persists raw JSON under `results/`.

use crate::catalog::{design, endpoint_designs, eps_grid, fig9_eps, Workload, ETAS_MBAC};
use crate::output::{fmt_prob, print_table, save_json};
use crate::pool;
use crate::runner::{loss_load_curve, run_seeds, run_seeds_isolated, Fidelity};
use crate::sweep::Sweep;
use eac::coexist::CoexistScenario;
use eac::design::{Design, Group};
use eac::metrics::Report;
use eac::multihop::{product_blocking, MultihopScenario};
use eac::probe::{Placement, ProbeStyle, Signal};
use eac::scenario::Scenario;
use traffic::SourceSpec;

fn curve_rows(label: &str, reports: &[Report]) -> Vec<Vec<String>> {
    reports
        .iter()
        .map(|r| {
            vec![
                label.to_string(),
                format!("{:.3}", r.param),
                format!("{:.4}", r.utilization),
                fmt_prob(r.data_loss),
                format!("{:.4}", r.blocking),
                format!("{:.4}", r.probe_overhead),
            ]
        })
        .collect()
}

const CURVE_HEADER: [&str; 6] = [
    "design",
    "eps/eta",
    "utilization",
    "loss",
    "blocking",
    "probe-ovh",
];

/// Run the four endpoint designs (each over its ε grid) plus the MBAC η
/// sweep on `base`, printing one loss-load curve per design.
fn loss_load_figure(id: &str, base: &Scenario, style: ProbeStyle, fid: Fidelity) -> Vec<Report> {
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for (label, signal, placement) in endpoint_designs(style) {
        let designs: Vec<Design> = eps_grid(placement)
            .into_iter()
            .map(|e| design(signal, placement, style, e))
            .collect();
        let reports = loss_load_curve(base, &designs, fid);
        rows.extend(curve_rows(label, &reports));
        all.extend(reports);
    }
    let mbac: Vec<Design> = ETAS_MBAC.iter().map(|&eta| Design::mbac(eta)).collect();
    let reports = loss_load_curve(base, &mbac, fid);
    rows.extend(curve_rows("MBAC", &reports));
    all.extend(reports);
    print_table(&CURVE_HEADER, &rows);
    save_json(id, &all);
    all
}

/// Fig 1 — fluid-model thrashing: utilization and in-band loss vs mean
/// probe duration.
pub fn fig1(fid: Fidelity) {
    println!("# Fig 1 — thrashing in the fluid model");
    println!("# utilization applies to in-band AND out-of-band probing;");
    println!("# the loss column is in-band (out-of-band data loss is 0)\n");
    let (horizon, seeds) = match fid {
        Fidelity::Smoke => (2_000.0, 2),
        Fidelity::Quick => (8_000.0, 10),
        Fidelity::Paper => (14_000.0, 30),
    };
    let xs = [
        1.0, 1.4, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8, 3.0, 3.2, 3.4, 3.6, 4.0, 5.0,
    ];
    let pts = fluid::fig1_sweep(&xs, horizon, seeds);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.mean_probe_s),
                format!("{:.4}", p.utilization),
                fmt_prob(p.loss_in_band),
                format!("{:.1}", p.mean_probing),
            ]
        })
        .collect();
    print_table(
        &["probe-s", "utilization", "loss(in-band)", "E[probing]"],
        &rows,
    );
    let ser: Vec<(f64, f64, f64)> = pts
        .iter()
        .map(|p| (p.mean_probe_s, p.utilization, p.loss_in_band))
        .collect();
    save_json("fig1", &ser);
}

/// Fig 2 — the basic scenario's loss-load curves (5 algorithms).
pub fn fig2(fid: Fidelity) {
    println!("# Fig 2 — basic scenario (EXP1, tau=3.5s, slow-start probing)\n");
    loss_load_figure(
        "fig2",
        &Workload::Basic.scenario(),
        ProbeStyle::SlowStart,
        fid,
    );
}

/// Fig 3 — longer probing: 5 s vs 25 s slow-start, in-band dropping.
pub fn fig3(fid: Fidelity) {
    println!("# Fig 3 — basic scenario with long probing (in-band dropping)\n");
    let mut rows = Vec::new();
    let mut all = Vec::new();
    for (label, probe_s) in [("5 second probes", 5.0), ("25 second probes", 25.0)] {
        let base = Workload::Basic.scenario().probe_secs(probe_s);
        let designs: Vec<Design> = eps_grid(Placement::InBand)
            .into_iter()
            .map(|e| design(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, e))
            .collect();
        let reports = loss_load_curve(&base, &designs, fid);
        rows.extend(curve_rows(label, &reports));
        all.extend(reports);
    }
    let mbac: Vec<Design> = ETAS_MBAC.iter().map(|&eta| Design::mbac(eta)).collect();
    let reports = loss_load_curve(&Workload::Basic.scenario(), &mbac, fid);
    rows.extend(curve_rows("MBAC", &reports));
    all.extend(reports);
    print_table(&CURVE_HEADER, &rows);
    save_json("fig3", &all);
}

/// Figs 4–7 — high load (τ = 1 s): the three probing algorithms under
/// each prototype design, against MBAC.
pub fn fig4to7(which: u8, fid: Fidelity) {
    let (signal, placement) = match which {
        4 => (Signal::Drop, Placement::InBand),
        5 => (Signal::Drop, Placement::OutOfBand),
        6 => (Signal::Mark, Placement::InBand),
        7 => (Signal::Mark, Placement::OutOfBand),
        _ => panic!("fig4to7 takes 4..=7"),
    };
    println!(
        "# Fig {which} — high load (tau=1.0s), {}\n",
        design(signal, placement, ProbeStyle::Simple, 0.0).name()
    );
    let base = Workload::HighLoad.scenario();
    let mut rows = Vec::new();
    let mut all = Vec::new();
    for (label, style) in [
        ("Simple Probing", ProbeStyle::Simple),
        ("Slow Start", ProbeStyle::SlowStart),
        ("Early Reject", ProbeStyle::EarlyReject),
    ] {
        let designs: Vec<Design> = eps_grid(placement)
            .into_iter()
            .map(|e| design(signal, placement, style, e))
            .collect();
        let reports = loss_load_curve(&base, &designs, fid);
        rows.extend(curve_rows(label, &reports));
        all.extend(reports);
    }
    let mbac: Vec<Design> = ETAS_MBAC.iter().map(|&eta| Design::mbac(eta)).collect();
    let reports = loss_load_curve(&base, &mbac, fid);
    rows.extend(curve_rows("MBAC", &reports));
    all.extend(reports);
    print_table(&CURVE_HEADER, &rows);
    save_json(&format!("fig{which}"), &all);
}

/// Fig 8(a)–(f) — robustness across source models.
pub fn fig8(letter: char, fid: Fidelity) {
    let w = match letter {
        'a' => Workload::Exp2,
        'b' => Workload::Exp3,
        'c' => Workload::Poo1,
        'd' => Workload::StarWars,
        'e' => Workload::Hetero,
        'f' => Workload::LowMux,
        _ => panic!("fig8 takes a..=f"),
    };
    println!("# Fig 8({letter}) — robustness: {}\n", w.name());
    loss_load_figure(
        &format!("fig8{letter}"),
        &w.scenario(),
        ProbeStyle::SlowStart,
        fid,
    );
}

/// Fig 9 — loss at a fixed ε across all scenarios, per design.
pub fn fig9(fid: Fidelity) {
    println!("# Fig 9 — loss for many scenarios at fixed eps");
    println!("# (eps = 0.01 in-band, 0.05 out-of-band)\n");
    let mut rows = Vec::new();
    let mut ser: Vec<(String, String, f64)> = Vec::new();
    for (label, signal, placement) in endpoint_designs(ProbeStyle::SlowStart) {
        let eps = fig9_eps(placement);
        for w in Workload::ALL {
            let d = design(signal, placement, ProbeStyle::SlowStart, eps);
            let s = fid.apply(w.scenario().design(d));
            let r = run_seeds(&s, &fid.seeds());
            rows.push(vec![
                label.to_string(),
                w.name().to_string(),
                format!("{:.3}", eps),
                fmt_prob(r.data_loss),
                format!("{:.3}", r.utilization),
            ]);
            ser.push((label.to_string(), w.name().to_string(), r.data_loss));
        }
    }
    print_table(&["design", "scenario", "eps", "loss", "utilization"], &rows);
    save_json("fig9", &ser);
}

/// Table 3 — heterogeneous thresholds: blocking for low- vs high-ε flows.
pub fn table3(fid: Fidelity) {
    println!("# Table 3 — blocking probabilities for low and high eps\n");
    let mut rows = Vec::new();
    let mut ser: Vec<(String, f64, f64)> = Vec::new();
    for (label, signal, placement) in endpoint_designs(ProbeStyle::SlowStart) {
        let high = match placement {
            Placement::InBand => 0.05,
            Placement::OutOfBand => 0.20,
        };
        let groups = vec![
            Group::new("low-eps", SourceSpec::exp1(), 1.0).with_epsilon(0.0),
            Group::new("high-eps", SourceSpec::exp1(), 1.0).with_epsilon(high),
        ];
        let d = design(signal, placement, ProbeStyle::SlowStart, 0.0);
        let s = fid.apply(Workload::Basic.scenario().groups(groups).design(d));
        let r = run_seeds(&s, &fid.seeds());
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", r.groups[0].blocking),
            format!("{:.4}", r.groups[1].blocking),
        ]);
        ser.push((
            label.to_string(),
            r.groups[0].blocking,
            r.groups[1].blocking,
        ));
    }
    print_table(&["design", "low-eps blocking", "high-eps blocking"], &rows);
    save_json("table3", &ser);
}

/// Table 4 — blocking for small vs large flows in the heterogeneous mix.
pub fn table4(fid: Fidelity) {
    println!("# Table 4 — blocking for small vs large flows (heterogeneous mix)");
    println!("# large = EXP2 (token rate 1024k, 4x the others)\n");
    let mut rows = Vec::new();
    let mut ser: Vec<(String, f64, f64)> = Vec::new();
    let mut run_one = |label: String, d: Design| {
        let s = fid.apply(Workload::Hetero.scenario().design(d));
        let r = run_seeds(&s, &fid.seeds());
        // Groups: EXP1, EXP2, EXP4, POO1. Small = all but EXP2.
        let small: Vec<&eac::metrics::GroupReport> =
            r.groups.iter().filter(|g| g.name != "EXP2").collect();
        let dec: u64 = small.iter().map(|g| g.decided).sum();
        let rej: u64 = small.iter().map(|g| g.rejected).sum();
        let small_b = if dec == 0 {
            0.0
        } else {
            rej as f64 / dec as f64
        };
        let large_b = r.groups[1].blocking;
        rows.push(vec![
            label.clone(),
            format!("{:.4}", small_b),
            format!("{:.4}", large_b),
        ]);
        ser.push((label, small_b, large_b));
    };
    for (label, signal, placement) in endpoint_designs(ProbeStyle::SlowStart) {
        let eps = fig9_eps(placement);
        run_one(
            label.to_string(),
            design(signal, placement, ProbeStyle::SlowStart, eps),
        );
    }
    run_one("MBAC".to_string(), Design::mbac(0.9));
    print_table(&["design", "small flows", "large flows"], &rows);
    save_json("table4", &ser);
}

/// Tables 5 and 6 — the multi-hop topology: per-class loss and blocking
/// with the product approximation.
pub fn tables56(fid: Fidelity) {
    println!("# Tables 5 & 6 — multi-hop topology (Fig 10), eps = 0\n");
    let mut loss_rows = Vec::new();
    let mut block_rows = Vec::new();
    let mut ser: Vec<Report> = Vec::new();
    let mut run_one = |label: String, d: Design| {
        let (h, w) = fid.lengths();
        let seeds = fid.seeds();
        // Multihop scenarios are not `Scenario`s, so fan the seeds out on
        // the pool directly; slot order keeps the average bit-identical.
        let raw = pool::run_indexed(seeds.len(), pool::default_jobs(), |i| {
            MultihopScenario::tables56()
                .design(d)
                .horizon_secs(h)
                .warmup_secs(w)
                .seed(seeds[i])
                .run()
        });
        let reports: Vec<Report> = raw
            .into_iter()
            .map(|r| match r {
                Ok(Ok(rep)) => rep,
                Ok(Err(e)) => panic!("{e}"),
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        let r = Report::average(&reports);
        let short_loss = (r.groups[0].loss + r.groups[1].loss + r.groups[2].loss) / 3.0;
        loss_rows.push(vec![
            label.clone(),
            fmt_prob(short_loss),
            fmt_prob(r.groups[3].loss),
        ]);
        let cross: Vec<f64> = (0..3).map(|i| r.groups[i].blocking).collect();
        block_rows.push(vec![
            label.clone(),
            format!("{:.3}", cross[0]),
            format!("{:.3}", cross[1]),
            format!("{:.3}", cross[2]),
            format!("{:.3}", r.groups[3].blocking),
            format!("{:.3}", product_blocking(&cross)),
        ]);
        ser.push(r);
    };
    for (label, signal, placement) in endpoint_designs(ProbeStyle::SlowStart) {
        run_one(
            label.to_string(),
            design(signal, placement, ProbeStyle::SlowStart, 0.0),
        );
    }
    run_one("MBAC".to_string(), Design::mbac(0.9));
    println!("Table 5 — loss probability (short flows averaged over links)");
    print_table(&["design", "short flows", "long flows"], &loss_rows);
    println!("\nTable 6 — blocking probabilities and product approximation");
    print_table(
        &[
            "design",
            "short I",
            "short II",
            "short III",
            "long",
            "product",
        ],
        &block_rows,
    );
    save_json("tables56", &ser);
}

/// Fig 11 — TCP coexistence at a legacy drop-tail router.
pub fn fig11(fid: Fidelity) {
    println!("# Fig 11 — TCP utilization vs admission-controlled traffic");
    println!("# (20 TCP Reno flows from t=0; EAC in-band dropping from t=50s)\n");
    let (horizon, steady) = match fid {
        Fidelity::Smoke => (400.0, 150.0),
        Fidelity::Quick => (2_000.0, 500.0),
        Fidelity::Paper => (14_000.0, 2_000.0),
    };
    let mut rows = Vec::new();
    let mut ser = Vec::new();
    let eps_points = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.08, 0.10];
    let raw = pool::run_indexed(eps_points.len(), pool::default_jobs(), |i| {
        CoexistScenario::fig11(eps_points[i])
            .horizon_secs(horizon)
            .steady_after_secs(steady)
            .seed(1)
            .run()
    });
    for (i, result) in raw.into_iter().enumerate() {
        let eps = eps_points[i];
        let r = result.unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        rows.push(vec![
            format!("{eps:.2}"),
            format!("{:.3}", r.tcp_util),
            format!("{:.3}", r.eac_util),
            format!("{:.3}", r.blocking),
        ]);
        ser.push(r);
    }
    print_table(&["eps", "TCP util", "EAC util", "EAC blocking"], &rows);
    println!("\n(time series for each eps saved to results/fig11.json)");
    save_json("fig11", &ser);
}

/// Ablations of design choices DESIGN.md calls out.
pub fn ablate(which: &str, fid: Fidelity) {
    match which {
        "probe-duration" => {
            println!("# Ablation — probe duration (in-band dropping, eps=0.01)\n");
            let mut rows = Vec::new();
            for dur in [1.0, 2.5, 5.0, 10.0, 25.0] {
                let d = design(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01);
                let s = fid.apply(Workload::Basic.scenario().probe_secs(dur).design(d));
                let r = run_seeds(&s, &fid.seeds());
                rows.push(vec![
                    format!("{dur:.1}"),
                    format!("{:.4}", r.utilization),
                    fmt_prob(r.data_loss),
                    format!("{:.4}", r.blocking),
                    format!("{:.4}", r.probe_overhead),
                ]);
            }
            print_table(
                &["probe-s", "utilization", "loss", "blocking", "probe-ovh"],
                &rows,
            );
        }
        "vq-factor" => {
            println!("# Ablation — virtual-queue rate factor (in-band marking, eps=0.01)\n");
            let mut rows = Vec::new();
            for f in [0.8, 0.85, 0.9, 0.95, 1.0] {
                let d = design(Signal::Mark, Placement::InBand, ProbeStyle::SlowStart, 0.01);
                let mut s = fid.apply(Workload::Basic.scenario().design(d));
                s.vq_factor = f;
                let r = run_seeds(&s, &fid.seeds());
                rows.push(vec![
                    format!("{f:.2}"),
                    format!("{:.4}", r.utilization),
                    fmt_prob(r.data_loss),
                    format!("{:.4}", r.blocking),
                    format!("{:.4}", r.mark_fraction),
                ]);
            }
            print_table(
                &["vq-factor", "utilization", "loss", "blocking", "mark-frac"],
                &rows,
            );
        }
        "pushout" => {
            println!("# Ablation — probe push-out (out-of-band dropping, eps=0.05)\n");
            let mut rows = Vec::new();
            for (label, push) in [("push-out on", true), ("push-out off", false)] {
                let d = design(
                    Signal::Drop,
                    Placement::OutOfBand,
                    ProbeStyle::SlowStart,
                    0.05,
                );
                let mut s = fid.apply(Workload::HighLoad.scenario().design(d));
                s.probe_pushout = push;
                let r = run_seeds(&s, &fid.seeds());
                rows.push(vec![
                    label.to_string(),
                    format!("{:.4}", r.utilization),
                    fmt_prob(r.data_loss),
                    format!("{:.4}", r.blocking),
                ]);
            }
            print_table(&["variant", "utilization", "loss", "blocking"], &rows);
        }
        "buffer" => {
            println!("# Ablation — bottleneck buffer size (in-band dropping, eps=0.01)\n");
            let mut rows = Vec::new();
            for b in [50usize, 100, 200, 400] {
                let d = design(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01);
                let mut s = fid.apply(Workload::Basic.scenario().design(d));
                s.buffer_pkts = b;
                let r = run_seeds(&s, &fid.seeds());
                rows.push(vec![
                    format!("{b}"),
                    format!("{:.4}", r.utilization),
                    fmt_prob(r.data_loss),
                    format!("{:.4}", r.blocking),
                ]);
            }
            print_table(&["buffer-pkts", "utilization", "loss", "blocking"], &rows);
        }
        "retry" => {
            println!("# Ablation — footnote-10 retry extension (in-band dropping,");
            println!("# eps=0.01, ~400% offered load): retries act as extra offered");
            println!("# load, trading blocking statistics for utilization\n");
            let mut rows = Vec::new();
            for (label, retry) in [
                ("no retries (paper)", None),
                (
                    "3 retries, 5s base backoff",
                    Some(eac::host::RetryPolicy {
                        max_attempts: 3,
                        base_backoff: simcore::SimDuration::from_secs(5),
                        max_backoff: simcore::SimDuration::from_secs(60),
                    }),
                ),
                (
                    "5 retries, 10s base backoff",
                    Some(eac::host::RetryPolicy {
                        max_attempts: 5,
                        base_backoff: simcore::SimDuration::from_secs(10),
                        max_backoff: simcore::SimDuration::from_secs(120),
                    }),
                ),
            ] {
                let d = design(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01);
                let mut s = fid.apply(Workload::HighLoad.scenario().design(d));
                s.retry = retry;
                let r = run_seeds(&s, &fid.seeds());
                rows.push(vec![
                    label.to_string(),
                    format!("{:.4}", r.utilization),
                    fmt_prob(r.data_loss),
                    format!("{:.4}", r.blocking),
                ]);
            }
            print_table(&["variant", "utilization", "loss", "blocking"], &rows);
        }
        "red" => {
            println!("# Ablation — drop-tail vs RED is exercised at qdisc level;");
            println!("# see netsim::qdisc::red tests and the engine bench.");
        }
        other => {
            eprintln!("unknown ablation '{other}' (probe-duration, vq-factor, pushout, buffer)");
        }
    }
}

/// robust-flap — the Fig 2 loss-load point under a flapping bottleneck.
///
/// Two scheduled link outages (~2% of the measured interval each) hit the
/// bottleneck mid-run. Packets on the wire die, routes recompute, and every
/// control packet caught in the outage is resolved by the hosts' verdict
/// timeout instead of stranding the flow. The conservation audit and event
/// budget run on every seed; seeds are isolated so one pathological run
/// cannot take down the sweep.
pub fn robust_flap(fid: Fidelity) {
    println!("# robust-flap — in-band dropping under a flapping bottleneck");
    println!("# (5 s verdict timeout; packet-conservation audit on every seed)\n");
    let (h, w) = fid.lengths();
    let measured = h - w;
    let flaps = [
        (w + 0.25 * measured, w + 0.27 * measured),
        (w + 0.60 * measured, w + 0.62 * measured),
    ];
    let mut rows = Vec::new();
    let mut ser: Vec<Report> = Vec::new();
    for eps in [0.01, 0.05] {
        for (label, flapping) in [("steady", false), ("flapping", true)] {
            let d = design(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, eps);
            let mut s = fid
                .apply(Workload::Basic.scenario().design(d))
                .verdict_timeout(5.0)
                .audited()
                .event_budget(2_000_000_000);
            if flapping {
                for &(down, up) in &flaps {
                    s = s.flap(down, up);
                }
            }
            let (avg, outcomes) = run_seeds_isolated(&s, &fid.seeds());
            let ok = outcomes.iter().filter(|o| o.is_ok()).count();
            match avg {
                Ok(mut r) => {
                    rows.push(vec![
                        label.to_string(),
                        format!("{eps:.2}"),
                        format!("{:.4}", r.utilization),
                        fmt_prob(r.data_loss),
                        format!("{:.4}", r.blocking),
                        format!("{}", r.timeouts),
                        format!("{}", r.leaked_flows),
                        format!("{ok}/{}", outcomes.len()),
                    ]);
                    r.design = format!("{label} / {}", r.design);
                    ser.push(r);
                }
                Err(e) => {
                    rows.push(vec![
                        label.to_string(),
                        format!("{eps:.2}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("{ok}/{}: {e}", outcomes.len()),
                    ]);
                }
            }
        }
    }
    print_table(
        &[
            "variant",
            "eps",
            "utilization",
            "loss",
            "blocking",
            "timeouts",
            "leaked",
            "seeds-ok",
        ],
        &rows,
    );
    save_json("robust-flap", &ser);
}

/// robust-ctrl-loss — lossy control channel, with and without the verdict
/// timeout.
///
/// Bernoulli loss is applied to TrafficClass::Control on both directions of
/// the bottleneck path. With the timeout, a lost Accept/Reject resolves as
/// a counted rejection and blocking stays bounded; without it, flows strand
/// in AwaitDecision and show up as leaked per-flow state.
pub fn robust_ctrl_loss(fid: Fidelity) {
    println!("# robust-ctrl-loss — Bernoulli loss on the control channel");
    println!("# (in-band dropping, eps=0.01; audit + event budget on every seed)\n");
    let mut rows = Vec::new();
    let mut ser: Vec<Report> = Vec::new();
    for p in [0.0, 0.05, 0.1, 0.2] {
        for (label, timeout) in [("timeout 5s", Some(5.0)), ("no timeout", None)] {
            let d = design(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01);
            let mut s = fid
                .apply(Workload::Basic.scenario().design(d))
                .control_loss(p)
                .audited()
                .event_budget(2_000_000_000);
            if let Some(t) = timeout {
                s = s.verdict_timeout(t);
            }
            let (avg, outcomes) = run_seeds_isolated(&s, &fid.seeds());
            let ok = outcomes.iter().filter(|o| o.is_ok()).count();
            match avg {
                Ok(mut r) => {
                    rows.push(vec![
                        format!("{p:.2}"),
                        label.to_string(),
                        format!("{:.4}", r.utilization),
                        format!("{:.4}", r.blocking),
                        format!("{}", r.timeouts),
                        format!("{}", r.leaked_flows),
                        format!("{ok}/{}", outcomes.len()),
                    ]);
                    r.design = format!("ctrl-loss {p:.2} / {label}");
                    ser.push(r);
                }
                Err(e) => {
                    rows.push(vec![
                        format!("{p:.2}"),
                        label.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("{ok}/{}: {e}", outcomes.len()),
                    ]);
                }
            }
        }
    }
    print_table(
        &[
            "ctrl-loss",
            "variant",
            "utilization",
            "blocking",
            "timeouts",
            "leaked",
            "seeds-ok",
        ],
        &rows,
    );
    save_json("robust-ctrl-loss", &ser);
}

/// What `bench_sweep` measures and persists as `BENCH_sweep.json`.
#[derive(Debug, serde::Serialize)]
pub struct SweepBenchRecord {
    /// Fidelity the sweep ran at.
    pub fidelity: String,
    /// design × seed grid size.
    pub jobs_in_grid: usize,
    /// Worker count used for the parallel pass.
    pub parallel_jobs: usize,
    /// Host parallelism (`available_parallelism`).
    pub host_parallelism: usize,
    /// Wall-clock seconds, one worker.
    pub serial_s: f64,
    /// Wall-clock seconds, `parallel_jobs` workers.
    pub parallel_s: f64,
    /// serial_s / parallel_s.
    pub speedup: f64,
    /// Total simulator events fired across the grid.
    pub total_events: u64,
    /// Events per second, one worker.
    pub serial_events_per_s: f64,
    /// Events per second, `parallel_jobs` workers.
    pub parallel_events_per_s: f64,
    /// Whether serial and parallel reports serialized byte-identically.
    pub byte_identical: bool,
}

/// bench-sweep — wall-clock the pooled executor against the serial path
/// on the Fig 2 in-band-dropping sweep and persist `BENCH_sweep.json`.
///
/// The same grid runs twice — once with one worker (the serial loop,
/// no threads) and once with the session's worker count — and the two
/// result sets are compared byte-for-byte after serialization.
pub fn bench_sweep(fid: Fidelity) {
    println!("# bench-sweep — pooled vs serial executor (Fig 2 in-band dropping)\n");
    let designs: Vec<Design> = eps_grid(Placement::InBand)
        .into_iter()
        .map(|e| design(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, e))
        .collect();
    let sweep = Sweep::new(fid.apply(Workload::Basic.scenario()))
        .designs(&designs)
        .seeds(&fid.seeds());
    let grid = designs.len() * fid.seeds().len();
    let parallel_jobs = pool::default_jobs();

    let t0 = std::time::Instant::now();
    let serial = sweep.clone().jobs(1).run().expect_reports();
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let parallel = sweep.clone().jobs(parallel_jobs).run().expect_reports();
    let parallel_s = t1.elapsed().as_secs_f64();

    let byte_identical = serde_json::to_string(&serial).expect("serialize reports")
        == serde_json::to_string(&parallel).expect("serialize reports");
    let total_events: u64 = serial.iter().map(|r| r.events).sum();
    let record = SweepBenchRecord {
        fidelity: format!("{fid:?}"),
        jobs_in_grid: grid,
        parallel_jobs,
        host_parallelism: pool::available_jobs(),
        serial_s,
        parallel_s,
        speedup: serial_s / parallel_s.max(1e-9),
        total_events,
        serial_events_per_s: total_events as f64 / serial_s.max(1e-9),
        parallel_events_per_s: total_events as f64 / parallel_s.max(1e-9),
        byte_identical,
    };
    print_table(
        &["workers", "wall-clock s", "events/s"],
        &[
            vec![
                "1".into(),
                format!("{serial_s:.2}"),
                format!("{:.0}", record.serial_events_per_s),
            ],
            vec![
                format!("{parallel_jobs}"),
                format!("{parallel_s:.2}"),
                format!("{:.0}", record.parallel_events_per_s),
            ],
        ],
    );
    println!(
        "\nspeedup {:.2}x on host parallelism {}; byte-identical: {}",
        record.speedup, record.host_parallelism, record.byte_identical
    );
    assert!(
        byte_identical,
        "parallel sweep diverged from serial — determinism contract broken"
    );
    save_json("BENCH_sweep", &record);
}
