//! Run-length presets and compatibility shims over [`crate::sweep::Sweep`].
//!
//! The serial curve/seed runners that used to live here are now one-line
//! wrappers around the pooled sweep builder; they keep their exact
//! historical semantics (including error strings) at any worker count.

use crate::sweep::Sweep;
use eac::design::Design;
use eac::metrics::Report;
use eac::scenario::Scenario;

/// How long and how many seeds to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fidelity {
    /// A few-minute smoke pass (for harness testing).
    Smoke,
    /// The default: shapes hold, minutes per figure on one core.
    Quick,
    /// The paper's §3.2 methodology: 14 000 s horizon, 2 000 s warm-up,
    /// 7 seeds. Hours per figure on one core.
    Paper,
}

impl Fidelity {
    /// Parse from CLI flags (`--smoke`, `--quick`, `--paper`).
    pub fn from_args(args: &[String]) -> Fidelity {
        if args.iter().any(|a| a == "--paper") {
            Fidelity::Paper
        } else if args.iter().any(|a| a == "--smoke") {
            Fidelity::Smoke
        } else {
            Fidelity::Quick
        }
    }

    /// (horizon s, warm-up s).
    pub fn lengths(self) -> (f64, f64) {
        match self {
            Fidelity::Smoke => (400.0, 100.0),
            Fidelity::Quick => (1_200.0, 250.0),
            Fidelity::Paper => (14_000.0, 2_000.0),
        }
    }

    /// Seeds to average over.
    pub fn seeds(self) -> Vec<u64> {
        match self {
            Fidelity::Smoke => vec![1],
            Fidelity::Quick => vec![1],
            Fidelity::Paper => vec![1, 2, 3, 4, 5, 6, 7],
        }
    }

    /// Apply run length to a scenario.
    pub fn apply(self, s: Scenario) -> Scenario {
        let (h, w) = self.lengths();
        s.horizon_secs(h).warmup_secs(w)
    }
}

/// Run `base` under each design, averaging across the fidelity's seeds;
/// produces the points of one loss-load curve per design. Shim over
/// [`Sweep`]; jobs come from the session default (`--jobs`).
pub fn loss_load_curve(base: &Scenario, designs: &[Design], fid: Fidelity) -> Vec<Report> {
    Sweep::new(fid.apply(base.clone()))
        .designs(designs)
        .seeds(&fid.seeds())
        .run()
        .expect_reports()
}

/// Run `base` across the fidelity's seeds under its own design, averaging
/// the reports. Shim over [`Sweep`].
pub fn run_seeds(base: &Scenario, seeds: &[u64]) -> Report {
    Sweep::new(base.clone())
        .seeds(seeds)
        .run()
        .expect_reports()
        .remove(0)
}

/// What happened to one seed of an isolated multi-seed run.
#[derive(Clone, Debug)]
pub enum SeedOutcome {
    /// The seed ran to completion.
    Ok { seed: u64 },
    /// The run returned a graceful error (audit failure, event budget,
    /// time regression).
    Error { seed: u64, message: String },
    /// The run panicked; the panic was contained to this seed.
    Panic { seed: u64, message: String },
}

impl SeedOutcome {
    /// The seed this outcome belongs to.
    pub fn seed(&self) -> u64 {
        match self {
            SeedOutcome::Ok { seed }
            | SeedOutcome::Error { seed, .. }
            | SeedOutcome::Panic { seed, .. } => *seed,
        }
    }

    /// Whether the seed completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, SeedOutcome::Ok { .. })
    }
}

/// Run `base` once per seed with each seed isolated: a panic or graceful
/// error in one seed is recorded and does not take down the sweep. Returns
/// the average report over surviving seeds (Err if none survived) plus the
/// per-seed outcomes. Shim over [`Sweep`] with `.isolated(true)`.
pub fn run_seeds_isolated(
    base: &Scenario,
    seeds: &[u64],
) -> (Result<Report, String>, Vec<SeedOutcome>) {
    let mut result = Sweep::new(base.clone()).seeds(seeds).isolated(true).run();
    (result.reports.remove(0), result.outcomes.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_parsing_and_lengths() {
        let args = vec!["--paper".to_string()];
        assert_eq!(Fidelity::from_args(&args), Fidelity::Paper);
        assert_eq!(Fidelity::from_args(&[]), Fidelity::Quick);
        let (h, w) = Fidelity::Paper.lengths();
        assert_eq!((h, w), (14_000.0, 2_000.0));
        assert_eq!(Fidelity::Paper.seeds().len(), 7);
        assert!(Fidelity::Smoke.lengths().0 < Fidelity::Quick.lengths().0);
    }

    #[test]
    fn curve_runner_produces_one_report_per_design() {
        use eac::probe::{Placement, ProbeStyle, Signal};
        let designs = vec![
            Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.0),
            Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.05),
        ];
        let base = eac::scenario::Scenario::basic().tau(30.0);
        let reports = loss_load_curve(&base, &designs, Fidelity::Smoke);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.measured_s > 0.0));
    }

    #[test]
    fn isolated_runner_averages_surviving_seeds() {
        let base = Scenario::basic().horizon_secs(400.0).warmup_secs(100.0);
        let (avg, outcomes) = run_seeds_isolated(&base, &[1, 2]);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(outcomes.len(), 2);
        assert!(avg.unwrap().measured_s > 0.0);
    }

    #[test]
    fn isolated_runner_turns_budget_errors_into_outcomes() {
        let base = Scenario::basic()
            .horizon_secs(400.0)
            .warmup_secs(100.0)
            .event_budget(50);
        let (avg, outcomes) = run_seeds_isolated(&base, &[1, 2]);
        assert!(avg.is_err());
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, SeedOutcome::Error { .. })));
    }

    #[test]
    fn isolated_runner_contains_panics() {
        // warmup >= horizon trips an assert inside run(); the panic must
        // stay confined to its seed.
        let bad = Scenario::basic().horizon_secs(100.0).warmup_secs(100.0);
        let (avg, outcomes) = run_seeds_isolated(&bad, &[7]);
        assert!(avg.is_err());
        assert!(matches!(outcomes[0], SeedOutcome::Panic { .. }));
        assert_eq!(outcomes[0].seed(), 7);
    }
}
