//! Run-length presets and curve runners.

use eac::design::Design;
use eac::metrics::Report;
use eac::scenario::{run_seeds, Scenario};

/// How long and how many seeds to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fidelity {
    /// A few-minute smoke pass (for harness testing).
    Smoke,
    /// The default: shapes hold, minutes per figure on one core.
    Quick,
    /// The paper's §3.2 methodology: 14 000 s horizon, 2 000 s warm-up,
    /// 7 seeds. Hours per figure on one core.
    Paper,
}

impl Fidelity {
    /// Parse from CLI flags (`--smoke`, `--quick`, `--paper`).
    pub fn from_args(args: &[String]) -> Fidelity {
        if args.iter().any(|a| a == "--paper") {
            Fidelity::Paper
        } else if args.iter().any(|a| a == "--smoke") {
            Fidelity::Smoke
        } else {
            Fidelity::Quick
        }
    }

    /// (horizon s, warm-up s).
    pub fn lengths(self) -> (f64, f64) {
        match self {
            Fidelity::Smoke => (400.0, 100.0),
            Fidelity::Quick => (1_200.0, 250.0),
            Fidelity::Paper => (14_000.0, 2_000.0),
        }
    }

    /// Seeds to average over.
    pub fn seeds(self) -> Vec<u64> {
        match self {
            Fidelity::Smoke => vec![1],
            Fidelity::Quick => vec![1],
            Fidelity::Paper => vec![1, 2, 3, 4, 5, 6, 7],
        }
    }

    /// Apply run length to a scenario.
    pub fn apply(self, s: Scenario) -> Scenario {
        let (h, w) = self.lengths();
        s.horizon_secs(h).warmup_secs(w)
    }
}

/// Run `base` under each design, averaging across the fidelity's seeds;
/// produces the points of one loss-load curve per design.
pub fn loss_load_curve(base: &Scenario, designs: &[Design], fid: Fidelity) -> Vec<Report> {
    designs
        .iter()
        .map(|&d| {
            let s = fid.apply(base.clone().design(d));
            run_seeds(&s, &fid.seeds())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_parsing_and_lengths() {
        let args = vec!["--paper".to_string()];
        assert_eq!(Fidelity::from_args(&args), Fidelity::Paper);
        assert_eq!(Fidelity::from_args(&[]), Fidelity::Quick);
        let (h, w) = Fidelity::Paper.lengths();
        assert_eq!((h, w), (14_000.0, 2_000.0));
        assert_eq!(Fidelity::Paper.seeds().len(), 7);
        assert!(Fidelity::Smoke.lengths().0 < Fidelity::Quick.lengths().0);
    }

    #[test]
    fn curve_runner_produces_one_report_per_design() {
        use eac::probe::{Placement, ProbeStyle, Signal};
        let designs = vec![
            Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.0),
            Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.05),
        ];
        let base = eac::scenario::Scenario::basic().tau(30.0);
        let reports = loss_load_curve(&base, &designs, Fidelity::Smoke);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.measured_s > 0.0));
    }
}
