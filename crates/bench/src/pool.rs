//! The work pool: deterministic fan-out of independent jobs over scoped
//! threads.
//!
//! Simulation runs are embarrassingly parallel — each job owns an
//! independently seeded scenario clone — so the pool needs no work
//! stealing or channels: workers pull job indices from one atomic
//! counter and write each result into its own pre-allocated slot.
//! Collecting by stable job index means the caller sees results in the
//! exact order a serial loop would produce, so downstream averaging
//! (order-sensitive f64 summation) and serialization are **bit-identical
//! to the serial path** regardless of worker count or scheduling.
//!
//! Each job runs under `catch_unwind`, so one panicking job is reported
//! in its slot instead of poisoning the pool (the per-seed isolation
//! that `run_seeds_isolated` used to hand-roll serially).
//!
//! No external dependencies: plain `std::thread::scope` (the offline-shim
//! build rules out rayon).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of parallel jobs the host supports (`available_parallelism`,
/// falling back to 1 when it cannot be determined).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Session-wide default worker count; 0 = resolve to [`available_jobs`].
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the session default worker count (the `--jobs N` flag). 0 restores
/// "use available parallelism".
pub fn set_default_jobs(n: usize) {
    DEFAULT_JOBS.store(n, Ordering::Relaxed);
}

/// The worker count sweeps use when none is given explicitly: the value
/// from [`set_default_jobs`], or the host's available parallelism.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => available_jobs(),
        n => n,
    }
}

/// Run jobs `0..n_jobs` of `f` on up to `workers` threads, returning each
/// job's result (or its caught panic payload) in job-index order.
///
/// With `workers <= 1` the jobs run inline on the caller's thread in
/// index order — the exact serial loop, no threads spawned. Either way
/// the returned vector is ordered by job index, so callers observe
/// identical results at any worker count.
pub fn run_indexed<T, F>(n_jobs: usize, workers: usize, f: F) -> Vec<std::thread::Result<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n_jobs.max(1));
    if workers <= 1 {
        return (0..n_jobs)
            .map(|i| catch_unwind(AssertUnwindSafe(|| f(i))))
            .collect();
    }

    let slots: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let result = catch_unwind(AssertUnwindSafe(|| f(i)));
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_job_order_at_any_worker_count() {
        for workers in [1, 2, 4, 8] {
            let out = run_indexed(20, workers, |i| i * i);
            let vals: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(vals, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_are_contained_to_their_slot() {
        let out = run_indexed(5, 4, |i| {
            if i == 2 {
                panic!("job {i} exploded");
            }
            i
        });
        assert_eq!(out.len(), 5);
        for (i, r) in out.iter().enumerate() {
            if i == 2 {
                assert!(r.is_err());
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = run_indexed(2, 16, |i| i + 1);
        let vals: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn default_jobs_resolves() {
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
