//! The spec catalog: one [`TargetSpec`] per experiment target, encoding
//! the EXPERIMENTS.md verdicts as executable shape predicates.
//!
//! Thresholds are calibrated against the committed `results/*.json`
//! (paper fidelity) with enough slack that re-runs under fresh seeds
//! stay green, but tight enough that a qualitative regression — a
//! design winning that should lose, a floor vanishing, a crossover
//! drifting out of its window — fails the gate. Every check's `claim`
//! quotes the prose assertion it replaces; the generated block in
//! EXPERIMENTS.md is rendered from these outcomes.

use crate::shapecheck::{
    crossover_between, dominates, ext, monotone_increasing, within, Agg, Check, Expr, Op, Pred,
    Rhs, RowShape, Sel, TargetSpec,
};

/// Design label constants (Report rows hyphenate, tuple rows do not).
const DROP_IB: &str = "drop (in-band)";
const DROP_OOB: &str = "drop (out-of-band)";
const MARK_IB: &str = "mark (in-band)";
const MARK_OOB: &str = "mark (out-of-band)";
const MBAC: &str = "MBAC";

fn check(id: &'static str, claim: &'static str, pred: Pred) -> Check {
    Check { id, claim, pred }
}

/// Row-count invariant: the sweep grid is complete.
fn grid_complete(id: &'static str, n: usize) -> Check {
    check(
        id,
        "the full sweep grid is present",
        Pred::Cmp {
            lhs: ext(Sel::all(), "param", Agg::Count),
            op: Op::Ge,
            rhs: Rhs::Const(n as f64),
        },
    )
}

/// MBAC's η knob trades utilization up as the target rises.
fn mbac_knob() -> Check {
    check(
        "mbac-knob",
        "MBAC utilization rises monotonically with the target eta",
        monotone_increasing(Sel::design(MBAC), "param", "utilization", 1e-6),
    )
}

/// MBAC's η knob still controls the operating point under noisy source
/// models, but with local dips: assert the end-to-end rise instead.
fn mbac_knob_trend() -> Check {
    check(
        "mbac-knob",
        "raising MBAC's target eta from 0.75 to 1.0 raises utilization overall",
        Pred::Cmp {
            lhs: ext(Sel::design(MBAC), "utilization", Agg::Last),
            op: Op::Ge,
            rhs: Rhs::Scaled(ext(Sel::design(MBAC), "utilization", Agg::First), 1.1),
        },
    )
}

/// Shared checks for a loss-load figure (Fig 2 / Fig 8 shape): the four
/// endpoint designs plus MBAC over their ε grids.
fn loss_load_checks(eps0_ceiling: f64, markoob_factor: f64) -> Vec<Check> {
    vec![
        grid_complete("grid", 28),
        check(
            "inband-floor",
            "in-band dropping has an irreducible loss floor even at eps = 0",
            Pred::Cmp {
                lhs: ext(Sel::design(DROP_IB), "data_loss", Agg::Min),
                op: Op::Ge,
                rhs: Rhs::Const(5e-4),
            },
        ),
        check(
            "marking-dominates",
            "out-of-band marking's loss floor sits well below in-band dropping's",
            dominates(
                Sel::design(MARK_OOB),
                Sel::design(DROP_IB),
                "data_loss",
                markoob_factor,
            ),
        ),
        check(
            "mbac-dominates",
            "router-based MBAC beats every endpoint scheme on loss",
            dominates(Sel::design(MBAC), Sel::design(DROP_IB), "data_loss", 0.1),
        ),
        check(
            "eps0-loss-small",
            "at eps = 0 the loss stays moderate (admission control works)",
            Pred::Cmp {
                lhs: ext(Sel::design(DROP_IB), "data_loss", Agg::First),
                op: Op::Le,
                rhs: Rhs::Const(eps0_ceiling),
            },
        ),
    ]
}

fn fig1() -> TargetSpec {
    TargetSpec {
        target: "fig1",
        code: "✓~",
        title: "Fig 1 — fluid-model thrashing",
        shape: RowShape::Tuple(&["probe_s", "utilization", "loss"]),
        derive: vec![],
        checks: vec![
            grid_complete("grid", 14),
            check(
                "plateau",
                "short probes sustain the admission-controlled plateau",
                Pred::EachRow {
                    sel: Sel::all().range("probe_s", 0.0, 1.9),
                    expr: Expr::Field("utilization"),
                    op: Op::Ge,
                    value: 0.5,
                },
            ),
            check(
                "collapse",
                "long probes thrash: utilization collapses below 10%",
                Pred::EachRow {
                    sel: Sel::all().range("probe_s", 3.6, f64::INFINITY),
                    expr: Expr::Field("utilization"),
                    op: Op::Le,
                    value: 0.10,
                },
            ),
            check(
                "thrash-onset",
                "in-band loss jumps past 50% at the thrashing onset near probe_s = 2",
                crossover_between("probe_s", "loss", 0.5, 1.8, 2.4),
            ),
        ],
    }
}

fn fig2() -> TargetSpec {
    let mut checks = loss_load_checks(1e-2, 1.0 / 3.0);
    checks.push(mbac_knob());
    checks.push(check(
        "util-band",
        "endpoint designs hold utilization in the paper's 0.7-0.9 band",
        Pred::EachRow {
            sel: Sel::all().has("design", "band"),
            expr: Expr::Field("utilization"),
            op: Op::Ge,
            value: 0.70,
        },
    ));
    checks.push(check(
        "util-ceiling",
        "no endpoint design overshoots the bottleneck share",
        Pred::EachRow {
            sel: Sel::all().has("design", "band"),
            expr: Expr::Field("utilization"),
            op: Op::Le,
            value: 0.92,
        },
    ));
    checks.push(check(
        "eps-raises-loss",
        "raising the acceptance threshold eps buys load at the cost of loss",
        Pred::Cmp {
            lhs: ext(Sel::design(DROP_IB), "data_loss", Agg::Last),
            op: Op::Ge,
            rhs: Rhs::Scaled(ext(Sel::design(DROP_IB), "data_loss", Agg::First), 1.2),
        },
    ));
    TargetSpec {
        target: "fig2",
        code: "✓",
        title: "Fig 2 — basic scenario loss-load curves",
        shape: RowShape::Reports,
        derive: vec![],
        checks,
    }
}

fn fig3() -> TargetSpec {
    // Rows 0-5: 5 s probes; rows 6-11: 25 s probes; rows 12-17: MBAC.
    let short = || Sel::design(DROP_IB).block(0, 6);
    let long = || Sel::design(DROP_IB).block(6, 6);
    TargetSpec {
        target: "fig3",
        code: "✓",
        title: "Fig 3 — longer probing (5 s vs 25 s)",
        shape: RowShape::Reports,
        derive: vec![],
        checks: vec![
            grid_complete("grid", 18),
            check(
                "long-probe-overhead",
                "25 s probes pay several times the probe overhead of 5 s probes",
                Pred::Cmp {
                    lhs: ext(long(), "probe_overhead", Agg::Mean),
                    op: Op::Ge,
                    rhs: Rhs::Scaled(ext(short(), "probe_overhead", Agg::Mean), 3.0),
                },
            ),
            check(
                "long-probe-loss",
                "the longer measurement halves the eps = 0 loss",
                Pred::Cmp {
                    lhs: ext(long(), "data_loss", Agg::First),
                    op: Op::Le,
                    rhs: Rhs::Scaled(ext(short(), "data_loss", Agg::First), 0.5),
                },
            ),
            check(
                "long-probe-util",
                "probe traffic displaces data: 25 s probing yields no more utilization",
                Pred::Cmp {
                    lhs: ext(long(), "utilization", Agg::Mean),
                    op: Op::Le,
                    rhs: Rhs::Scaled(ext(short(), "utilization", Agg::Mean), 1.0),
                },
            ),
            mbac_knob(),
        ],
    }
}

/// Figs 4-7 share a layout: three probe-style blocks (Simple, Slow Start,
/// Early Reject) of `w` rows each for one design, then MBAC.
fn fig4to7(
    target: &'static str,
    title: &'static str,
    design: &'static str,
    w: usize,
    extra: Vec<Check>,
) -> TargetSpec {
    let simple = move || Sel::design(design).block(0, w);
    let slowstart = move || Sel::design(design).block(w, w);
    let mut checks = vec![
        grid_complete("grid", 3 * w + 6),
        check(
            "slowstart-overhead",
            "slow-start probing halves the overhead of simple probing",
            Pred::Cmp {
                lhs: ext(slowstart(), "probe_overhead", Agg::Mean),
                op: Op::Le,
                rhs: Rhs::Scaled(ext(simple(), "probe_overhead", Agg::Mean), 0.5),
            },
        ),
        mbac_knob(),
    ];
    checks.extend(extra);
    TargetSpec {
        target,
        code: "✓",
        title,
        shape: RowShape::Reports,
        derive: vec![],
        checks,
    }
}

fn fig4() -> TargetSpec {
    let simple = || Sel::design(DROP_IB).block(0, 6);
    let slowstart = || Sel::design(DROP_IB).block(6, 6);
    fig4to7(
        "fig4",
        "Fig 4 — high load, drop (in-band)",
        DROP_IB,
        6,
        vec![
            check(
                "slowstart-loss",
                "slow-start probing cuts the data loss of simple probing",
                Pred::Cmp {
                    lhs: ext(slowstart(), "data_loss", Agg::Mean),
                    op: Op::Le,
                    rhs: Rhs::Scaled(ext(simple(), "data_loss", Agg::Mean), 0.8),
                },
            ),
            check(
                "slowstart-util",
                "slow-start probing sustains at least simple probing's utilization",
                Pred::Cmp {
                    lhs: ext(slowstart(), "utilization", Agg::Min),
                    op: Op::Ge,
                    rhs: Rhs::Scaled(ext(simple(), "utilization", Agg::Max), 1.0),
                },
            ),
            check(
                "high-load-blocking",
                "under tau = 1 s overload most flows are rejected",
                Pred::EachRow {
                    sel: Sel::design(DROP_IB),
                    expr: Expr::Field("blocking"),
                    op: Op::Ge,
                    value: 0.6,
                },
            ),
        ],
    )
}

fn fig5() -> TargetSpec {
    fig4to7(
        "fig5",
        "Fig 5 — high load, drop (out-of-band)",
        DROP_OOB,
        5,
        vec![check(
            "loss-stays-small",
            "out-of-band dropping keeps data loss below 2% even at high load",
            Pred::EachRow {
                sel: Sel::design(DROP_OOB),
                expr: Expr::Field("data_loss"),
                op: Op::Le,
                value: 2e-2,
            },
        )],
    )
}

fn fig6() -> TargetSpec {
    let simple = || Sel::design(MARK_IB).block(0, 6);
    let slowstart = || Sel::design(MARK_IB).block(6, 6);
    fig4to7(
        "fig6",
        "Fig 6 — high load, mark (in-band)",
        MARK_IB,
        6,
        vec![check(
            "slowstart-loss",
            "slow-start probing cuts marking's data loss versus simple probing",
            Pred::Cmp {
                lhs: ext(slowstart(), "data_loss", Agg::Mean),
                op: Op::Le,
                rhs: Rhs::Scaled(ext(simple(), "data_loss", Agg::Mean), 0.7),
            },
        )],
    )
}

fn fig7() -> TargetSpec {
    fig4to7(
        "fig7",
        "Fig 7 — high load, mark (out-of-band)",
        MARK_OOB,
        5,
        vec![check(
            "loss-stays-small",
            "out-of-band marking is the cleanest design: loss below 0.5%",
            Pred::EachRow {
                sel: Sel::design(MARK_OOB),
                expr: Expr::Field("data_loss"),
                op: Op::Le,
                value: 5e-3,
            },
        )],
    )
}

/// Figs 8(a)-(f): the Fig 2 shape re-run under a different source model.
fn fig8(target: &'static str, title: &'static str, eps0_ceiling: f64) -> TargetSpec {
    let mut checks = loss_load_checks(eps0_ceiling, 0.6);
    checks.push(mbac_knob_trend());
    TargetSpec {
        target,
        code: "✓",
        title,
        shape: RowShape::Reports,
        derive: vec![],
        checks,
    }
}

fn fig9() -> TargetSpec {
    TargetSpec {
        target: "fig9",
        code: "✓",
        title: "Fig 9 — loss across scenarios at fixed eps",
        shape: RowShape::Tuple(&["design", "scenario", "loss"]),
        derive: vec![],
        checks: vec![
            grid_complete("grid", 32),
            check(
                "oob-uniformly-small",
                "out-of-band designs keep loss below 5% in every scenario",
                Pred::EachRow {
                    sel: Sel::all().has("design", "out of band"),
                    expr: Expr::Field("loss"),
                    op: Op::Le,
                    value: 5e-2,
                },
            ),
            check(
                "inband-spread",
                "in-band dropping's loss varies by over an order of magnitude across scenarios",
                Pred::Cmp {
                    lhs: ext(Sel::design("drop (in band)"), "loss", Agg::Max),
                    op: Op::Ge,
                    rhs: Rhs::Scaled(ext(Sel::design("drop (in band)"), "loss", Agg::Min), 10.0),
                },
            ),
            check(
                "worst-scenarios",
                "the hardest scenarios for in-band dropping are the bursty/low-multiplexing ones",
                Pred::ArgmaxIn {
                    sel: Sel::design("drop (in band)"),
                    metric: "loss",
                    label: "scenario",
                    allowed: &["Heavy Load", "Low multiplexing", "Star Wars"],
                },
            ),
        ],
    }
}

fn table3() -> TargetSpec {
    TargetSpec {
        target: "table3",
        code: "✓",
        title: "Table 3 — heterogeneous eps: who gets blocked",
        shape: RowShape::Tuple(&["design", "low_eps_blocking", "high_eps_blocking"]),
        derive: vec![],
        checks: vec![
            grid_complete("grid", 4),
            check(
                "low-eps-blocked-more",
                "picky (low-eps) flows see higher blocking than tolerant ones in every design",
                Pred::EachRow {
                    sel: Sel::all(),
                    expr: Expr::Ratio("low_eps_blocking", "high_eps_blocking"),
                    op: Op::Ge,
                    value: 1.2,
                },
            ),
            check(
                "inband-magnitude",
                "in-band dropping's low-eps blocking lands near the paper's magnitude",
                within(
                    ext(
                        Sel::design("drop (in band)"),
                        "low_eps_blocking",
                        Agg::First,
                    ),
                    0.238,
                    0.3,
                ),
            ),
        ],
    }
}

fn table4() -> TargetSpec {
    TargetSpec {
        target: "table4",
        code: "✓",
        title: "Table 4 — small vs large flows",
        shape: RowShape::Tuple(&["design", "small_blocking", "large_blocking"]),
        derive: vec![],
        checks: vec![
            grid_complete("grid", 5),
            check(
                "mbac-discriminates",
                "MBAC penalizes large flows far more than small ones",
                Pred::Cmp {
                    lhs: ext(Sel::design(MBAC), "large_blocking", Agg::First),
                    op: Op::Ge,
                    rhs: Rhs::Scaled(ext(Sel::design(MBAC), "small_blocking", Agg::First), 1.5),
                },
            ),
            check(
                "endpoint-fairer",
                "every endpoint design discriminates less than MBAC does",
                Pred::Cmp {
                    lhs: ext(Sel::all().has("design", "band"), "large_blocking", Agg::Max),
                    op: Op::Le,
                    rhs: Rhs::Scaled(ext(Sel::design(MBAC), "large_blocking", Agg::First), 0.95),
                },
            ),
        ],
    }
}

fn tables56() -> TargetSpec {
    TargetSpec {
        target: "tables56",
        code: "✓",
        title: "Tables 5-6 — multi-hop topology",
        shape: RowShape::Reports,
        derive: vec![
            (
                "cross_max_blocking",
                Expr::MaxOf(&["g0.blocking", "g1.blocking", "g2.blocking"]),
            ),
            (
                "cross_mean_loss",
                Expr::MeanOf(&["g0.loss", "g1.loss", "g2.loss"]),
            ),
        ],
        checks: vec![
            grid_complete("grid", 5),
            check(
                "long-path-blocked-more",
                "the long (multi-hop) class sees higher blocking than any short class",
                Pred::EachRow {
                    sel: Sel::all(),
                    expr: Expr::Ratio("g3.blocking", "cross_max_blocking"),
                    op: Op::Ge,
                    value: 1.05,
                },
            ),
            check(
                "long-path-loses-more",
                "multi-hop flows also absorb more loss than single-hop cross traffic",
                Pred::Cmp {
                    lhs: ext(Sel::all(), "g3.loss", Agg::Sum),
                    op: Op::Ge,
                    rhs: Rhs::Scaled(ext(Sel::all(), "cross_mean_loss", Agg::Sum), 1.2),
                },
            ),
            check(
                "loss-stays-small",
                "multi-hop loss remains in the sub-2% regime at eps = 0",
                Pred::EachRow {
                    sel: Sel::all(),
                    expr: Expr::Field("g3.loss"),
                    op: Op::Le,
                    value: 2e-2,
                },
            ),
        ],
    }
}

fn fig11() -> TargetSpec {
    TargetSpec {
        target: "fig11",
        code: "✓~",
        title: "Fig 11 — TCP coexistence at a drop-tail router",
        shape: RowShape::Objects,
        derive: vec![],
        checks: vec![
            grid_complete("grid", 8),
            check(
                "lockout",
                "at strict thresholds TCP's own loss locks admission-controlled traffic out",
                Pred::EachRow {
                    sel: Sel::all().range("epsilon", 0.0, 0.055),
                    expr: Expr::Field("eac_util"),
                    op: Op::Le,
                    value: 0.01,
                },
            ),
            check(
                "tcp-keeps-link",
                "under lockout TCP keeps the whole link",
                Pred::EachRow {
                    sel: Sel::all().range("epsilon", 0.0, 0.055),
                    expr: Expr::Field("tcp_util"),
                    op: Op::Ge,
                    value: 0.95,
                },
            ),
            check(
                "critical-eps",
                "admission-controlled traffic breaks through once eps clears TCP's loss rate",
                crossover_between("epsilon", "eac_util", 0.05, 0.05, 0.09),
            ),
            check(
                "sharing",
                "past the critical eps the designs share, EAC taking a minority of the link",
                Pred::EachRow {
                    sel: Sel::all().range("epsilon", 0.08, 1.0),
                    expr: Expr::Field("eac_util"),
                    op: Op::Ge,
                    value: 0.1,
                },
            ),
            check(
                "tcp-never-starved",
                "TCP is never starved at any threshold",
                Pred::EachRow {
                    sel: Sel::all(),
                    expr: Expr::Field("tcp_util"),
                    op: Op::Ge,
                    value: 0.5,
                },
            ),
        ],
    }
}

fn robust_flap() -> TargetSpec {
    TargetSpec {
        target: "robust-flap",
        code: "✓",
        title: "Robustness — flapping bottleneck",
        shape: RowShape::Reports,
        derive: vec![],
        checks: vec![
            grid_complete("grid", 4),
            check(
                "steady-clean",
                "the steady baseline runs loss-, blocking- and timeout-free",
                Pred::EachRow {
                    sel: Sel::all().has("design", "steady"),
                    expr: Expr::MaxOf(&["data_loss", "blocking", "timeouts"]),
                    op: Op::Le,
                    value: 0.0,
                },
            ),
            check(
                "flap-costs-util",
                "capacity flapping strictly degrades utilization",
                Pred::Cmp {
                    lhs: ext(
                        Sel::all().has("design", "flapping"),
                        "utilization",
                        Agg::Max,
                    ),
                    op: Op::Le,
                    rhs: Rhs::Scaled(
                        ext(Sel::all().has("design", "steady"), "utilization", Agg::Min),
                        0.95,
                    ),
                },
            ),
            check(
                "flap-causes-loss",
                "flows admitted before a capacity drop suffer real loss",
                Pred::EachRow {
                    sel: Sel::all().has("design", "flapping"),
                    expr: Expr::Field("data_loss"),
                    op: Op::Ge,
                    value: 1e-3,
                },
            ),
            check(
                "flap-trips-timeouts",
                "verdict timeouts fire during outages",
                Pred::EachRow {
                    sel: Sel::all().has("design", "flapping"),
                    expr: Expr::Field("timeouts"),
                    op: Op::Ge,
                    value: 1.0,
                },
            ),
            check(
                "no-leaks",
                "no per-flow state leaks in either condition",
                Pred::EachRow {
                    sel: Sel::all(),
                    expr: Expr::Field("leaked_flows"),
                    op: Op::Le,
                    value: 0.0,
                },
            ),
        ],
    }
}

fn robust_ctrl_loss() -> TargetSpec {
    TargetSpec {
        target: "robust-ctrl-loss",
        code: "✓",
        title: "Robustness — lost control packets",
        shape: RowShape::Reports,
        derive: vec![],
        checks: vec![
            grid_complete("grid", 8),
            check(
                "baseline-clean",
                "with no control loss both variants run clean",
                Pred::EachRow {
                    sel: Sel::all().has("design", "0.00"),
                    expr: Expr::MaxOf(&["data_loss", "blocking", "timeouts", "leaked_flows"]),
                    op: Op::Le,
                    value: 0.0,
                },
            ),
            check(
                "timeout-rejects",
                "with the verdict timeout armed, lost verdicts surface as blocking",
                Pred::Cmp {
                    lhs: ext(Sel::all().has("design", "timeout 5s"), "blocking", Agg::Max),
                    op: Op::Ge,
                    rhs: Rhs::Const(0.3),
                },
            ),
            check(
                "no-timeout-leaks",
                "without the timeout the same losses strand flow state instead",
                Pred::Cmp {
                    lhs: ext(
                        Sel::all().has("design", "no timeout"),
                        "leaked_flows",
                        Agg::Max,
                    ),
                    op: Op::Ge,
                    rhs: Rhs::Scaled(
                        ext(
                            Sel::all().has("design", "timeout 5s"),
                            "leaked_flows",
                            Agg::Max,
                        ),
                        3.0,
                    ),
                },
            ),
            check(
                "no-timeout-silent",
                "without the timeout nothing is rejected — the failure is silent",
                Pred::EachRow {
                    sel: Sel::all().has("design", "no timeout"),
                    expr: Expr::MaxOf(&["blocking", "timeouts"]),
                    op: Op::Le,
                    value: 0.0,
                },
            ),
            check(
                "ctrl-loss-costs-util",
                "20% control loss costs a third of the utilization",
                Pred::Cmp {
                    lhs: ext(Sel::all().has("design", "0.20"), "utilization", Agg::Max),
                    op: Op::Le,
                    rhs: Rhs::Scaled(
                        ext(Sel::all().has("design", "0.00"), "utilization", Agg::Min),
                        0.7,
                    ),
                },
            ),
        ],
    }
}

fn bench_sweep() -> TargetSpec {
    TargetSpec {
        target: "BENCH_sweep",
        code: "✓",
        title: "Bench — parallel sweep determinism",
        shape: RowShape::Objects,
        derive: vec![],
        checks: vec![
            check(
                "byte-identical",
                "the parallel sweep's merged output is byte-identical to the serial run",
                Pred::EachRow {
                    sel: Sel::all(),
                    expr: Expr::Field("byte_identical"),
                    op: Op::Ge,
                    value: 1.0,
                },
            ),
            check(
                "work-done",
                "the sweep actually processed events",
                Pred::Cmp {
                    lhs: ext(Sel::all(), "total_events", Agg::First),
                    op: Op::Gt,
                    rhs: Rhs::Const(0.0),
                },
            ),
        ],
    }
}

/// Every target's spec, in EXPERIMENTS.md order.
pub fn catalog() -> Vec<TargetSpec> {
    vec![
        fig1(),
        fig2(),
        fig3(),
        fig4(),
        fig5(),
        fig6(),
        fig7(),
        fig8("fig8a", "Fig 8(a) — source model EXP2", 1e-2),
        fig8("fig8b", "Fig 8(b) — source model EXP3", 1e-2),
        fig8("fig8c", "Fig 8(c) — source model POO1", 1e-2),
        fig8("fig8d", "Fig 8(d) — Star Wars trace", 5e-2),
        fig8("fig8e", "Fig 8(e) — heterogeneous mix", 2e-2),
        fig8("fig8f", "Fig 8(f) — low multiplexing", 5e-2),
        fig9(),
        table3(),
        table4(),
        tables56(),
        fig11(),
        robust_flap(),
        robust_ctrl_loss(),
        bench_sweep(),
    ]
}
