//! The sweep builder: one entry point for every multi-run experiment.
//!
//! A [`Sweep`] fans the design × seed grid out over the [`pool`] and
//! averages each design's surviving seeds into one [`Report`]. It
//! subsumes the old `run_seeds` (one design, several seeds),
//! `loss_load_curve` (several designs) and `run_seeds_isolated` (per-seed
//! panic/error containment) free functions, which remain as thin shims.
//!
//! Determinism: jobs are laid out design-major (`design * seeds + seed`),
//! results come back from the pool in job-index order, and each design's
//! reports are averaged in seed order — the identical f64 summation order
//! a serial loop performs — so sweep output is bit-identical at any
//! worker count.

use crate::pool::{self, run_indexed};
use crate::runner::SeedOutcome;
use eac::design::Design;
use eac::metrics::Report;
use eac::scenario::Scenario;
use simcore::SimTime;
use std::path::PathBuf;
use telemetry::{FlightRecorder, Metrics, Telemetry, TelemetryConfig, TimeSeries};

/// Turn a caught panic payload into a displayable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Where and how a sweep captures telemetry. Every seed of the grid gets
/// its own instrument hub; after the (deterministic, grid-ordered) fold
/// the sweep writes, per seed, `d{design}_s{seed}.series.csv` and
/// `.metrics.json`, plus per design a seed-merged `d{design}.metrics.json`
/// and a seed-averaged `d{design}.series.csv`. Failed seeds dump their
/// flight ring as `d{design}_s{seed}.flight.jsonl` instead.
#[derive(Clone, Debug)]
pub struct SweepTelemetry {
    /// Output directory (created on demand; the caller owns its naming).
    pub dir: PathBuf,
    /// Sampler period, simulated seconds.
    pub sample_period_s: f64,
    /// Flight-recorder ring capacity per seed.
    pub recorder_capacity: usize,
}

impl SweepTelemetry {
    /// Telemetry into `dir` with the default 1 s sampling period and
    /// 4096-event flight ring.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SweepTelemetry {
            dir: dir.into(),
            sample_period_s: 1.0,
            recorder_capacity: 4096,
        }
    }
}

/// Results of a [`Sweep`]: one averaged report and one per-seed outcome
/// list per design, in the order the designs were given.
#[derive(Debug)]
pub struct SweepResult {
    /// Per design: the average report over surviving seeds, or an error
    /// describing why no seed survived.
    pub reports: Vec<Result<Report, String>>,
    /// Per design, per seed: what happened.
    pub outcomes: Vec<Vec<SeedOutcome>>,
}

impl SweepResult {
    /// Unwrap every per-design report, panicking with the recorded
    /// message if any design had no surviving seed.
    pub fn expect_reports(self) -> Vec<Report> {
        self.reports
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect()
    }

    /// True if every seed of every design completed.
    pub fn all_ok(&self) -> bool {
        self.outcomes
            .iter()
            .all(|per_design| per_design.iter().all(|o| o.is_ok()))
    }
}

/// A multi-run experiment: one base scenario swept over designs and
/// seeds, executed on the work pool.
///
/// ```no_run
/// use eac_bench::Sweep;
/// use eac::scenario::Scenario;
///
/// let result = Sweep::new(Scenario::basic())
///     .seeds(&[1, 2, 3])
///     .jobs(4)
///     .isolated(true)
///     .run();
/// ```
#[derive(Clone, Debug)]
pub struct Sweep {
    base: Scenario,
    designs: Vec<Design>,
    seeds: Vec<u64>,
    jobs: usize,
    isolated: bool,
    telemetry: Option<SweepTelemetry>,
}

impl Sweep {
    /// A sweep of just the base scenario's own design and seed.
    pub fn new(base: Scenario) -> Self {
        let designs = vec![base.design];
        let seeds = vec![base.seed];
        Sweep {
            base,
            designs,
            seeds,
            jobs: 0,
            isolated: false,
            telemetry: None,
        }
    }

    /// Sweep these designs (default: the base scenario's design).
    pub fn designs(mut self, designs: &[Design]) -> Self {
        assert!(!designs.is_empty());
        self.designs = designs.to_vec();
        self
    }

    /// Average over these seeds (default: the base scenario's seed).
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        assert!(!seeds.is_empty());
        self.seeds = seeds.to_vec();
        self
    }

    /// Worker threads to use; 0 (the default) resolves to the session
    /// default ([`pool::default_jobs`] — the `--jobs` flag, or available
    /// parallelism). 1 runs inline with no threads.
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = n;
        self
    }

    /// With isolation, a panicking or erroring seed is recorded in the
    /// outcomes and excluded from its design's average instead of
    /// propagating; a design errors only when *no* seed survives.
    /// Without (the default), the first failure in grid order propagates
    /// as a panic, as the old serial runners did.
    pub fn isolated(mut self, yes: bool) -> Self {
        self.isolated = yes;
        self
    }

    /// Capture telemetry for every seed into `dir` (see
    /// [`SweepTelemetry`] for the file layout). Without this, a sweep
    /// still picks up the session-wide `--telemetry` directory when the
    /// CLI registered one.
    pub fn telemetry(mut self, dir: impl Into<PathBuf>) -> Self {
        self.telemetry = Some(SweepTelemetry::new(dir));
        self
    }

    /// Like [`telemetry`](Sweep::telemetry) with full control of the
    /// sampling period and ring capacity.
    pub fn telemetry_config(mut self, cfg: SweepTelemetry) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Run the design × seed grid on the pool and fold the results.
    pub fn run(&self) -> SweepResult {
        let n_seeds = self.seeds.len();
        let n_jobs = self.designs.len() * n_seeds;
        let workers = if self.jobs == 0 {
            pool::default_jobs()
        } else {
            self.jobs
        };
        let tcfg = self
            .telemetry
            .clone()
            .or_else(crate::telemetry_session::next_sweep_config);
        // Shared ring handles, retained outside `catch_unwind`, so a dead
        // job's final seconds of events stay reachable for the dump.
        let recorders: Vec<FlightRecorder> = match &tcfg {
            Some(t) => (0..n_jobs)
                .map(|_| FlightRecorder::new(t.recorder_capacity))
                .collect(),
            None => Vec::new(),
        };

        let raw = run_indexed(n_jobs, workers, |i| {
            let design = self.designs[i / n_seeds];
            let seed = self.seeds[i % n_seeds];
            let mut sc = self.base.clone().design(design).seed(seed);
            if let Some(t) = &tcfg {
                sc = sc.telemetry(
                    TelemetryConfig::new()
                        .sample_period(t.sample_period_s)
                        .with_recorder(recorders[i].clone()),
                );
            }
            sc.run_full()
        });

        let dump_flight = |di: usize, seed: u64, i: usize| {
            if let Some(t) = &tcfg {
                let path = t.dir.join(format!("d{di}_s{seed}.flight.jsonl"));
                if let Err(io) = recorders[i].dump_jsonl(&path) {
                    eprintln!("flight-recorder dump to {} failed: {io}", path.display());
                }
            }
        };

        let mut reports = Vec::with_capacity(self.designs.len());
        let mut outcomes = Vec::with_capacity(self.designs.len());
        let mut hubs: Vec<Option<Box<Telemetry>>> = Vec::with_capacity(n_jobs);
        let mut raw = raw.into_iter();
        for di in 0..self.designs.len() {
            let mut survivors = Vec::with_capacity(n_seeds);
            let mut per_seed = Vec::with_capacity(n_seeds);
            for (si, &seed) in self.seeds.iter().enumerate() {
                let i = di * n_seeds + si;
                match raw.next().expect("one result per job") {
                    Ok(Ok(out)) => {
                        survivors.push(out.report);
                        hubs.push(out.telemetry);
                        per_seed.push(SeedOutcome::Ok { seed });
                    }
                    Ok(Err(e)) => {
                        hubs.push(None);
                        dump_flight(di, seed, i);
                        if !self.isolated {
                            panic!("{e}");
                        }
                        per_seed.push(SeedOutcome::Error {
                            seed,
                            message: e.to_string(),
                        });
                    }
                    Err(payload) => {
                        hubs.push(None);
                        let message = panic_message(payload);
                        if tcfg.is_some() {
                            recorders[i].record(SimTime::ZERO, "sweep.panic", message.clone());
                        }
                        dump_flight(di, seed, i);
                        if !self.isolated {
                            panic!("seed {seed} panicked: {message}");
                        }
                        per_seed.push(SeedOutcome::Panic { seed, message });
                    }
                }
            }
            let avg = if survivors.is_empty() {
                let detail: Vec<String> = per_seed
                    .iter()
                    .map(|o| match o {
                        SeedOutcome::Ok { seed } => format!("seed {seed}: ok"),
                        SeedOutcome::Error { seed, message } => {
                            format!("seed {seed}: error: {message}")
                        }
                        SeedOutcome::Panic { seed, message } => {
                            format!("seed {seed}: panic: {message}")
                        }
                    })
                    .collect();
                Err(format!("no seed survived ({})", detail.join("; ")))
            } else {
                Ok(Report::average(&survivors))
            };
            reports.push(avg);
            outcomes.push(per_seed);
        }

        if let Some(t) = &tcfg {
            self.export_telemetry(t, &hubs);
        }

        SweepResult { reports, outcomes }
    }

    /// Write the collected hubs out, strictly in grid order — all file
    /// content comes from the (already deterministic) fold results, so
    /// the output tree is byte-identical at any worker count.
    fn export_telemetry(&self, t: &SweepTelemetry, hubs: &[Option<Box<Telemetry>>]) {
        if let Err(io) = std::fs::create_dir_all(&t.dir) {
            eprintln!("telemetry dir {} failed: {io}", t.dir.display());
            return;
        }
        let write = |path: PathBuf, content: String| {
            if let Err(io) = std::fs::write(&path, content) {
                eprintln!("telemetry write to {} failed: {io}", path.display());
            }
        };
        let n_seeds = self.seeds.len();
        for di in 0..self.designs.len() {
            let mut merged = Metrics::new();
            let mut series: Vec<&TimeSeries> = Vec::new();
            for (si, &seed) in self.seeds.iter().enumerate() {
                let Some(hub) = &hubs[di * n_seeds + si] else {
                    continue; // failed seed: its flight ring was dumped instead
                };
                let label = format!("d{di}_s{seed}");
                write(
                    t.dir.join(format!("{label}.series.csv")),
                    hub.sampler.series.to_csv(),
                );
                write(
                    t.dir.join(format!("{label}.metrics.json")),
                    serde_json::to_string(&hub.metrics).expect("metrics serialize"),
                );
                merged.merge(&hub.metrics);
                if !hub.sampler.series.is_empty() {
                    series.push(&hub.sampler.series);
                }
            }
            if !merged.is_empty() {
                write(
                    t.dir.join(format!("d{di}.metrics.json")),
                    serde_json::to_string(&merged).expect("metrics serialize"),
                );
            }
            if !series.is_empty() {
                write(
                    t.dir.join(format!("d{di}.series.csv")),
                    TimeSeries::mean_across(&series).to_csv(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> Scenario {
        Scenario::basic().horizon_secs(400.0).warmup_secs(100.0)
    }

    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        let base = quick_base();
        let serial = Sweep::new(base.clone()).seeds(&[1, 2]).jobs(1).run();
        let parallel = Sweep::new(base).seeds(&[1, 2]).jobs(8).run();
        let a = serial.expect_reports();
        let b = parallel.expect_reports();
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "parallel sweep diverged from serial");
    }

    #[test]
    fn isolated_sweep_records_failures_without_dying() {
        // An absurdly small event budget errors every seed gracefully.
        let base = quick_base().event_budget(50);
        let result = Sweep::new(base).seeds(&[1, 2]).jobs(2).isolated(true).run();
        assert!(result.reports[0].is_err());
        assert!(result.outcomes[0]
            .iter()
            .all(|o| matches!(o, SeedOutcome::Error { .. })));
    }

    #[test]
    fn isolated_sweep_contains_panics() {
        // warmup >= horizon trips an assert inside run(); the panic must
        // stay confined to its seed while the good seed survives.
        let base = quick_base();
        let mut bad = base.clone();
        bad.warmup_s = bad.horizon_s;
        let result = Sweep::new(bad).seeds(&[1]).jobs(2).isolated(true).run();
        assert!(result.reports[0].is_err());
        assert!(matches!(result.outcomes[0][0], SeedOutcome::Panic { .. }));
    }

    #[test]
    #[should_panic]
    fn unisolated_sweep_propagates_failures() {
        let base = quick_base().event_budget(50);
        Sweep::new(base).seeds(&[1]).jobs(1).run();
    }
}
