//! The sweep builder: one entry point for every multi-run experiment.
//!
//! A [`Sweep`] fans the design × seed grid out over the [`pool`] and
//! averages each design's surviving seeds into one [`Report`]. It
//! subsumes the old `run_seeds` (one design, several seeds),
//! `loss_load_curve` (several designs) and `run_seeds_isolated` (per-seed
//! panic/error containment) free functions, which remain as thin shims.
//!
//! Determinism: jobs are laid out design-major (`design * seeds + seed`),
//! results come back from the pool in job-index order, and each design's
//! reports are averaged in seed order — the identical f64 summation order
//! a serial loop performs — so sweep output is bit-identical at any
//! worker count.

use crate::pool::{self, run_indexed};
use crate::runner::SeedOutcome;
use eac::design::Design;
use eac::metrics::Report;
use eac::scenario::Scenario;

/// Turn a caught panic payload into a displayable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Results of a [`Sweep`]: one averaged report and one per-seed outcome
/// list per design, in the order the designs were given.
#[derive(Debug)]
pub struct SweepResult {
    /// Per design: the average report over surviving seeds, or an error
    /// describing why no seed survived.
    pub reports: Vec<Result<Report, String>>,
    /// Per design, per seed: what happened.
    pub outcomes: Vec<Vec<SeedOutcome>>,
}

impl SweepResult {
    /// Unwrap every per-design report, panicking with the recorded
    /// message if any design had no surviving seed.
    pub fn expect_reports(self) -> Vec<Report> {
        self.reports
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect()
    }

    /// True if every seed of every design completed.
    pub fn all_ok(&self) -> bool {
        self.outcomes
            .iter()
            .all(|per_design| per_design.iter().all(|o| o.is_ok()))
    }
}

/// A multi-run experiment: one base scenario swept over designs and
/// seeds, executed on the work pool.
///
/// ```no_run
/// use eac_bench::Sweep;
/// use eac::scenario::Scenario;
///
/// let result = Sweep::new(Scenario::basic())
///     .seeds(&[1, 2, 3])
///     .jobs(4)
///     .isolated(true)
///     .run();
/// ```
#[derive(Clone, Debug)]
pub struct Sweep {
    base: Scenario,
    designs: Vec<Design>,
    seeds: Vec<u64>,
    jobs: usize,
    isolated: bool,
}

impl Sweep {
    /// A sweep of just the base scenario's own design and seed.
    pub fn new(base: Scenario) -> Self {
        let designs = vec![base.design];
        let seeds = vec![base.seed];
        Sweep {
            base,
            designs,
            seeds,
            jobs: 0,
            isolated: false,
        }
    }

    /// Sweep these designs (default: the base scenario's design).
    pub fn designs(mut self, designs: &[Design]) -> Self {
        assert!(!designs.is_empty());
        self.designs = designs.to_vec();
        self
    }

    /// Average over these seeds (default: the base scenario's seed).
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        assert!(!seeds.is_empty());
        self.seeds = seeds.to_vec();
        self
    }

    /// Worker threads to use; 0 (the default) resolves to the session
    /// default ([`pool::default_jobs`] — the `--jobs` flag, or available
    /// parallelism). 1 runs inline with no threads.
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = n;
        self
    }

    /// With isolation, a panicking or erroring seed is recorded in the
    /// outcomes and excluded from its design's average instead of
    /// propagating; a design errors only when *no* seed survives.
    /// Without (the default), the first failure in grid order propagates
    /// as a panic, as the old serial runners did.
    pub fn isolated(mut self, yes: bool) -> Self {
        self.isolated = yes;
        self
    }

    /// Run the design × seed grid on the pool and fold the results.
    pub fn run(&self) -> SweepResult {
        let n_seeds = self.seeds.len();
        let n_jobs = self.designs.len() * n_seeds;
        let workers = if self.jobs == 0 {
            pool::default_jobs()
        } else {
            self.jobs
        };

        let raw = run_indexed(n_jobs, workers, |i| {
            let design = self.designs[i / n_seeds];
            let seed = self.seeds[i % n_seeds];
            self.base.clone().design(design).seed(seed).run()
        });

        let mut reports = Vec::with_capacity(self.designs.len());
        let mut outcomes = Vec::with_capacity(self.designs.len());
        let mut raw = raw.into_iter();
        for _ in 0..self.designs.len() {
            let mut survivors = Vec::with_capacity(n_seeds);
            let mut per_seed = Vec::with_capacity(n_seeds);
            for &seed in &self.seeds {
                match raw.next().expect("one result per job") {
                    Ok(Ok(report)) => {
                        survivors.push(report);
                        per_seed.push(SeedOutcome::Ok { seed });
                    }
                    Ok(Err(e)) => {
                        if !self.isolated {
                            panic!("{e}");
                        }
                        per_seed.push(SeedOutcome::Error {
                            seed,
                            message: e.to_string(),
                        });
                    }
                    Err(payload) => {
                        if !self.isolated {
                            std::panic::resume_unwind(payload);
                        }
                        per_seed.push(SeedOutcome::Panic {
                            seed,
                            message: panic_message(payload),
                        });
                    }
                }
            }
            let avg = if survivors.is_empty() {
                let detail: Vec<String> = per_seed
                    .iter()
                    .map(|o| match o {
                        SeedOutcome::Ok { seed } => format!("seed {seed}: ok"),
                        SeedOutcome::Error { seed, message } => {
                            format!("seed {seed}: error: {message}")
                        }
                        SeedOutcome::Panic { seed, message } => {
                            format!("seed {seed}: panic: {message}")
                        }
                    })
                    .collect();
                Err(format!("no seed survived ({})", detail.join("; ")))
            } else {
                Ok(Report::average(&survivors))
            };
            reports.push(avg);
            outcomes.push(per_seed);
        }

        SweepResult { reports, outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> Scenario {
        Scenario::basic().horizon_secs(400.0).warmup_secs(100.0)
    }

    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        let base = quick_base();
        let serial = Sweep::new(base.clone()).seeds(&[1, 2]).jobs(1).run();
        let parallel = Sweep::new(base).seeds(&[1, 2]).jobs(8).run();
        let a = serial.expect_reports();
        let b = parallel.expect_reports();
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "parallel sweep diverged from serial");
    }

    #[test]
    fn isolated_sweep_records_failures_without_dying() {
        // An absurdly small event budget errors every seed gracefully.
        let base = quick_base().event_budget(50);
        let result = Sweep::new(base).seeds(&[1, 2]).jobs(2).isolated(true).run();
        assert!(result.reports[0].is_err());
        assert!(result.outcomes[0]
            .iter()
            .all(|o| matches!(o, SeedOutcome::Error { .. })));
    }

    #[test]
    fn isolated_sweep_contains_panics() {
        // warmup >= horizon trips an assert inside run(); the panic must
        // stay confined to its seed while the good seed survives.
        let base = quick_base();
        let mut bad = base.clone();
        bad.warmup_s = bad.horizon_s;
        let result = Sweep::new(bad).seeds(&[1]).jobs(2).isolated(true).run();
        assert!(result.reports[0].is_err());
        assert!(matches!(result.outcomes[0][0], SeedOutcome::Panic { .. }));
    }

    #[test]
    #[should_panic]
    fn unisolated_sweep_propagates_failures() {
        let base = quick_base().event_budget(50);
        Sweep::new(base).seeds(&[1]).jobs(1).run();
    }
}
