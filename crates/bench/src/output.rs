//! Table printing and JSON persistence.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// Print an aligned table: a header row then data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<w$}", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Serialize `value` to `<dir>/<id>.json` (creating the directory).
/// The directory is `$EAC_RESULTS_DIR` when set, else `results/`.
pub fn save_json<T: Serialize>(id: &str, value: &T) {
    let dir = std::env::var("EAC_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let dir = Path::new(&dir);
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{id}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialize {id}: {e}"),
    }
}

/// Format a probability for tables: fixed for large values, scientific
/// for tiny ones (the paper's log-scale loss axes span 1e-5..1e-1).
pub fn fmt_prob(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else if p < 1e-3 {
        format!("{p:.1e}")
    } else {
        format!("{p:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_formatting() {
        assert_eq!(fmt_prob(0.0), "0");
        assert_eq!(fmt_prob(0.0123), "0.0123");
        assert_eq!(fmt_prob(0.00002), "2.0e-5");
    }

    #[test]
    fn tables_do_not_panic() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
