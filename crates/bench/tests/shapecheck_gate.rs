//! End-to-end tests of the reproduction gate: the committed results must
//! satisfy the spec catalog, a perturbed copy must fail it, and the
//! generated docs block must be idempotent.

use eac_bench::shapecheck::{self, check_targets};
use eac_bench::spec::catalog;
use std::path::{Path, PathBuf};

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[test]
fn committed_results_pass_every_spec() {
    let v = check_targets(&results_dir(), &catalog(), None);
    let failures: Vec<String> = v
        .results
        .iter()
        .flat_map(|t| {
            t.checks
                .iter()
                .filter(|c| !c.pass)
                .map(move |c| format!("{}/{}: {}", t.target, c.id, c.detail))
        })
        .collect();
    assert!(v.pass, "gate failed on committed results:\n{failures:#?}");
    assert_eq!(v.targets_checked, catalog().len());
}

#[test]
fn single_target_filter_checks_only_that_target() {
    let v = check_targets(&results_dir(), &catalog(), Some("fig2"));
    assert_eq!(v.targets_checked, 1);
    assert_eq!(v.results[0].target, "fig2");
    assert!(v.pass);
}

#[test]
fn perturbed_fig2_fails_the_gate() {
    // Scale every drop (in-band) loss down 10x: the irreducible in-band
    // loss floor — the paper's core negative result — disappears, and the
    // gate must notice.
    let text = std::fs::read_to_string(results_dir().join("fig2.json")).unwrap();
    let doctored = rescale_inband_losses(&text);
    assert_ne!(text, doctored, "perturbation must change the file");

    let dir = std::env::temp_dir().join(format!("shapecheck-perturb-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("fig2.json"), doctored).unwrap();
    let v = check_targets(&dir, &catalog(), Some("fig2"));
    std::fs::remove_dir_all(&dir).ok();

    assert!(!v.pass, "gate passed on doctored fig2");
    let fig2 = &v.results[0];
    assert!(
        fig2.checks
            .iter()
            .any(|c| c.id == "inband-floor" && !c.pass),
        "the loss-floor check specifically should fail: {:#?}",
        fig2.checks
    );
}

#[test]
fn missing_results_dir_fails_not_panics() {
    let v = check_targets(Path::new("/nonexistent-results"), &catalog(), None);
    assert!(!v.pass);
    assert!(v
        .results
        .iter()
        .all(|t| !t.pass && t.checks.len() == 1 && t.checks[0].id.ends_with(".load")));
}

#[test]
fn rendered_docs_inject_idempotently() {
    let v = check_targets(&results_dir(), &catalog(), None);
    let block = shapecheck::render_docs(&v);
    let doc = format!(
        "# EXPERIMENTS\n\nprose\n\n{}\nstale\n{}\n\ntail\n",
        shapecheck::DOCS_BEGIN,
        shapecheck::DOCS_END
    );
    let once = shapecheck::inject_docs(&doc, &block).unwrap();
    let twice = shapecheck::inject_docs(&once, &block).unwrap();
    assert_eq!(once, twice, "injection must be a fixed point");
    assert!(once.contains("fig2"));
    assert!(!once.contains("stale"));

    // The committed EXPERIMENTS.md must carry the markers and already be
    // up to date (the CI staleness gate relies on this).
    let committed = results_dir().join("../EXPERIMENTS.md");
    let text = std::fs::read_to_string(committed).unwrap();
    let refreshed = shapecheck::inject_docs(&text, &block).unwrap();
    assert_eq!(
        refreshed, text,
        "EXPERIMENTS.md verdict block is stale; run `experiments check --write-docs`"
    );
}

/// Multiply the `data_loss` value of every `drop (in-band)` row by 0.1,
/// editing the serialized JSON textually so the file stays otherwise
/// byte-identical.
fn rescale_inband_losses(text: &str) -> String {
    let v = serde_json::from_str(text).expect("fig2.json parses");
    let rows = v.as_array().expect("fig2.json is an array");
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let design = row.get("design").and_then(serde::Value::as_str).unwrap();
        let entries = row.as_object().unwrap();
        out.push('{');
        for (j, (k, val)) in entries.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&serde_json::to_string(k).unwrap());
            out.push(':');
            if k == "data_loss" && design == "drop (in-band)" {
                let scaled = val.as_f64().unwrap() * 0.1;
                out.push_str(&serde_json::to_string(&scaled).unwrap());
            } else {
                out.push_str(&serde_json::to_string(val).unwrap());
            }
        }
        out.push('}');
    }
    out.push(']');
    out
}
