//! The parallel executor's core contract: a sweep's serialized output is
//! byte-identical at any worker count. Runs a small Fig 2 grid (two
//! designs × two seeds) at one and eight workers and compares the JSON.

use eac::design::Design;
use eac::probe::{Placement, ProbeStyle, Signal};
use eac::scenario::Scenario;
use eac_bench::Sweep;

fn fig2_grid() -> (Scenario, Vec<Design>) {
    let base = Scenario::basic().horizon_secs(400.0).warmup_secs(100.0);
    let designs = vec![
        Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01),
        Design::endpoint(
            Signal::Mark,
            Placement::OutOfBand,
            ProbeStyle::SlowStart,
            0.05,
        ),
    ];
    (base, designs)
}

#[test]
fn jobs8_and_jobs1_serialize_byte_identically() {
    let (base, designs) = fig2_grid();
    let serial = Sweep::new(base.clone())
        .designs(&designs)
        .seeds(&[1, 2])
        .jobs(1)
        .run()
        .expect_reports();
    let parallel = Sweep::new(base)
        .designs(&designs)
        .seeds(&[1, 2])
        .jobs(8)
        .run()
        .expect_reports();
    let js = serde_json::to_string(&serial).expect("serialize serial reports");
    let jp = serde_json::to_string(&parallel).expect("serialize parallel reports");
    assert_eq!(js, jp, "parallel sweep diverged from the serial path");
    // Sanity: the runs actually simulated something.
    assert!(serial.iter().all(|r| r.events > 0 && r.measured_s > 0.0));
}

#[test]
fn isolated_sweep_is_deterministic_too() {
    let (base, designs) = fig2_grid();
    let run = |jobs: usize| {
        Sweep::new(base.clone())
            .designs(&designs)
            .seeds(&[1, 2])
            .jobs(jobs)
            .isolated(true)
            .run()
    };
    let a = run(1);
    let b = run(8);
    assert!(a.all_ok() && b.all_ok());
    let ja = serde_json::to_string(
        &a.reports
            .into_iter()
            .map(Result::unwrap)
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let jb = serde_json::to_string(
        &b.reports
            .into_iter()
            .map(Result::unwrap)
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert_eq!(ja, jb);
}
