//! Sweep-level telemetry: output is byte-identical at any worker count,
//! and failed seeds dump a flight ring naming the triggering event.

use eac::scenario::Scenario;
use eac_bench::Sweep;
use std::collections::BTreeMap;
use std::path::Path;

fn read_tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("telemetry dir exists") {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(entry.path()).unwrap());
    }
    out
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn telemetry_output_is_byte_identical_across_worker_counts() {
    let base = Scenario::basic().horizon_secs(400.0).warmup_secs(100.0);
    let d1 = fresh_dir("eac-telemetry-sweep-jobs1");
    let d8 = fresh_dir("eac-telemetry-sweep-jobs8");

    Sweep::new(base.clone())
        .seeds(&[1, 2])
        .jobs(1)
        .telemetry(&d1)
        .run();
    Sweep::new(base).seeds(&[1, 2]).jobs(8).telemetry(&d8).run();

    let t1 = read_tree(&d1);
    let t8 = read_tree(&d8);
    let names: Vec<&String> = t1.keys().collect();
    assert!(
        names.contains(&&"d0_s1.series.csv".to_string())
            && names.contains(&&"d0_s2.metrics.json".to_string())
            && names.contains(&&"d0.metrics.json".to_string())
            && names.contains(&&"d0.series.csv".to_string()),
        "unexpected file set: {names:?}"
    );
    assert_eq!(
        t1.keys().collect::<Vec<_>>(),
        t8.keys().collect::<Vec<_>>(),
        "file sets differ between worker counts"
    );
    for (name, bytes) in &t1 {
        assert_eq!(bytes, &t8[name], "{name} differs between --jobs 1 and 8");
    }

    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d8);
}

#[test]
fn failed_seed_dumps_flight_ring_with_trigger() {
    let dir = fresh_dir("eac-telemetry-sweep-dump");
    // A flapping bottleneck plus a tiny event budget: the run dies with
    // an EventBudgetExceeded RunError, which the sim loop records.
    let base = Scenario::basic()
        .horizon_secs(400.0)
        .warmup_secs(100.0)
        .flap(120.0, 150.0)
        .event_budget(20_000);
    let result = Sweep::new(base)
        .seeds(&[1])
        .jobs(1)
        .isolated(true)
        .telemetry(&dir)
        .run();
    assert!(result.reports[0].is_err());

    let dump = dir.join("d0_s1.flight.jsonl");
    let text = std::fs::read_to_string(&dump).expect("flight dump written");
    assert!(
        text.contains("run.error"),
        "dump lacks the triggering event:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
