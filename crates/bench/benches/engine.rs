//! Microbenchmarks of the simulation substrate: event calendar, queueing
//! disciplines, token buckets, traffic generators and the end-to-end
//! packet path. These guard the engine's throughput — the experiment
//! harness simulates hundreds of millions of packet events.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use netsim::{
    Agent, Api, Dequeue, DropTail, Drr, FlowId, Limit, Network, NodeId, Packet, Qdisc, Red,
    RedMode, RedParams, Sim, StrictPrio, TokenBucket, TrafficClass, VirtualQueue,
};
use simcore::{EventQueue, HeapEventQueue, SimDuration, SimRng, SimTime};
use traffic::{OnOff, PacketProcess, PeriodDist};

fn pkt(id: u64, class: TrafficClass) -> Packet {
    Packet::new(
        id,
        FlowId(id % 64),
        NodeId(0),
        NodeId(1),
        125,
        class,
        id,
        SimTime::ZERO,
    )
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event-queue");
    g.throughput(Throughput::Elements(10_000));
    // The bulk load: everything scheduled up front, then drained.
    g.bench_function("calendar schedule+pop 10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule_at(SimTime::from_nanos((i * 7919) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.bench_function("heap schedule+pop 10k", |b| {
        b.iter(|| {
            let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
            for i in 0..10_000u64 {
                q.schedule_at(SimTime::from_nanos((i * 7919) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    // The simulator's steady state: a rolling horizon of pending events,
    // each pop scheduling a short-delay successor.
    g.bench_function("calendar hold-model 10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..256u64 {
                q.schedule_at(SimTime::from_nanos(i * 311), i);
            }
            let mut acc = 0u64;
            for _ in 0..10_000u64 {
                let (_, e) = q.pop().unwrap();
                acc = acc.wrapping_add(e);
                q.schedule_in(SimDuration::from_nanos(1 + (e * 7919) % 200_000), e + 1);
            }
            black_box(acc)
        })
    });
    g.bench_function("heap hold-model 10k", |b| {
        b.iter(|| {
            let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
            for i in 0..256u64 {
                q.schedule_at(SimTime::from_nanos(i * 311), i);
            }
            let mut acc = 0u64;
            for _ in 0..10_000u64 {
                let (_, e) = q.pop().unwrap();
                acc = acc.wrapping_add(e);
                q.schedule_in(SimDuration::from_nanos(1 + (e * 7919) % 200_000), e + 1);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn run_qdisc(q: &mut dyn Qdisc, n: u64, class: TrafficClass) -> u64 {
    let now = SimTime::ZERO;
    let mut out = 0;
    for i in 0..n {
        let _ = q.enqueue(pkt(i, class), now);
        if i % 2 == 1 {
            if let Dequeue::Packet(_) = q.dequeue(now) {
                out += 1;
            }
        }
    }
    out
}

fn bench_qdiscs(c: &mut Criterion) {
    let mut g = c.benchmark_group("qdisc");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("drop-tail enqueue/dequeue", |b| {
        b.iter(|| {
            let mut q = DropTail::new(Limit::Packets(256));
            black_box(run_qdisc(&mut q, 10_000, TrafficClass::Data))
        })
    });
    g.bench_function("strict-prio (admission queue, oob)", |b| {
        b.iter(|| {
            let mut q = StrictPrio::admission_queue(Limit::Packets(256), true);
            black_box(run_qdisc(&mut q, 10_000, TrafficClass::Probe))
        })
    });
    g.bench_function("red (drop mode)", |b| {
        b.iter(|| {
            let mut q = Red::new(
                Limit::Packets(256),
                RedParams::default(),
                RedMode::Drop,
                SimRng::new(1),
            );
            black_box(run_qdisc(&mut q, 10_000, TrafficClass::Data))
        })
    });
    g.bench_function("drr (64 flows)", |b| {
        b.iter(|| {
            let mut q = Drr::new(125, Limit::Packets(256));
            black_box(run_qdisc(&mut q, 10_000, TrafficClass::Data))
        })
    });
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("token-bucket take", |b| {
        b.iter(|| {
            let mut tb = TokenBucket::new(10_000_000, 10_000.0);
            let mut t = SimTime::ZERO;
            let mut ok = 0u32;
            for _ in 0..10_000 {
                t += SimDuration::from_micros(100);
                if tb.try_take(125, t) {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    g.bench_function("virtual-queue marking", |b| {
        b.iter(|| {
            let mut vq = VirtualQueue::new(10_000_000, 0.9, 25_000.0);
            let mut t = SimTime::ZERO;
            let mut marks = 0u32;
            for i in 0..10_000 {
                let mut p = pkt(i, TrafficClass::Data);
                t += SimDuration::from_micros(90);
                vq.process(&mut p, t);
                marks += p.marked as u32;
            }
            black_box(marks)
        })
    });
    g.bench_function("exp on/off generator", |b| {
        b.iter(|| {
            let mut s = OnOff::new(256_000.0, 0.5, 0.5, PeriodDist::Exponential, 125);
            let mut rng = SimRng::new(3);
            let mut acc = 0u64;
            for _ in 0..10_000 {
                let (gap, size) = s.next_packet(&mut rng);
                acc = acc.wrapping_add(gap.as_nanos()).wrapping_add(size as u64);
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// End-to-end packet path: one sender blasting through a link to a sink.
struct Blaster {
    peer: NodeId,
    left: u64,
}
impl Agent for Blaster {
    fn on_start(&mut self, api: &mut Api) {
        api.timer_in(SimDuration::ZERO, 0, 0);
    }
    fn on_packet(&mut self, _p: Packet, _api: &mut Api) {}
    fn on_timer(&mut self, _k: u32, _d: u64, api: &mut Api) {
        if self.left > 0 {
            self.left -= 1;
            let p = Packet::new(
                self.left,
                FlowId(1),
                api.node,
                self.peer,
                125,
                TrafficClass::Data,
                self.left,
                api.now(),
            );
            api.send(p);
            api.timer_in(SimDuration::from_micros(100), 0, 0);
        }
    }
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
struct Sink;
impl Agent for Sink {
    fn on_packet(&mut self, _p: Packet, _api: &mut Api) {}
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end-to-end");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("20k packets through one link", |b| {
        b.iter(|| {
            let mut net = Network::new();
            let a = net.add_node();
            let z = net.add_node();
            net.add_link(
                a,
                z,
                10_000_000,
                SimDuration::from_millis(20),
                Box::new(DropTail::new(Limit::Packets(200))),
                None,
            );
            let mut sim = Sim::new(net);
            sim.attach(
                a,
                Box::new(Blaster {
                    peer: z,
                    left: 20_000,
                }),
            );
            sim.attach(z, Box::new(Sink));
            sim.run_to_completion();
            black_box(sim.queue.events_fired())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_qdiscs,
    bench_components,
    bench_end_to_end
);
criterion_main!(benches);
