//! Smoke-scale benches of every experiment family: one short run per
//! table/figure configuration, so `cargo bench` demonstrates that each
//! experiment's full code path (topology, agents, probing protocol,
//! metric collection) executes, and tracks its cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eac::coexist::CoexistScenario;
use eac::design::Design;
use eac::multihop::MultihopScenario;
use eac::probe::{Placement, ProbeStyle, Signal};
use eac::scenario::Scenario;
use eac_bench::{pool, Sweep};
use fluid::ThrashModel;

fn short(design: Design) -> Scenario {
    Scenario::basic()
        .design(design)
        .horizon_secs(120.0)
        .warmup_secs(30.0)
        .seed(1)
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    g.bench_function("fig1 fluid point", |b| {
        b.iter(|| black_box(ThrashModel::fig1(2.6).point(2_000.0, 2)))
    });

    for (name, signal, placement) in [
        ("fig2 drop in-band", Signal::Drop, Placement::InBand),
        ("fig2 drop oob", Signal::Drop, Placement::OutOfBand),
        ("fig2 mark in-band", Signal::Mark, Placement::InBand),
        ("fig2 mark oob", Signal::Mark, Placement::OutOfBand),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    short(Design::endpoint(
                        signal,
                        placement,
                        ProbeStyle::SlowStart,
                        0.01,
                    ))
                    .run()
                    .unwrap(),
                )
            })
        });
    }

    g.bench_function("fig2 MBAC benchmark", |b| {
        b.iter(|| black_box(short(Design::mbac(0.9)).run().unwrap()))
    });

    for (name, style) in [
        ("fig4 simple probing", ProbeStyle::Simple),
        ("fig4 slow start", ProbeStyle::SlowStart),
        ("fig4 early reject", ProbeStyle::EarlyReject),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    short(Design::endpoint(
                        Signal::Drop,
                        Placement::InBand,
                        style,
                        0.01,
                    ))
                    .tau(1.0)
                    .run()
                    .unwrap(),
                )
            })
        });
    }

    g.bench_function("fig8d video source", |b| {
        b.iter(|| {
            let s = short(Design::endpoint(
                Signal::Drop,
                Placement::InBand,
                ProbeStyle::SlowStart,
                0.01,
            ))
            .groups(vec![eac::design::Group::new(
                "StarWars",
                traffic::SourceSpec::starwars(),
                1.0,
            )])
            .tau(8.0);
            black_box(s.run().unwrap())
        })
    });

    g.bench_function("tables56 multihop", |b| {
        b.iter(|| {
            black_box(
                MultihopScenario::tables56()
                    .horizon_secs(120.0)
                    .warmup_secs(30.0)
                    .run()
                    .unwrap(),
            )
        })
    });

    g.bench_function("fig11 tcp coexistence", |b| {
        b.iter(|| {
            black_box(
                CoexistScenario::fig11(0.05)
                    .horizon_secs(120.0)
                    .steady_after_secs(60.0)
                    .run(),
            )
        })
    });

    // Telemetry guard: the disabled path (plain run) vs the fully
    // instrumented one. The first pair of benches must stay within noise
    // of each other's baseline run above; the enabled run quantifies the
    // instrumentation cost.
    g.bench_function("telemetry disabled", |b| {
        let s = short(Design::endpoint(
            Signal::Drop,
            Placement::InBand,
            ProbeStyle::SlowStart,
            0.01,
        ));
        b.iter(|| black_box(s.run().unwrap()))
    });
    g.bench_function("telemetry enabled", |b| {
        let s = short(Design::endpoint(
            Signal::Drop,
            Placement::InBand,
            ProbeStyle::SlowStart,
            0.01,
        ))
        .telemetry(telemetry::TelemetryConfig::new());
        b.iter(|| black_box(s.run_full().unwrap().report))
    });

    // The pooled executor on a 4-seed grid, serial vs all workers.
    let sweep_base = || {
        Sweep::new(short(Design::endpoint(
            Signal::Drop,
            Placement::InBand,
            ProbeStyle::SlowStart,
            0.01,
        )))
        .seeds(&[1, 2, 3, 4])
    };
    g.bench_function("sweep 4 seeds, 1 worker", |b| {
        b.iter(|| black_box(sweep_base().jobs(1).run().expect_reports()))
    });
    g.bench_function(
        &format!("sweep 4 seeds, {} workers", pool::available_jobs()),
        |b| {
            b.iter(|| {
                black_box(
                    sweep_base()
                        .jobs(pool::available_jobs())
                        .run()
                        .expect_reports(),
                )
            })
        },
    );

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
