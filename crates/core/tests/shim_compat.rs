//! Compatibility coverage for the deprecated run-entry shims. They stay
//! until downstreams migrate; this file is the only place allowed to call
//! them, so `#[allow(deprecated)]` never leaks into production code.
#![allow(deprecated)]

use eac::design::Design;
use eac::probe::{Placement, ProbeStyle, Signal};
use eac::scenario::{run_seeds, Scenario};
use eac::MultihopScenario;

fn short() -> Scenario {
    Scenario::basic()
        .design(Design::endpoint(
            Signal::Drop,
            Placement::InBand,
            ProbeStyle::SlowStart,
            0.01,
        ))
        .horizon_secs(120.0)
        .warmup_secs(30.0)
        .seed(1)
}

#[test]
fn try_run_matches_run() {
    let s = short();
    let a = s.run().unwrap();
    let b = s.try_run().unwrap();
    assert_eq!(a.utilization, b.utilization);
    assert_eq!(a.events, b.events);
}

#[test]
fn run_or_panic_matches_run() {
    let s = short();
    let a = s.run().unwrap();
    let b = s.run_or_panic();
    assert_eq!(a.utilization, b.utilization);
}

#[test]
fn free_run_seeds_averages() {
    let s = short();
    let avg = run_seeds(&s, &[1, 2]);
    let a = s.clone().seed(1).run().unwrap();
    let b = s.seed(2).run().unwrap();
    assert_eq!(avg.events, a.events + b.events);
    assert!((avg.utilization - (a.utilization + b.utilization) / 2.0).abs() < 1e-12);
}

#[test]
fn multihop_shims_run() {
    let mh = {
        let mut m = MultihopScenario::tables56();
        m.horizon_s = 150.0;
        m.warmup_s = 30.0;
        m.tau_long_s = 30.0;
        m.tau_cross_s = 30.0;
        m
    };
    let a = mh.run().unwrap();
    let b = mh.run_or_panic();
    assert_eq!(a.events, b.events);
    let c = mh.run_audited().unwrap();
    assert_eq!(a.groups.len(), c.groups.len());
}
