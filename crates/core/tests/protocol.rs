//! Protocol-level tests: drive the sink's verdict machinery with crafted
//! probe streams (bypassing a real traffic mix) and check each rule of
//! §3.1 — final-stage accept, per-stage reject, the in-flight abort, and
//! mark counting.

use eac::msg::{probe_aux, Msg};
use eac::probe::Signal;
use eac::sink::{SinkAgent, SinkConfig};
use netsim::{Agent, Api, DropTail, FlowId, Limit, Network, NodeId, Packet, Sim, TrafficClass};
use simcore::{SimDuration, SimTime};
use std::any::Any;

/// A scripted prober: sends an exact sequence of (kind, aux, seq, marked)
/// packets at fixed spacing, then records any verdicts that come back.
struct Scripted {
    peer: NodeId,
    script: Vec<(TrafficClass, u64, u64, bool)>,
    next: usize,
    pub verdicts: Vec<bool>,
}

impl Agent for Scripted {
    fn on_start(&mut self, api: &mut Api) {
        api.timer_in(SimDuration::ZERO, 0, 0);
    }

    fn on_packet(&mut self, pkt: Packet, _api: &mut Api) {
        match Msg::decode(pkt.aux) {
            Some(Msg::Accept) => self.verdicts.push(true),
            Some(Msg::Reject) => self.verdicts.push(false),
            _ => {}
        }
    }

    fn on_timer(&mut self, _k: u32, _d: u64, api: &mut Api) {
        if self.next >= self.script.len() {
            return;
        }
        let (class, aux, seq, marked) = self.script[self.next];
        self.next += 1;
        let mut pkt = Packet::new(
            seq,
            FlowId(1),
            api.node,
            self.peer,
            125,
            class,
            seq,
            api.now(),
        )
        .with_aux(aux);
        pkt.marked = marked;
        api.send(pkt);
        api.timer_in(SimDuration::from_millis(1), 0, 0);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn world(signal: Signal, eps: f64) -> (Sim, NodeId, NodeId) {
    let mut net = Network::new();
    let host = net.add_node();
    let sink = net.add_node();
    let fast = || Box::new(DropTail::new(Limit::Packets(10_000)));
    net.add_link(
        host,
        sink,
        100_000_000,
        SimDuration::from_millis(1),
        fast(),
        None,
    );
    net.add_link(
        sink,
        host,
        100_000_000,
        SimDuration::from_millis(1),
        fast(),
        None,
    );
    let mut sim = Sim::new(net);
    sim.attach(
        sink,
        Box::new(SinkAgent::new(SinkConfig {
            signal,
            eps_per_group: vec![eps],
            grace: SimDuration::from_millis(10),
            flow_ttl: SimDuration::from_secs(70),
        })),
    );
    (sim, host, sink)
}

fn probe(stage: u8, seq: u64) -> (TrafficClass, u64, u64, bool) {
    (TrafficClass::Probe, probe_aux(stage, 0), seq, false)
}

fn marked_probe(stage: u8, seq: u64) -> (TrafficClass, u64, u64, bool) {
    (TrafficClass::Probe, probe_aux(stage, 0), seq, true)
}

fn ctrl(msg: Msg) -> (TrafficClass, u64, u64, bool) {
    (TrafficClass::Control, msg.encode(), 0, false)
}

fn run_script(signal: Signal, eps: f64, script: Vec<(TrafficClass, u64, u64, bool)>) -> Vec<bool> {
    let (mut sim, host, _sink) = world(signal, eps);
    sim.attach(
        host,
        Box::new(Scripted {
            peer: NodeId(1),
            script,
            next: 0,
            verdicts: Vec::new(),
        }),
    );
    sim.run_until(SimTime::from_secs(10));
    sim.agent::<Scripted>(host).unwrap().verdicts.clone()
}

#[test]
fn clean_final_stage_accepts() {
    let mut script = vec![ctrl(Msg::ProbeStart {
        group: 0,
        expected: 10,
        abort: false,
    })];
    for i in 0..10 {
        script.push(probe(0, i));
    }
    script.push(ctrl(Msg::StageEnd {
        stage: 0,
        sent: 10,
        is_final: true,
    }));
    assert_eq!(run_script(Signal::Drop, 0.0, script), vec![true]);
}

#[test]
fn lossy_stage_rejects_at_zero_epsilon() {
    let mut script = vec![ctrl(Msg::ProbeStart {
        group: 0,
        expected: 10,
        abort: false,
    })];
    // Send 9 of 10 (one "lost": the sink sees sent=10, received=9).
    for i in 0..9 {
        script.push(probe(0, i));
    }
    script.push(ctrl(Msg::StageEnd {
        stage: 0,
        sent: 10,
        is_final: true,
    }));
    assert_eq!(run_script(Signal::Drop, 0.0, script), vec![false]);
}

#[test]
fn loss_within_epsilon_accepts() {
    let mut script = vec![ctrl(Msg::ProbeStart {
        group: 0,
        expected: 100,
        abort: false,
    })];
    for i in 0..95 {
        script.push(probe(0, i));
    }
    // 5/100 = 5% loss, threshold 10%.
    script.push(ctrl(Msg::StageEnd {
        stage: 0,
        sent: 100,
        is_final: true,
    }));
    assert_eq!(run_script(Signal::Drop, 0.10, script), vec![true]);
}

#[test]
fn early_stage_failure_rejects_before_final() {
    let mut script = vec![ctrl(Msg::ProbeStart {
        group: 0,
        expected: 20,
        abort: false,
    })];
    // Stage 0: 5 of 10 arrive -> 50% loss, must reject.
    for i in 0..5 {
        script.push(probe(0, i));
    }
    script.push(ctrl(Msg::StageEnd {
        stage: 0,
        sent: 10,
        is_final: false,
    }));
    // Stage 1 would have been clean, but the verdict already fell.
    for i in 10..20 {
        script.push(probe(1, i));
    }
    script.push(ctrl(Msg::StageEnd {
        stage: 1,
        sent: 10,
        is_final: true,
    }));
    let verdicts = run_script(Signal::Drop, 0.0, script);
    assert_eq!(verdicts, vec![false], "one verdict only, and it's a reject");
}

#[test]
fn in_flight_abort_fires_before_stage_end() {
    // Simple probing: expected 1000 packets, eps 1% -> budget 10 losses.
    // Sequence numbers jump by 50: the sink can prove the budget is blown
    // after a handful of arrivals, long before any stage-end report.
    let mut script = vec![ctrl(Msg::ProbeStart {
        group: 0,
        expected: 1_000,
        abort: true,
    })];
    for i in 0..5 {
        script.push(probe(0, i * 50));
    }
    let verdicts = run_script(Signal::Drop, 0.01, script);
    assert_eq!(verdicts, vec![false], "abort rule should reject mid-probe");
}

#[test]
fn marks_count_for_marking_designs_only() {
    let mk = |signal| {
        let mut script = vec![ctrl(Msg::ProbeStart {
            group: 0,
            expected: 10,
            abort: false,
        })];
        for i in 0..10 {
            // All delivered, half marked.
            if i % 2 == 0 {
                script.push(marked_probe(0, i));
            } else {
                script.push(probe(0, i));
            }
        }
        script.push(ctrl(Msg::StageEnd {
            stage: 0,
            sent: 10,
            is_final: true,
        }));
        run_script(signal, 0.10, script)
    };
    // Drop signal ignores marks: accepted.
    assert_eq!(mk(Signal::Drop), vec![true]);
    // Mark signal counts them: 50% >> 10%: rejected.
    assert_eq!(mk(Signal::Mark), vec![false]);
}

#[test]
fn duplicate_stage_end_yields_single_verdict() {
    let mut script = vec![ctrl(Msg::ProbeStart {
        group: 0,
        expected: 4,
        abort: false,
    })];
    for i in 0..4 {
        script.push(probe(0, i));
    }
    let end = ctrl(Msg::StageEnd {
        stage: 0,
        sent: 4,
        is_final: true,
    });
    script.push(end);
    script.push(end);
    assert_eq!(run_script(Signal::Drop, 0.0, script), vec![true]);
}
