//! Scenario-level telemetry integration: the hub comes back populated,
//! enabling it never perturbs the report, and a failed run dumps its
//! flight recorder.

use eac::scenario::Scenario;
use telemetry::TelemetryConfig;

fn short() -> Scenario {
    Scenario::basic()
        .tau(2.0)
        .horizon_secs(200.0)
        .warmup_secs(40.0)
        .seed(11)
}

#[test]
fn run_full_captures_series_metrics_and_events() {
    let out = short()
        .telemetry(TelemetryConfig::new().sample_period(1.0))
        .run_full()
        .unwrap();
    let tel = out.telemetry.expect("telemetry was enabled");

    // The sampler ticked once per simulated second up to the drain end.
    let series = &tel.sampler.series;
    assert!(series.len() >= 200, "only {} samples", series.len());
    assert!(series.column("l0.queue_pkts").is_some());
    assert!(series.column("l0.util").is_some());
    assert!(series.column("flows.admitted").is_some());

    // Admission lifecycle counters and histograms were exercised.
    assert!(tel.metrics.counter("host.probes_started") > 0);
    assert!(tel.metrics.counter("admission.accepts") > 0);
    let h = tel.metrics.hist("sink.delay_ns").expect("delay histogram");
    assert!(h.count() > 0);

    // Flight events recorded (probe starts at minimum).
    assert!(!tel.recorder.snapshot().is_empty());
}

#[test]
fn telemetry_does_not_perturb_the_report() {
    let plain = short().run().unwrap();
    let traced = short()
        .telemetry(TelemetryConfig::new())
        .run_full()
        .unwrap()
        .report;
    assert_eq!(plain.utilization, traced.utilization);
    assert_eq!(plain.data_loss, traced.data_loss);
    assert_eq!(plain.blocking, traced.blocking);
    assert_eq!(plain.events, traced.events);
    assert_eq!(plain.delay_hist, traced.delay_hist);
}

#[test]
fn failed_run_dumps_flight_recorder() {
    let dir = std::env::temp_dir().join("eac-telemetry-dump-test");
    let _ = std::fs::remove_dir_all(&dir);
    let err = short()
        .event_budget(20_000)
        .telemetry(TelemetryConfig::new().dump_to(&dir).label("budget"))
        .run_full()
        .unwrap_err();
    assert!(matches!(err, eac::ScenarioError::Run(_)), "{err}");

    let dump = dir.join("budget-seed11.flight.jsonl");
    let text = std::fs::read_to_string(&dump).expect("flight dump written");
    assert!(
        text.contains("run.error"),
        "dump lacks the triggering event:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_delay_hist_is_populated() {
    let r = short().run().unwrap();
    assert!(r.delay_hist.count > 0);
    assert!(r.delay_hist.p50_ms >= r.delay_hist.min_ms);
    assert!(r.delay_hist.p99_ms <= r.delay_hist.max_ms);
    // One-way propagation alone is 20 ms, so the median must exceed it.
    assert!(r.delay_hist.p50_ms >= 20.0, "{:?}", r.delay_hist);
}
