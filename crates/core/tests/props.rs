//! Property-based tests of the admission-control protocol pieces.

use eac::msg::{data_aux, decode_data_aux, decode_probe_aux, probe_aux, Msg};
use eac::probe::{congestion_fraction, ProbePlan, ProbeStyle, Signal};
use proptest::prelude::*;

proptest! {
    /// Every control message round-trips through the aux encoding.
    #[test]
    fn msg_roundtrip(group in any::<u8>(), expected in any::<u32>(), abort in any::<bool>(),
                     stage in any::<u8>(), sent in any::<u32>(), is_final in any::<bool>()) {
        let msgs = [
            Msg::ProbeStart { group, expected, abort },
            Msg::StageEnd { stage, sent, is_final },
            Msg::Accept,
            Msg::Reject,
        ];
        for m in msgs {
            prop_assert_eq!(Msg::decode(m.encode()), Some(m));
        }
    }

    /// Probe/data aux encodings round-trip.
    #[test]
    fn aux_roundtrip(stage in any::<u8>(), group in any::<u8>(), in_window in any::<bool>()) {
        prop_assert_eq!(decode_probe_aux(probe_aux(stage, group)), (stage, group));
        prop_assert_eq!(decode_data_aux(data_aux(group, in_window)), (group, in_window));
    }

    /// A plan's stage packet counts sum to its total for any (rate, size,
    /// duration) combination.
    #[test]
    fn plan_totals_consistent(
        r_kbps in 32u64..4_096,
        pkt in 40u32..1500,
        dur_s in 1u64..60,
    ) {
        let r = r_kbps * 1_000;
        for style in [ProbeStyle::Simple, ProbeStyle::EarlyReject, ProbeStyle::SlowStart] {
            let plan = ProbePlan::new(style, simcore::SimDuration::from_secs(dur_s));
            let total: u32 = (0..plan.num_stages())
                .map(|i| plan.stage_packets(i, r, pkt))
                .sum();
            prop_assert_eq!(total, plan.total_packets(r, pkt));
            // Every stage sends at least one packet and has positive spacing.
            for i in 0..plan.num_stages() {
                prop_assert!(plan.stage_packets(i, r, pkt) >= 1);
                prop_assert!(plan.stage_spacing(i, r, pkt).as_nanos() > 0);
            }
        }
    }

    /// Slow start's stages never decrease in rate; early-reject and simple
    /// probe at the full declared rate in every stage.
    #[test]
    fn plan_rate_shapes(dur_s in 1u64..60) {
        let d = simcore::SimDuration::from_secs(dur_s);
        let ss = ProbePlan::new(ProbeStyle::SlowStart, d);
        for w in ss.stages.windows(2) {
            prop_assert!(w[1].rate_frac >= w[0].rate_frac * 1.99);
        }
        prop_assert_eq!(ss.stages.last().unwrap().rate_frac, 1.0);
        for style in [ProbeStyle::Simple, ProbeStyle::EarlyReject] {
            let p = ProbePlan::new(style, d);
            prop_assert!(p.stages.iter().all(|s| s.rate_frac == 1.0));
        }
    }

    /// The congestion fraction is always in [0, 1] and monotone in the
    /// number of congestion events.
    #[test]
    fn congestion_fraction_bounds(sent in 1u32..100_000, received in 0u32..100_000,
                                  marked in 0u32..100_000) {
        let received = received.min(sent);
        let marked = marked.min(received);
        for signal in [Signal::Drop, Signal::Mark] {
            let f = congestion_fraction(signal, sent, received, marked);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f), "{f}");
        }
        // Mark counts at least as many events as Drop.
        prop_assert!(
            congestion_fraction(Signal::Mark, sent, received, marked)
                >= congestion_fraction(Signal::Drop, sent, received, marked)
        );
        // Losing one more packet never lowers the fraction.
        if received > 0 {
            prop_assert!(
                congestion_fraction(Signal::Drop, sent, received - 1, 0)
                    >= congestion_fraction(Signal::Drop, sent, received, 0)
            );
        }
    }

    /// Report averaging is idempotent on identical inputs.
    #[test]
    fn report_average_idempotent(util in 0.0f64..1.0, loss in 0.0f64..1.0) {
        use eac::metrics::{GroupReport, Report};
        let r = Report {
            design: "x".into(),
            param: 0.0,
            utilization: util,
            data_loss: loss,
            link_loss: loss,
            blocking: 0.1,
            probe_overhead: 0.05,
            mark_fraction: 0.0,
            delay_ms_mean: 20.0,
            delay_ms_std: 2.0,
            delay_hist: Default::default(),
            groups: vec![GroupReport {
                name: "g".into(),
                decided: 10,
                accepted: 9,
                rejected: 1,
                blocking: 0.1,
                data_sent: 100,
                data_received: 99,
                loss: 0.01,
            }],
            link_utils: vec![util],
            timeouts: 0,
            leaked_flows: 0,
            measured_s: 1.0,
            events: 5,
            seed: 0,
        };
        let avg = Report::average(&[r.clone(), r.clone()]);
        prop_assert!((avg.utilization - util).abs() < 1e-12);
        prop_assert!((avg.data_loss - loss).abs() < 1e-12);
        prop_assert_eq!(avg.groups[0].decided, 20);
        prop_assert!((avg.groups[0].blocking - 0.1).abs() < 1e-12);
    }
}
