//! Quick performance probe (not part of the library surface).
fn main() {
    let t0 = std::time::Instant::now();
    let r = eac::scenario::Scenario::basic()
        .horizon_secs(1000.0)
        .warmup_secs(200.0)
        .seed(1)
        .run()
        .expect("no watchdogs armed");
    let dt = t0.elapsed();
    println!(
        "1000s sim in {dt:.2?}: util {:.3} loss {:.5} blocking {:.3} ({:.0} events/s)",
        r.utilization,
        r.data_loss,
        r.blocking,
        r.events as f64 / dt.as_secs_f64()
    );
}
