//! Quick performance probe (not part of the library surface).
fn main() {
    let t0 = std::time::Instant::now();
    let r = eac::scenario::Scenario::basic()
        .horizon_secs(1000.0)
        .warmup_secs(200.0)
        .seed(1)
        .run();
    println!(
        "1000s sim in {:.2?}: util {:.3} loss {:.5} blocking {:.3}",
        t0.elapsed(),
        r.utilization,
        r.data_loss,
        r.blocking
    );
}
