//! # eac — endpoint admission control
//!
//! The paper's contribution: hosts probe a path at the rate they want to
//! reserve, measure the loss (or ECN-mark) fraction of the probe stream,
//! and admit the flow only if that fraction is at most ε. This crate
//! implements the sender and receiver halves of that protocol, the three
//! probing algorithms (simple, early-reject, slow-start), the four
//! prototype designs (drop/mark × in-band/out-of-band), the Measured Sum
//! MBAC benchmark, and scenario builders reproducing the paper's
//! experimental setups.
//!
//! Start with [`scenario::Scenario::basic`]:
//!
//! ```
//! use eac::scenario::Scenario;
//! use eac::design::Design;
//! use eac::probe::{Signal, Placement, ProbeStyle};
//!
//! let report = Scenario::basic()
//!     .design(Design::endpoint(Signal::Drop, Placement::InBand,
//!                              ProbeStyle::SlowStart, 0.01))
//!     .horizon_secs(120.0)
//!     .warmup_secs(30.0)
//!     .run()
//!     .expect("no watchdogs armed");
//! println!("utilization {:.3}, loss {:.5}", report.utilization, report.data_loss);
//! ```

pub mod coexist;
pub mod design;
pub mod host;
pub mod mbac;
pub mod metrics;
pub mod msg;
pub mod multihop;
pub mod probe;
pub mod scenario;
pub mod sink;

pub use coexist::{CoexistReport, CoexistScenario};
pub use design::{Design, Group};
pub use metrics::{GroupReport, Report};
pub use multihop::MultihopScenario;
pub use probe::{Placement, ProbePlan, ProbeStyle, Signal, Stage};
pub use scenario::{RunConfig, RunOutput, Scenario, ScenarioError};
