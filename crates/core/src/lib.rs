//! # eac — endpoint admission control
//!
//! The paper's contribution: hosts probe a path at the rate they want to
//! reserve, measure the loss (or ECN-mark) fraction of the probe stream,
//! and admit the flow only if that fraction is at most ε. This crate
//! implements the sender and receiver halves of that protocol, the three
//! probing algorithms (simple, early-reject, slow-start), the four
//! prototype designs (drop/mark × in-band/out-of-band), the Measured Sum
//! MBAC benchmark, and scenario builders reproducing the paper's
//! experimental setups.
//!
//! Start with [`scenario::Scenario::basic`]:
//!
//! ```
//! use eac::scenario::Scenario;
//! use eac::design::Design;
//! use eac::probe::{Signal, Placement, ProbeStyle};
//!
//! let report = Scenario::basic()
//!     .design(Design::endpoint(Signal::Drop, Placement::InBand,
//!                              ProbeStyle::SlowStart, 0.01))
//!     .horizon_secs(120.0)
//!     .warmup_secs(30.0)
//!     .run()
//!     .expect("no watchdogs armed");
//! println!("utilization {:.3}, loss {:.5}", report.utilization, report.data_loss);
//! ```
//!
//! The full quickstart — the paper's basic scenario (§4.1) under the
//! endpoint scheme and under the router-based Measured Sum benchmark,
//! side by side (compile-checked here; at these run lengths it takes a
//! minute or two, so execute it from your own `main`):
//!
//! ```no_run
//! use eac::design::Design;
//! use eac::probe::{Placement, ProbeStyle, Signal};
//! use eac::scenario::Scenario;
//!
//! // EXP1 sources (256 kbps bursts, 128 kbps average) arrive every 3.5 s
//! // on average and live ~300 s, sharing a 10 Mbps bottleneck. Each flow
//! // probes for 5 s with the slow-start ladder; the receiver accepts it
//! // if the probe loss fraction stays within epsilon.
//! let endpoint = Scenario::basic()
//!     .design(Design::endpoint(
//!         Signal::Drop,
//!         Placement::InBand,
//!         ProbeStyle::SlowStart,
//!         0.01,
//!     ))
//!     .horizon_secs(1_000.0)
//!     .warmup_secs(200.0)
//!     .seed(42);
//! let r = endpoint.run().expect("no watchdogs armed");
//!
//! // The router-based benchmark: Measured Sum with a 0.9 target.
//! let mbac = Scenario::basic()
//!     .design(Design::mbac(0.9))
//!     .horizon_secs(1_000.0)
//!     .warmup_secs(200.0)
//!     .seed(42);
//! let m = mbac.run().expect("no watchdogs armed");
//!
//! // The paper's headline: the endpoint scheme loses only modestly to
//! // the router-based benchmark, with no router state at all.
//! println!(
//!     "endpoint: util {:.3} loss {:.5} blocking {:.3} overhead {:.3}",
//!     r.utilization, r.data_loss, r.blocking, r.probe_overhead
//! );
//! println!(
//!     "MBAC:     util {:.3} loss {:.5} blocking {:.3}",
//!     m.utilization, m.data_loss, m.blocking
//! );
//! ```
//!
//! For fallible variants and richer run output (audit findings, abort
//! reasons), see [`scenario::Scenario::run_full`].

pub mod coexist;
pub mod design;
pub mod host;
pub mod mbac;
pub mod metrics;
pub mod msg;
pub mod multihop;
pub mod probe;
pub mod scenario;
pub mod sink;

pub use coexist::{CoexistReport, CoexistScenario};
pub use design::{Design, Group};
pub use metrics::{GroupReport, Report};
pub use multihop::MultihopScenario;
pub use probe::{Placement, ProbePlan, ProbeStyle, Signal, Stage};
pub use scenario::{RunConfig, RunOutput, Scenario, ScenarioError};
