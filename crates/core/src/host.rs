//! The sending host: flow arrivals, probing, and data transmission.
//!
//! One [`HostAgent`] banks every flow originating at its node (avoiding
//! per-flow agent churn). For each flow it runs the sender half of the
//! probing protocol — emit probe packets per the [`ProbePlan`], announce
//! stage boundaries, await the receiver's verdict — and, once admitted,
//! drives the flow's [`PacketProcess`] through its token-bucket policer
//! until the flow's lifetime expires.
//!
//! Under [`Design::Mbac`] probing is skipped entirely: the arrival event
//! consults the Measured Sum registry on the network blackboard
//! (idealised, serialised signalling — exactly the property §2.2.3
//! credits router-based admission with).

use crate::design::{effective_epsilons, Design, Group};
use crate::mbac::MbacRegistry;
use crate::msg::{data_aux, probe_aux, Msg};
use crate::probe::ProbePlan;
use netsim::{Agent, Api, FlowId, LinkId, NodeId, Packet, TrafficClass};
use simcore::stats::Counter;
use simcore::{SimDuration, SimRng, SimTime};
use std::any::Any;
use std::collections::HashMap;
use traffic::{Demography, PacketProcess, Policer};

/// Timer kinds used by the host.
pub mod timer {
    /// Next flow arrival.
    pub const ARRIVAL: u32 = 1;
    /// Emit the next probe packet of flow `data`.
    pub const PROBE: u32 = 2;
    /// Emit the next data packet of flow `data`.
    pub const DATA: u32 = 3;
    /// Flow `data` reached the end of its lifetime.
    pub const END: u32 = 4;
    /// Retry a rejected flow (`data` = group | attempt << 32).
    pub const RETRY: u32 = 5;
    /// The verdict for flow `data` never arrived (lost control packet).
    pub const VERDICT: u32 = 6;
}

/// Retry policy for rejected flows (footnote 10 of the paper: "rejected
/// flows should use exponential back-off before retrying ... we do not
/// explore the issue of retrying flows here" — we do, as an extension).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the first rejection.
    pub max_attempts: u32,
    /// First back-off; doubles per attempt.
    pub base_backoff: SimDuration,
    /// Back-off ceiling: doubling saturates here instead of growing (and
    /// overflowing) without bound.
    pub max_backoff: SimDuration,
}

/// Size of control packets, bytes.
pub const CONTROL_PKT_BYTES: u32 = 40;

/// Host configuration.
pub struct HostConfig {
    /// Where this host's flows terminate.
    pub sink: NodeId,
    /// The admission-control design in force.
    pub design: Design,
    /// Flow populations (weighted).
    pub groups: Vec<Group>,
    /// Flow arrival/lifetime statistics.
    pub demography: Demography,
    /// Total probing time (5 s default, 25 s in Fig 3).
    pub probe_total: SimDuration,
    /// Links consulted for MBAC admission (empty for endpoint designs).
    pub mbac_path: Vec<LinkId>,
    /// Stop generating new flows at this time (statistics tails stay clean).
    pub stop_arrivals_at: SimTime,
    /// Hold off the first flow arrival until this time (the coexistence
    /// experiment starts TCP 50 s before admission-controlled traffic).
    pub start_arrivals_at: SimTime,
    /// Rejected-flow retry with exponential back-off (None = the paper's
    /// default of no retries).
    pub retry: Option<RetryPolicy>,
    /// How long after the last probe to wait for the sink's verdict
    /// before treating the flow as rejected (a lost `Accept`/`Reject`
    /// control packet must not block the flow forever). `None` = wait
    /// forever (the paper's lossless-control idealisation).
    pub verdict_timeout: Option<SimDuration>,
    /// Measurement window: only events in `[measure_start, measure_end)`
    /// are counted, and data packets are tagged so the sink applies the
    /// same window — making sent/received loss accounting exact once the
    /// network drains.
    pub measure_start: SimTime,
    /// End of the measurement window.
    pub measure_end: SimTime,
}

/// Per-group and aggregate host-side statistics. All counters support
/// warm-up marking.
#[derive(Debug)]
pub struct HostStats {
    /// Flows whose admission decision concluded, per group.
    pub decided: Vec<Counter>,
    /// Flows accepted, per group.
    pub accepted: Vec<Counter>,
    /// Flows rejected, per group.
    pub rejected: Vec<Counter>,
    /// Data packets sent, per group.
    pub data_sent: Vec<Counter>,
    /// Data bytes sent, per group.
    pub data_bytes: Vec<Counter>,
    /// Probe packets sent (aggregate).
    pub probe_sent: Counter,
    /// Data packets dropped at source by the token-bucket policer.
    pub policer_drops: Counter,
    /// Retry attempts launched (retry extension).
    pub retries: Counter,
    /// Flows whose verdict never arrived and timed out into rejection.
    pub timeouts: Counter,
    /// Timer events of an unknown kind (counted and ignored).
    pub stray_timers: Counter,
}

impl HostStats {
    fn new(groups: usize) -> Self {
        let v = |_: ()| (0..groups).map(|_| Counter::new()).collect::<Vec<_>>();
        HostStats {
            decided: v(()),
            accepted: v(()),
            rejected: v(()),
            data_sent: v(()),
            data_bytes: v(()),
            probe_sent: Counter::new(),
            policer_drops: Counter::new(),
            retries: Counter::new(),
            timeouts: Counter::new(),
            stray_timers: Counter::new(),
        }
    }

    /// Snapshot all counters (end of warm-up).
    pub fn mark_all(&mut self) {
        for list in [
            &mut self.decided,
            &mut self.accepted,
            &mut self.rejected,
            &mut self.data_sent,
            &mut self.data_bytes,
        ] {
            for c in list.iter_mut() {
                c.mark();
            }
        }
        self.probe_sent.mark();
        self.policer_drops.mark();
        self.retries.mark();
        self.timeouts.mark();
        self.stray_timers.mark();
    }

    /// Blocking probability over all groups since the mark.
    pub fn blocking(&self) -> f64 {
        let dec: u64 = self.decided.iter().map(|c| c.since_mark()).sum();
        let rej: u64 = self.rejected.iter().map(|c| c.since_mark()).sum();
        if dec == 0 {
            0.0
        } else {
            rej as f64 / dec as f64
        }
    }

    /// Blocking probability of one group since the mark.
    pub fn group_blocking(&self, g: usize) -> f64 {
        let dec = self.decided[g].since_mark();
        if dec == 0 {
            0.0
        } else {
            self.rejected[g].since_mark() as f64 / dec as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Probing,
    AwaitDecision,
    Sending,
}

struct HostFlow {
    group: usize,
    attempt: u32,
    phase: Phase,
    // Probing state.
    plan: ProbePlan,
    stage: usize,
    sent_in_stage: u32,
    stage_pkts: u32,
    spacing: SimDuration,
    seq: u64,
    // Traffic description.
    r_bps: u64,
    pkt_bytes: u32,
    lifetime: SimDuration,
    // Data state (built lazily on accept).
    process: Option<Box<dyn PacketProcess>>,
    policer: Option<Policer>,
    pending_size: u32,
}

/// The sending-host agent.
pub struct HostAgent {
    cfg: HostConfig,
    eps: Vec<f64>,
    cum_weights: Vec<f64>,
    rng: SimRng,
    flows: HashMap<u64, HostFlow>,
    next_flow: u64,
    flow_base: u64,
    /// Statistics (readable after the run via `Sim::agent`).
    pub stats: HostStats,
}

impl HostAgent {
    /// Build a host; `rng` should be a derived stream unique to this host.
    pub fn new(cfg: HostConfig, rng: SimRng) -> Self {
        assert!(!cfg.groups.is_empty());
        let eps = effective_epsilons(&cfg.design, &cfg.groups);
        let mut cum = 0.0;
        let cum_weights: Vec<f64> = cfg
            .groups
            .iter()
            .map(|g| {
                cum += g.weight;
                cum
            })
            .collect();
        let n = cfg.groups.len();
        HostAgent {
            cfg,
            eps,
            cum_weights,
            rng,
            flows: HashMap::new(),
            next_flow: 0,
            flow_base: 0,
            stats: HostStats::new(n),
        }
    }

    /// The effective ε of each group.
    pub fn epsilons(&self) -> &[f64] {
        &self.eps
    }

    /// Flows stuck waiting for a verdict right now. Nonzero at the end of
    /// a run means lost control packets stranded per-flow state (enable
    /// [`HostConfig::verdict_timeout`] to bound it).
    pub fn stranded_flows(&self) -> usize {
        self.flows
            .values()
            .filter(|f| f.phase == Phase::AwaitDecision)
            .count()
    }

    fn in_window(&self, now: SimTime) -> bool {
        now >= self.cfg.measure_start && now < self.cfg.measure_end
    }

    fn pick_group(&mut self) -> usize {
        let total = *self.cum_weights.last().expect("non-empty groups");
        let x = self.rng.uniform_range(0.0, total);
        self.cum_weights.iter().position(|&c| x < c).unwrap_or(0)
    }

    fn control(&self, flow: u64, api: &Api, msg: Msg) -> Packet {
        Packet::new(
            0,
            FlowId(flow),
            api.node,
            self.cfg.sink,
            CONTROL_PKT_BYTES,
            TrafficClass::Control,
            0,
            api.now(),
        )
        .with_aux(msg.encode())
    }

    fn begin_flow(&mut self, api: &mut Api) {
        let group = self.pick_group();
        self.begin_flow_for(group, 0, api);
    }

    fn begin_flow_for(&mut self, group: usize, attempt: u32, api: &mut Api) {
        let id = self.flow_base | self.next_flow;
        self.next_flow += 1;
        let spec = &self.cfg.groups[group].source;
        let r_bps = spec.token_rate_bps();
        let pkt_bytes = spec.pkt_bytes;
        let lifetime =
            SimDuration::from_secs_f64(self.cfg.demography.sample_lifetime(&mut self.rng));

        match self.cfg.design {
            Design::Mbac { .. } => {
                // Idealised signalling: consult the registry right now.
                let mut bb = api.net.blackboard.take();
                let admitted = bb
                    .as_mut()
                    .and_then(|b| b.downcast_mut::<MbacRegistry>())
                    .map(|reg| reg.admit(&self.cfg.mbac_path, r_bps as f64, api.now()))
                    .unwrap_or_else(|| panic!("MBAC design without registry on blackboard"));
                api.net.blackboard = bb;
                let counted = self.in_window(api.now());
                if counted {
                    self.stats.decided[group].inc();
                }
                let mut flow = HostFlow {
                    group,
                    attempt,
                    phase: Phase::Sending,
                    plan: ProbePlan::new(crate::probe::ProbeStyle::Simple, self.cfg.probe_total),
                    stage: 0,
                    sent_in_stage: 0,
                    stage_pkts: 0,
                    spacing: SimDuration::ZERO,
                    seq: 0,
                    r_bps,
                    pkt_bytes,
                    lifetime,
                    process: None,
                    policer: None,
                    pending_size: 0,
                };
                if admitted {
                    if counted {
                        self.stats.accepted[group].inc();
                    }
                    self.start_sending(&mut flow, id, api);
                    self.flows.insert(id, flow);
                } else {
                    if counted {
                        self.stats.rejected[group].inc();
                    }
                    self.schedule_retry(group, attempt, api);
                }
                self.tel_decision(id, group, admitted, false, api);
            }
            Design::Endpoint { style, .. } => {
                let plan = ProbePlan::new(style, self.cfg.probe_total);
                let stage_pkts = plan.stage_packets(0, r_bps, pkt_bytes);
                let spacing = plan.stage_spacing(0, r_bps, pkt_bytes);
                let expected = plan.total_packets(r_bps, pkt_bytes);
                let abort = plan.in_flight_abort;
                let flow = HostFlow {
                    group,
                    attempt,
                    phase: Phase::Probing,
                    plan,
                    stage: 0,
                    sent_in_stage: 0,
                    stage_pkts,
                    spacing,
                    seq: 0,
                    r_bps,
                    pkt_bytes,
                    lifetime,
                    process: None,
                    policer: None,
                    pending_size: 0,
                };
                self.flows.insert(id, flow);
                let now = api.now();
                if let Some(tel) = api.net.telemetry.as_deref_mut() {
                    tel.metrics.inc("host.probes_started", 1);
                    tel.metrics.add_gauge("flows.probing", 1.0);
                    tel.recorder
                        .record(now, "probe.start", format!("flow {id} group {group}"));
                }
                let start = self.control(
                    id,
                    api,
                    Msg::ProbeStart {
                        group: group as u8,
                        expected,
                        abort,
                    },
                );
                api.send(start);
                // First probe packet goes out immediately.
                api.timer_in(SimDuration::ZERO, timer::PROBE, id);
            }
        }
    }

    fn start_sending(&mut self, flow: &mut HostFlow, id: u64, api: &mut Api) {
        flow.phase = Phase::Sending;
        let spec = &self.cfg.groups[flow.group].source;
        let mut process = spec.build();
        flow.policer = Some(Policer::new(spec.token));
        let (gap, size) = process.next_packet(&mut self.rng);
        flow.pending_size = size;
        flow.process = Some(process);
        api.timer_in(flow.lifetime, timer::END, id);
        api.timer_in(gap, timer::DATA, id);
    }

    fn probe_tick(&mut self, id: u64, api: &mut Api) {
        let Some(flow) = self.flows.get_mut(&id) else {
            return; // rejected mid-probe; stale tick
        };
        if flow.phase != Phase::Probing {
            return;
        }
        let pkt = Packet::new(
            flow.seq,
            FlowId(id),
            api.node,
            self.cfg.sink,
            flow.pkt_bytes,
            TrafficClass::Probe,
            flow.seq,
            api.now(),
        )
        .with_aux(probe_aux(flow.stage as u8, flow.group as u8));
        flow.seq += 1;
        flow.sent_in_stage += 1;
        self.stats.probe_sent.inc();
        api.send(pkt);

        if flow.sent_in_stage >= flow.stage_pkts {
            // Stage finished: report and advance.
            let is_final = flow.stage + 1 >= flow.plan.num_stages();
            let msg = Msg::StageEnd {
                stage: flow.stage as u8,
                sent: flow.sent_in_stage,
                is_final,
            };
            if is_final {
                flow.phase = Phase::AwaitDecision;
                // A lost verdict must not strand the flow: resolve as a
                // rejection after the timeout (feeding the back-off path).
                if let Some(timeout) = self.cfg.verdict_timeout {
                    api.timer_in(timeout, timer::VERDICT, id);
                }
            } else {
                flow.stage += 1;
                flow.sent_in_stage = 0;
                flow.stage_pkts = flow
                    .plan
                    .stage_packets(flow.stage, flow.r_bps, flow.pkt_bytes);
                flow.spacing = flow
                    .plan
                    .stage_spacing(flow.stage, flow.r_bps, flow.pkt_bytes);
                let spacing = flow.spacing;
                api.timer_in(spacing, timer::PROBE, id);
            }
            let ctrl = self.control(id, api, msg);
            api.send(ctrl);
        } else {
            let spacing = flow.spacing;
            api.timer_in(spacing, timer::PROBE, id);
        }
    }

    fn data_tick(&mut self, id: u64, api: &mut Api) {
        let Some(flow) = self.flows.get_mut(&id) else {
            return; // flow ended; stale tick
        };
        if flow.phase != Phase::Sending {
            return;
        }
        let size = flow.pending_size;
        let now = api.now();
        let in_window = now >= self.cfg.measure_start && now < self.cfg.measure_end;
        let conforms = flow
            .policer
            .as_mut()
            .expect("sending flow has policer")
            .conforms(size, now);
        if conforms {
            let pkt = Packet::new(
                flow.seq,
                FlowId(id),
                api.node,
                self.cfg.sink,
                size,
                TrafficClass::Data,
                flow.seq,
                now,
            )
            .with_aux(data_aux(flow.group as u8, in_window));
            flow.seq += 1;
            if in_window {
                self.stats.data_sent[flow.group].inc();
                self.stats.data_bytes[flow.group].add(size as u64);
            }
            api.send(pkt);
        } else if in_window {
            self.stats.policer_drops.inc();
        }
        let (gap, next_size) = flow
            .process
            .as_mut()
            .expect("sending flow has process")
            .next_packet(&mut self.rng);
        flow.pending_size = next_size;
        api.timer_in(gap, timer::DATA, id);
    }

    fn on_decision(&mut self, id: u64, accepted: bool, api: &mut Api) {
        let Some(mut flow) = self.flows.remove(&id) else {
            return; // duplicate / late decision
        };
        if flow.phase == Phase::Sending {
            // Should not happen (one decision per flow), but be safe.
            self.flows.insert(id, flow);
            return;
        }
        let counted = self.in_window(api.now());
        if counted {
            self.stats.decided[flow.group].inc();
        }
        let group = flow.group;
        if accepted {
            if counted {
                self.stats.accepted[flow.group].inc();
            }
            self.start_sending(&mut flow, id, api);
            self.flows.insert(id, flow);
        } else {
            if counted {
                self.stats.rejected[flow.group].inc();
            }
            self.schedule_retry(flow.group, flow.attempt, api);
        }
        self.tel_decision(id, group, accepted, true, api);
    }

    /// Arm an exponential-back-off retry for a rejected flow, if the
    /// retry extension is enabled and attempts remain.
    fn schedule_retry(&mut self, group: usize, attempt: u32, api: &mut Api) {
        let Some(policy) = self.cfg.retry else {
            return;
        };
        if attempt >= policy.max_attempts || api.now() >= self.cfg.stop_arrivals_at {
            return;
        }
        // Back-off doubles per attempt, with ±25% jitter to avoid
        // synchronised retry storms. Saturating arithmetic plus the
        // policy's ceiling keep large attempt counts well-defined.
        let backoff = backoff_for(policy, attempt);
        let jitter = self.rng.uniform_range(0.75, 1.25);
        let delay = SimDuration::from_secs_f64(backoff.as_secs_f64() * jitter);
        self.stats.retries.inc();
        api.timer_in(
            delay,
            timer::RETRY,
            group as u64 | ((attempt as u64 + 1) << 32),
        );
    }

    /// The verdict for `id` never arrived: resolve as a rejection.
    fn on_verdict_timeout(&mut self, id: u64, api: &mut Api) {
        let Some(flow) = self.flows.get(&id) else {
            return; // verdict arrived after all; stale timer
        };
        if flow.phase != Phase::AwaitDecision {
            return; // decided in the meantime
        }
        self.stats.timeouts.inc();
        let now = api.now();
        if let Some(tel) = api.net.telemetry.as_deref_mut() {
            tel.metrics.inc("admission.timeouts", 1);
            tel.recorder
                .record(now, "admission.timeout", format!("flow {id}"));
        }
        self.on_decision(id, false, api);
    }

    /// Note an admission verdict in the telemetry hub (no-op when
    /// telemetry is off): adjust the live-flow gauges, bump the verdict
    /// counter, and log a flight event.
    fn tel_decision(
        &mut self,
        id: u64,
        group: usize,
        accepted: bool,
        probing: bool,
        api: &mut Api,
    ) {
        let now = api.now();
        let Some(tel) = api.net.telemetry.as_deref_mut() else {
            return;
        };
        if probing {
            tel.metrics.add_gauge("flows.probing", -1.0);
        }
        if accepted {
            tel.metrics.inc("admission.accepts", 1);
            tel.metrics.add_gauge("flows.admitted", 1.0);
            tel.recorder
                .record(now, "admission.accept", format!("flow {id} group {group}"));
        } else {
            tel.metrics.inc("admission.rejects", 1);
            tel.recorder
                .record(now, "admission.reject", format!("flow {id} group {group}"));
        }
    }
}

/// The (un-jittered) back-off before retry `attempt`: `base · 2^attempt`,
/// saturating, clamped to the policy ceiling. Defined as a free function
/// so the overflow boundary is unit-testable without an agent.
fn backoff_for(policy: RetryPolicy, attempt: u32) -> SimDuration {
    let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
    policy
        .base_backoff
        .saturating_mul(factor)
        .min(policy.max_backoff)
}

impl Agent for HostAgent {
    fn on_start(&mut self, api: &mut Api) {
        self.flow_base = (api.node.0 as u64) << 32;
        if let Some(tel) = api.net.telemetry.as_deref_mut() {
            // Pre-register the live-flow gauges so the sampler's columns
            // exist from the first tick even before any flow arrives.
            tel.metrics.set_gauge("flows.admitted", 0.0);
            tel.metrics.set_gauge("flows.probing", 0.0);
        }
        let gap = self.cfg.demography.sample_interarrival(&mut self.rng);
        let first = self.cfg.start_arrivals_at.max(api.now()) + SimDuration::from_secs_f64(gap);
        api.timer_at(first, timer::ARRIVAL, 0);
    }

    fn on_packet(&mut self, pkt: Packet, api: &mut Api) {
        if pkt.class != TrafficClass::Control {
            return; // hosts only expect verdicts
        }
        match Msg::decode(pkt.aux) {
            Some(Msg::Accept) => self.on_decision(pkt.flow.0, true, api),
            Some(Msg::Reject) => self.on_decision(pkt.flow.0, false, api),
            _ => {}
        }
    }

    fn on_timer(&mut self, kind: u32, data: u64, api: &mut Api) {
        match kind {
            timer::ARRIVAL => {
                if api.now() < self.cfg.stop_arrivals_at {
                    self.begin_flow(api);
                    let gap = self.cfg.demography.sample_interarrival(&mut self.rng);
                    api.timer_in(SimDuration::from_secs_f64(gap), timer::ARRIVAL, 0);
                }
            }
            timer::PROBE => self.probe_tick(data, api),
            timer::DATA => self.data_tick(data, api),
            timer::END => {
                if let Some(flow) = self.flows.remove(&data) {
                    if flow.phase == Phase::Sending {
                        if let Some(tel) = api.net.telemetry.as_deref_mut() {
                            tel.metrics.add_gauge("flows.admitted", -1.0);
                        }
                    }
                }
            }
            timer::RETRY => {
                let group = (data & 0xFFFF_FFFF) as usize;
                let attempt = (data >> 32) as u32;
                self.begin_flow_for(group, attempt, api);
            }
            timer::VERDICT => self.on_verdict_timeout(data, api),
            // An unknown timer kind is a wiring bug elsewhere, but
            // aborting a long run over it helps nobody: count and ignore.
            _ => self.stats.stray_timers.inc(),
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(base_s: u64, max_s: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 100,
            base_backoff: SimDuration::from_secs(base_s),
            max_backoff: SimDuration::from_secs(max_s),
        }
    }

    #[test]
    fn backoff_doubles_until_cap() {
        let p = policy(5, 60);
        assert_eq!(backoff_for(p, 0), SimDuration::from_secs(5));
        assert_eq!(backoff_for(p, 1), SimDuration::from_secs(10));
        assert_eq!(backoff_for(p, 2), SimDuration::from_secs(20));
        assert_eq!(backoff_for(p, 3), SimDuration::from_secs(40));
        assert_eq!(backoff_for(p, 4), SimDuration::from_secs(60)); // capped
        assert_eq!(backoff_for(p, 5), SimDuration::from_secs(60));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        // 5 s · 2^63 overflows u64 nanoseconds; 2^64 overflows the shift
        // itself. Both must clamp to the ceiling, not wrap or panic.
        let p = policy(5, 3600);
        assert_eq!(backoff_for(p, 63), SimDuration::from_secs(3600));
        assert_eq!(backoff_for(p, 64), SimDuration::from_secs(3600));
        assert_eq!(backoff_for(p, u32::MAX), SimDuration::from_secs(3600));
        // Without a finite cap the saturated product is still well-defined.
        let unbounded = RetryPolicy {
            max_attempts: 100,
            base_backoff: SimDuration::from_secs(5),
            max_backoff: SimDuration::MAX,
        };
        assert_eq!(backoff_for(unbounded, 64), SimDuration::MAX);
    }
}
