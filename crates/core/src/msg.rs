//! Wire encoding of the endpoint control protocol into `Packet::aux`.
//!
//! The probing protocol needs four messages: the sender announces a probe
//! (`ProbeStart`), reports each stage's sent count (`StageEnd`), and the
//! receiver answers with `Accept` or `Reject`. All ride [`TrafficClass::
//! Control`] packets. Probe packets themselves carry their stage and
//! group; data packets carry their group (so sinks can attribute loss
//! statistics without per-flow lookups).
//!
//! Layout (64 bits): type in bits 60..64, fields below. Everything is
//! round-trip tested.

/// A control-plane message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Sender begins probing: group index, total expected probe packets,
    /// whether the in-flight abort rule applies.
    ProbeStart {
        /// Flow's group index (statistics bucket).
        group: u8,
        /// Total probe packets across all stages.
        expected: u32,
        /// Apply the whole-probe in-flight abort rule.
        abort: bool,
    },
    /// Sender finished a stage: its index, packets sent, whether it was
    /// the last stage.
    StageEnd {
        /// Stage index.
        stage: u8,
        /// Probe packets sent in this stage.
        sent: u32,
        /// True for the final stage (a pass means Accept).
        is_final: bool,
    },
    /// Receiver's verdict: admit the flow.
    Accept,
    /// Receiver's verdict: reject the flow.
    Reject,
}

const TY_PROBE_START: u64 = 1;
const TY_STAGE_END: u64 = 2;
const TY_ACCEPT: u64 = 3;
const TY_REJECT: u64 = 4;

impl Msg {
    /// Encode into a `Packet::aux` value.
    pub fn encode(self) -> u64 {
        match self {
            Msg::ProbeStart {
                group,
                expected,
                abort,
            } => {
                (TY_PROBE_START << 60)
                    | ((group as u64) << 52)
                    | ((abort as u64) << 51)
                    | expected as u64
            }
            Msg::StageEnd {
                stage,
                sent,
                is_final,
            } => {
                (TY_STAGE_END << 60)
                    | ((stage as u64) << 52)
                    | ((is_final as u64) << 51)
                    | sent as u64
            }
            Msg::Accept => TY_ACCEPT << 60,
            Msg::Reject => TY_REJECT << 60,
        }
    }

    /// Decode from a `Packet::aux` value; `None` for malformed values.
    pub fn decode(aux: u64) -> Option<Msg> {
        let ty = aux >> 60;
        let field8 = ((aux >> 52) & 0xFF) as u8;
        let flag = (aux >> 51) & 1 == 1;
        let low32 = (aux & 0xFFFF_FFFF) as u32;
        match ty {
            TY_PROBE_START => Some(Msg::ProbeStart {
                group: field8,
                expected: low32,
                abort: flag,
            }),
            TY_STAGE_END => Some(Msg::StageEnd {
                stage: field8,
                sent: low32,
                is_final: flag,
            }),
            TY_ACCEPT => Some(Msg::Accept),
            TY_REJECT => Some(Msg::Reject),
            _ => None,
        }
    }
}

/// Encode a probe packet's metadata: stage and group.
pub fn probe_aux(stage: u8, group: u8) -> u64 {
    stage as u64 | ((group as u64) << 8)
}

/// Decode a probe packet's metadata: (stage, group).
pub fn decode_probe_aux(aux: u64) -> (u8, u8) {
    ((aux & 0xFF) as u8, ((aux >> 8) & 0xFF) as u8)
}

/// Encode a data packet's metadata: group, and whether the packet was
/// sent inside the measurement window. Loss statistics count only
/// in-window packets at both sender and receiver, which (after a drain
/// period) makes the sent/received identity exact — no in-flight bias,
/// essential for resolving the 1e-5 loss levels of out-of-band marking.
pub fn data_aux(group: u8, in_window: bool) -> u64 {
    group as u64 | ((in_window as u64) << 16)
}

/// Decode a data packet's metadata: (group, in_window).
pub fn decode_data_aux(aux: u64) -> (u8, bool) {
    ((aux & 0xFF) as u8, (aux >> 16) & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_messages() {
        let msgs = [
            Msg::ProbeStart {
                group: 3,
                expected: 1280,
                abort: true,
            },
            Msg::ProbeStart {
                group: 0,
                expected: 0,
                abort: false,
            },
            Msg::StageEnd {
                stage: 4,
                sent: 256,
                is_final: true,
            },
            Msg::StageEnd {
                stage: 0,
                sent: 16,
                is_final: false,
            },
            Msg::Accept,
            Msg::Reject,
        ];
        for m in msgs {
            assert_eq!(Msg::decode(m.encode()), Some(m), "roundtrip {m:?}");
        }
    }

    #[test]
    fn extreme_values_roundtrip() {
        let m = Msg::ProbeStart {
            group: 255,
            expected: u32::MAX,
            abort: true,
        };
        assert_eq!(Msg::decode(m.encode()), Some(m));
        let m = Msg::StageEnd {
            stage: 255,
            sent: u32::MAX,
            is_final: false,
        };
        assert_eq!(Msg::decode(m.encode()), Some(m));
    }

    #[test]
    fn malformed_decodes_to_none() {
        assert_eq!(Msg::decode(0), None);
        assert_eq!(Msg::decode(0xF << 60), None);
    }

    #[test]
    fn probe_and_data_aux_roundtrip() {
        assert_eq!(decode_probe_aux(probe_aux(4, 2)), (4, 2));
        assert_eq!(decode_probe_aux(probe_aux(0, 255)), (0, 255));
        assert_eq!(decode_data_aux(data_aux(7, true)), (7, true));
        assert_eq!(decode_data_aux(data_aux(255, false)), (255, false));
    }
}
