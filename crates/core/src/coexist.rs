//! Incremental deployment: coexistence with TCP at a legacy router
//! (§4.7, Fig 11).
//!
//! At a legacy router there is no DiffServ class for admission-controlled
//! traffic: probes, admission-controlled data, and TCP share one
//! drop-tail FIFO. Twenty long-lived TCP Reno flows start at t = 0;
//! admission-controlled traffic (EXP1, in-band dropping) starts 50 s
//! later. The question is whether the probers either share fairly with
//! TCP or surrender gracefully — and the paper finds a critical ε below
//! which TCP-induced loss locks the admission-controlled traffic out.
//!
//! One modelling note: the verdict/stage-report control packets ride a
//! tiny strict-priority band rather than the shared FIFO, standing in for
//! the reliable signalling a real implementation would run over TCP;
//! control traffic is ~0.1% of the link so the distortion is negligible.

use crate::design::{Design, Group};
use crate::host::{HostAgent, HostConfig};
use crate::probe::{Placement, ProbeStyle, Signal};
use crate::sink::{stage_grace, SinkAgent, SinkConfig};
use netsim::{
    class_band_map, Agent, Api, Band, DropTail, Limit, LinkId, Network, Packet, Sim, StrictPrio,
    TrafficClass,
};
use serde::Serialize;
use simcore::{SimDuration, SimRng, SimTime};
use std::any::Any;
use tcpsim::{TcpSenderBank, TcpSinkBank};
use traffic::{Demography, SourceSpec};

/// Samples per-class throughput on one link at a fixed interval.
pub struct LinkSampler {
    /// Link to watch.
    pub link: LinkId,
    /// Sampling interval (Fig 11 uses 10 s).
    pub interval: SimDuration,
    /// Reference bandwidth for utilization.
    pub ref_bps: u64,
    last_tcp: u64,
    last_eac: u64,
    /// (time s, TCP utilization, admission-controlled data utilization).
    pub series: Vec<(f64, f64, f64)>,
}

impl LinkSampler {
    /// New sampler (attach to any node).
    pub fn new(link: LinkId, interval: SimDuration, ref_bps: u64) -> Self {
        LinkSampler {
            link,
            interval,
            ref_bps,
            last_tcp: 0,
            last_eac: 0,
            series: Vec::new(),
        }
    }
}

impl Agent for LinkSampler {
    fn on_start(&mut self, api: &mut Api) {
        api.timer_in(self.interval, 0, 0);
    }

    fn on_packet(&mut self, _pkt: Packet, _api: &mut Api) {}

    fn on_timer(&mut self, _kind: u32, _data: u64, api: &mut Api) {
        let stats = &api.net.link(self.link).stats;
        let tcp = stats
            .class(TrafficClass::BestEffort)
            .transmitted_bytes
            .total();
        let eac = stats.class(TrafficClass::Data).transmitted_bytes.total();
        let dt = self.interval.as_secs_f64();
        let denom = self.ref_bps as f64 * dt;
        self.series.push((
            api.now().as_secs_f64(),
            (tcp - self.last_tcp) as f64 * 8.0 / denom,
            (eac - self.last_eac) as f64 * 8.0 / denom,
        ));
        self.last_tcp = tcp;
        self.last_eac = eac;
        api.timer_in(self.interval, 0, 0);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Results of one coexistence run.
#[derive(Clone, Debug, Serialize)]
pub struct CoexistReport {
    /// Acceptance threshold ε.
    pub epsilon: f64,
    /// (time s, TCP utilization, admission-controlled utilization) per
    /// 10-second bucket.
    pub series: Vec<(f64, f64, f64)>,
    /// Mean TCP utilization over the steady tail (after both populations
    /// started).
    pub tcp_util: f64,
    /// Mean admission-controlled data utilization over the same tail.
    pub eac_util: f64,
    /// Admission-controlled blocking probability.
    pub blocking: f64,
}

/// Configuration of the Fig 11 experiment.
#[derive(Clone, Debug)]
pub struct CoexistScenario {
    /// Acceptance threshold ε for the in-band dropping endpoints.
    pub epsilon: f64,
    /// Number of TCP Reno flows (Fig 11: 20).
    pub n_tcp: usize,
    /// Shared legacy link bandwidth, bits/s.
    pub link_bps: u64,
    /// Shared buffer, packets.
    pub buffer_pkts: usize,
    /// Propagation delay, ms.
    pub prop_delay_ms: f64,
    /// TCP segment size, bytes.
    pub tcp_pkt_bytes: u32,
    /// Admission-controlled arrivals: mean interarrival, seconds.
    pub tau_s: f64,
    /// Admission-controlled mean lifetime, seconds.
    pub lifetime_s: f64,
    /// When admission-controlled traffic starts (Fig 11: 50 s).
    pub eac_start_s: f64,
    /// Horizon, seconds.
    pub horizon_s: f64,
    /// Tail start for the mean utilizations, seconds.
    pub steady_after_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CoexistScenario {
    /// Fig 11 defaults (shortened horizon; the paper runs 14 000 s).
    pub fn fig11(epsilon: f64) -> Self {
        CoexistScenario {
            epsilon,
            n_tcp: 20,
            link_bps: 10_000_000,
            buffer_pkts: 200,
            prop_delay_ms: 20.0,
            tcp_pkt_bytes: 1_000,
            tau_s: 3.5,
            lifetime_s: 300.0,
            eac_start_s: 50.0,
            horizon_s: 2_000.0,
            steady_after_s: 500.0,
            seed: 1,
        }
    }

    /// Set the horizon.
    pub fn horizon_secs(mut self, s: f64) -> Self {
        self.horizon_s = s;
        self
    }

    /// Set the seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Set when the steady-state tail (for the mean utilizations) starts.
    pub fn steady_after_secs(mut self, s: f64) -> Self {
        self.steady_after_s = s;
        self
    }

    /// Build and run.
    pub fn run(&self) -> CoexistReport {
        let root = SimRng::new(self.seed);
        let prop = SimDuration::from_secs_f64(self.prop_delay_ms / 1_000.0);

        let mut net = Network::new();
        let eac_host = net.add_node();
        let tcp_host = net.add_node();
        let router = net.add_node();
        let dst = net.add_node(); // EAC sink + TCP receivers
        let sampler_n = net.add_node();

        let fast = |n: &mut Network, a, b| {
            n.add_link(
                a,
                b,
                1_000_000_000,
                SimDuration::from_micros(100),
                Box::new(DropTail::new(Limit::Packets(100_000))),
                None,
            );
        };
        fast(&mut net, eac_host, router);
        fast(&mut net, tcp_host, router);
        fast(&mut net, router, eac_host);
        fast(&mut net, router, tcp_host);
        fast(&mut net, dst, router);

        // The legacy bottleneck: control in a tiny priority band (see
        // module docs), everything else in one shared drop-tail FIFO.
        let legacy = StrictPrio::new(
            vec![
                Band { limit: None },
                Band {
                    limit: Some(Limit::Packets(self.buffer_pkts)),
                },
            ],
            class_band_map(0, 1, 1, 1),
        );
        let bottleneck = net.add_link(router, dst, self.link_bps, prop, Box::new(legacy), None);

        let mut sim = Sim::new(net);

        let horizon = SimTime::from_secs_f64(self.horizon_s);
        let eac_start = SimTime::from_secs_f64(self.eac_start_s);

        let host_cfg = HostConfig {
            sink: dst,
            design: Design::endpoint(
                Signal::Drop,
                Placement::InBand,
                ProbeStyle::SlowStart,
                self.epsilon,
            ),
            groups: vec![Group::new("EXP1", SourceSpec::exp1(), 1.0)],
            demography: Demography::new(self.tau_s, self.lifetime_s),
            probe_total: SimDuration::from_secs(5),
            mbac_path: vec![],
            stop_arrivals_at: horizon,
            start_arrivals_at: eac_start,
            retry: None,
            verdict_timeout: None,
            measure_start: SimTime::ZERO,
            measure_end: horizon,
        };
        sim.attach(eac_host, Box::new(HostAgent::new(host_cfg, root.derive(1))));
        sim.attach(
            tcp_host,
            Box::new(TcpSenderBank::new(
                dst,
                self.n_tcp,
                self.tcp_pkt_bytes,
                1 << 48,
                SimTime::ZERO,
            )),
        );
        // The destination node must serve both the EAC sink protocol and
        // TCP acking; CombinedSink multiplexes by flow-id space.
        let buffer_bytes = (self.buffer_pkts as u32 * self.tcp_pkt_bytes) as u64;
        let sink_cfg = SinkConfig {
            signal: Signal::Drop,
            eps_per_group: vec![self.epsilon],
            grace: stage_grace(buffer_bytes, self.link_bps, prop),
            flow_ttl: SimDuration::from_secs(70),
        };
        sim.attach(
            dst,
            Box::new(CombinedSink {
                eac: SinkAgent::new(sink_cfg),
                tcp: TcpSinkBank::new(),
            }),
        );
        sim.attach(
            sampler_n,
            Box::new(LinkSampler::new(
                bottleneck,
                SimDuration::from_secs(10),
                self.link_bps,
            )),
        );

        sim.run_until(horizon);

        let series = {
            let s = sim.agent::<LinkSampler>(sampler_n).expect("sampler");
            s.series.clone()
        };
        let tail: Vec<&(f64, f64, f64)> = series
            .iter()
            .filter(|(t, _, _)| *t >= self.steady_after_s)
            .collect();
        let n = tail.len().max(1) as f64;
        let tcp_util = tail.iter().map(|(_, t, _)| t).sum::<f64>() / n;
        let eac_util = tail.iter().map(|(_, _, e)| e).sum::<f64>() / n;
        let blocking = {
            let h = sim.agent::<HostAgent>(eac_host).expect("host");
            h.stats.blocking()
        };

        CoexistReport {
            epsilon: self.epsilon,
            series,
            tcp_util,
            eac_util,
            blocking,
        }
    }
}

/// The destination-node agent: an EAC sink and a TCP receiver bank glued
/// together. TCP flow ids live at `1 << 48` and above; everything below
/// belongs to the admission-controlled population.
struct CombinedSink {
    eac: SinkAgent,
    tcp: TcpSinkBank,
}

impl Agent for CombinedSink {
    fn on_packet(&mut self, pkt: Packet, api: &mut Api) {
        if pkt.flow.0 >= (1 << 48) {
            self.tcp.on_packet(pkt, api);
        } else {
            self.eac.on_packet(pkt, api);
        }
    }

    fn on_timer(&mut self, kind: u32, data: u64, api: &mut Api) {
        // Only the EAC sink arms timers.
        self.eac.on_timer(kind, data, api);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_alone_takes_the_link() {
        // With ε = 0 the TCP-induced loss should lock admission-controlled
        // traffic out (the paper's key observation for small ε).
        let r = CoexistScenario::fig11(0.0)
            .horizon_secs(400.0)
            .steady_after_secs(150.0)
            .seed(2)
            .run();
        assert!(r.tcp_util > 0.7, "tcp util {}", r.tcp_util);
        assert!(r.eac_util < 0.15, "eac util {}", r.eac_util);
        assert!(r.blocking > 0.8, "blocking {}", r.blocking);
    }

    #[test]
    fn large_epsilon_claims_a_share() {
        let r = CoexistScenario::fig11(0.10)
            .horizon_secs(400.0)
            .steady_after_secs(150.0)
            .seed(2)
            .run();
        // With a permissive threshold the admission-controlled traffic
        // must obtain a visible share and TCP must cede some bandwidth.
        assert!(r.eac_util > 0.1, "eac util {}", r.eac_util);
        assert!(r.tcp_util < 0.95, "tcp util {}", r.tcp_util);
    }

    #[test]
    fn shares_roughly_sum_to_link() {
        let r = CoexistScenario::fig11(0.10)
            .horizon_secs(400.0)
            .steady_after_secs(150.0)
            .seed(3)
            .run();
        let total = r.tcp_util + r.eac_util;
        assert!(total > 0.7 && total < 1.05, "total {total}");
    }
}
