//! The multi-link topology of §4.6 (Fig 10, Tables 5 and 6).
//!
//! A linear backbone of four routers R0–R3 with three congested 10 Mbps
//! links. *Long* flows traverse all three backbone links; three *cross*
//! populations each enter at Ri, cross one backbone link, and exit at
//! R(i+1). Access links are fast and uncongested. The experiment measures
//! whether multi-hop probing degrades admission accuracy (Table 5: per-
//! class loss) and how blocking compares with the per-hop product
//! approximation (Table 6).
//!
//! Layout (12 nodes):
//!
//! ```text
//!  HL ──▶ R0 ──▶ R1 ──▶ R2 ──▶ R3 ──▶ SL      (long path: 3 congested hops)
//!         ▲      ▲▼     ▲▼     ▼
//!        HC0    SC0,HC1 SC1,HC2 SC2           (cross: 1 congested hop each)
//! ```

use crate::design::{effective_epsilons, Design, Group};
use crate::host::{HostAgent, HostConfig};
use crate::mbac::MbacRegistry;
use crate::metrics::{GroupReport, Report};
use crate::probe::{Placement, Signal};
use crate::scenario::{MeterAgent, RunConfig, ScenarioError};
use crate::sink::{stage_grace, SinkAgent, SinkConfig};
use netsim::{
    DropTail, Limit, LinkId, Network, NodeId, Sim, StrictPrio, TrafficClass, VirtualQueue,
};
use simcore::{SimDuration, SimRng, SimTime};
use traffic::{Demography, SourceSpec};

/// Configuration of the multi-hop experiment.
#[derive(Clone, Debug)]
pub struct MultihopScenario {
    /// Admission-control design under test.
    pub design: Design,
    /// Source model for every population (the paper uses EXP1).
    pub source: SourceSpec,
    /// Mean interarrival of the long-flow population, seconds.
    pub tau_long_s: f64,
    /// Mean interarrival of each cross population, seconds.
    pub tau_cross_s: f64,
    /// Mean flow lifetime, seconds.
    pub lifetime_s: f64,
    /// Backbone link bandwidth, bits/s.
    pub link_bps: u64,
    /// Backbone buffer, packets.
    pub buffer_pkts: usize,
    /// Per-backbone-hop propagation delay, milliseconds.
    pub prop_delay_ms: f64,
    /// Total probing time.
    pub probe_total_s: f64,
    /// Virtual-queue factor for marking designs.
    pub vq_factor: f64,
    /// Simulation horizon, seconds.
    pub horizon_s: f64,
    /// Warm-up, seconds.
    pub warmup_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Watchdogs and post-run checks (see [`RunConfig`]).
    pub run_config: RunConfig,
}

impl MultihopScenario {
    /// Defaults matching Tables 5–6: EXP1 everywhere, ε = 0, three
    /// congested 10 Mbps hops. The cross/long arrival rates are chosen to
    /// put each backbone link at a similar operating point to the paper's
    /// (single-hop blocking in the 0.2–0.35 range).
    pub fn tables56() -> Self {
        MultihopScenario {
            design: Design::endpoint(
                Signal::Drop,
                Placement::InBand,
                crate::probe::ProbeStyle::SlowStart,
                0.0,
            ),
            source: SourceSpec::exp1(),
            tau_long_s: 7.0,
            tau_cross_s: 7.0,
            lifetime_s: 300.0,
            link_bps: 10_000_000,
            buffer_pkts: 200,
            prop_delay_ms: 5.0,
            probe_total_s: 5.0,
            vq_factor: 0.9,
            horizon_s: 3_000.0,
            warmup_s: 500.0,
            seed: 1,
            run_config: RunConfig::default(),
        }
    }

    /// Set the design.
    pub fn design(mut self, d: Design) -> Self {
        self.design = d;
        self
    }

    /// Set the horizon.
    pub fn horizon_secs(mut self, s: f64) -> Self {
        self.horizon_s = s;
        self
    }

    /// Set the warm-up.
    pub fn warmup_secs(mut self, s: f64) -> Self {
        self.warmup_s = s;
        self
    }

    /// Set the seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Check packet conservation over the whole 13-node topology before
    /// reporting.
    pub fn audited(mut self) -> Self {
        self.run_config.audit = true;
        self
    }

    /// Cap total simulation events (event-storm watchdog).
    pub fn event_budget(mut self, budget: u64) -> Self {
        self.run_config.event_budget = Some(budget);
        self
    }

    /// Replace the whole run supervision config at once.
    pub fn with_run_config(mut self, cfg: RunConfig) -> Self {
        self.run_config = cfg;
        self
    }

    fn ac_qdisc(&self) -> Box<StrictPrio> {
        Box::new(StrictPrio::admission_queue(
            Limit::Packets(self.buffer_pkts),
            self.design.placement() == Placement::OutOfBand,
        ))
    }

    fn marker(&self) -> Option<VirtualQueue> {
        match self.design.signal() {
            Signal::Mark => Some(VirtualQueue::new(
                self.link_bps,
                self.vq_factor,
                (self.buffer_pkts as u32 * self.source.pkt_bytes) as f64,
            )),
            Signal::Drop => None,
        }
    }

    /// Build and run; returns a [`Report`] whose groups are
    /// `cross-0`, `cross-1`, `cross-2`, `long` (in that order), with
    /// `link_utils` holding the three backbone utilizations — or a
    /// graceful error, as configured by the scenario's [`RunConfig`].
    /// Without watchdogs armed it cannot fail.
    pub fn run(&self) -> Result<Report, ScenarioError> {
        let root = SimRng::new(self.seed);
        let prop = SimDuration::from_secs_f64(self.prop_delay_ms / 1_000.0);
        let fast = |n: &mut Network, a: NodeId, b: NodeId| {
            n.add_link(
                a,
                b,
                1_000_000_000,
                prop,
                Box::new(DropTail::new(Limit::Packets(100_000))),
                None,
            );
        };

        let mut net = Network::new();
        let routers: Vec<NodeId> = net.add_nodes(4);
        let long_host = net.add_node();
        let long_sink = net.add_node();
        let cross_hosts: Vec<NodeId> = net.add_nodes(3);
        let cross_sinks: Vec<NodeId> = net.add_nodes(3);
        let meter_n = net.add_node();

        // Congested backbone (forward); fast reverse for verdicts.
        let mut backbone: Vec<LinkId> = Vec::new();
        for i in 0..3 {
            let l = net.add_link(
                routers[i],
                routers[i + 1],
                self.link_bps,
                prop,
                self.ac_qdisc(),
                self.marker(),
            );
            backbone.push(l);
            fast(&mut net, routers[i + 1], routers[i]);
        }
        // Access links (both directions, fast).
        fast(&mut net, long_host, routers[0]);
        fast(&mut net, routers[0], long_host);
        fast(&mut net, routers[3], long_sink);
        fast(&mut net, long_sink, routers[3]);
        for i in 0..3 {
            fast(&mut net, cross_hosts[i], routers[i]);
            fast(&mut net, routers[i], cross_hosts[i]);
            fast(&mut net, routers[i + 1], cross_sinks[i]);
            fast(&mut net, cross_sinks[i], routers[i + 1]);
        }

        let mut sim = Sim::new(net);
        if let Some(budget) = self.run_config.event_budget {
            sim.set_event_budget(budget);
        }
        if self.run_config.wants_lenient() {
            sim.set_lenient_scheduling(true);
        }

        if let Design::Mbac { eta } = self.design {
            let mut reg = MbacRegistry::new(eta);
            for &l in &backbone {
                reg.register(l, self.link_bps as f64, SimDuration::from_secs(1));
            }
            sim.net.blackboard = Some(Box::new(reg));
            sim.attach(
                meter_n,
                Box::new(MeterAgent {
                    period: SimDuration::from_millis(100),
                }),
            );
        }

        let horizon = SimTime::from_secs_f64(self.horizon_s);
        let warmup = SimTime::from_secs_f64(self.warmup_s);
        let buffer_bytes = (self.buffer_pkts as u32 * self.source.pkt_bytes) as u64;
        // Long flows may queue at each of 3 hops: scale the grace period.
        let grace = stage_grace(buffer_bytes, self.link_bps, prop) * 3;

        // Group layout: every host/sink pair sees the same 4-group vector
        // so group indices line up in reports; each host only *generates*
        // its own group (weights on foreign groups are ~0 via dedicated
        // HostConfig group lists of length 1 — instead we give each host a
        // single group but tag it with the global group index).
        //
        // Simpler and robust: each host gets the full 4-group list but a
        // demography of its own; it only ever picks its own group by
        // weight. We implement that by per-host group lists with one
        // entry, whose *name* encodes the global index, and sinks sized
        // for 4 groups via eps vectors of length 4.
        let group_names = ["cross-0", "cross-1", "cross-2", "long"];
        let eps4 = {
            let groups: Vec<Group> = group_names
                .iter()
                .map(|n| Group::new(*n, self.source.clone(), 1.0))
                .collect();
            effective_epsilons(&self.design, &groups)
        };

        let mk_host = |sink: NodeId, tau: f64, global_group: usize, path: Vec<LinkId>| {
            // One-group host; the group index the *sink* sees must be the
            // global one, so the host's single group is padded into a
            // 4-slot list with zero-weight dummies replaced by weight on
            // the right slot. HostAgent picks by weight, so give the
            // global slot weight 1 and others an epsilon-weight that can
            // never be drawn (weights must be > 0, so use tiny).
            let groups: Vec<Group> = group_names
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    let w = if i == global_group { 1.0 } else { 1e-12 };
                    Group::new(*n, self.source.clone(), w)
                })
                .collect();
            HostConfig {
                sink,
                design: self.design,
                groups,
                demography: Demography::new(tau, self.lifetime_s),
                probe_total: SimDuration::from_secs_f64(self.probe_total_s),
                mbac_path: path,
                stop_arrivals_at: horizon,
                start_arrivals_at: SimTime::ZERO,
                retry: None,
                verdict_timeout: None,
                measure_start: warmup,
                measure_end: horizon,
            }
        };

        // Cross hosts.
        for i in 0..3 {
            let cfg = mk_host(cross_sinks[i], self.tau_cross_s, i, vec![backbone[i]]);
            let stream = 10 + i as u64;
            sim.attach(
                cross_hosts[i],
                Box::new(HostAgent::new(cfg, root.derive(stream))),
            );
            let sink_cfg = SinkConfig {
                signal: self.design.signal(),
                eps_per_group: eps4.clone(),
                grace,
                flow_ttl: SimDuration::from_secs_f64(self.probe_total_s * 2.0 + 60.0),
            };
            sim.attach(cross_sinks[i], Box::new(SinkAgent::new(sink_cfg)));
        }
        // Long host.
        let cfg = mk_host(long_sink, self.tau_long_s, 3, backbone.clone());
        sim.attach(long_host, Box::new(HostAgent::new(cfg, root.derive(20))));
        sim.attach(
            long_sink,
            Box::new(SinkAgent::new(SinkConfig {
                signal: self.design.signal(),
                eps_per_group: eps4,
                grace,
                flow_ttl: SimDuration::from_secs_f64(self.probe_total_s * 2.0 + 60.0),
            })),
        );

        // Run with warm-up marking and a drain (as in the single-link
        // scenario).
        sim.try_run_until(warmup)?;
        for l in sim.net.links_mut() {
            l.stats.mark_all();
        }
        for &h in cross_hosts.iter().chain([long_host].iter()) {
            sim.agent::<HostAgent>(h).expect("host").stats.mark_all();
        }
        for &s in cross_sinks.iter().chain([long_sink].iter()) {
            sim.agent::<SinkAgent>(s).expect("sink").stats.mark_all();
        }
        sim.try_run_until(horizon)?;
        let measured = SimDuration::from_secs_f64(self.horizon_s - self.warmup_s);
        let link_utils: Vec<f64> = backbone
            .iter()
            .map(|&l| {
                sim.net
                    .link(l)
                    .stats
                    .utilization(TrafficClass::Data, self.link_bps, measured)
            })
            .collect();
        let link_loss: f64 = backbone
            .iter()
            .map(|&l| sim.net.link(l).stats.drop_fraction(TrafficClass::Data))
            .sum::<f64>()
            / 3.0;
        sim.try_run_until(horizon + SimDuration::from_secs(5))?;

        // Collect per-population results. Host i's stats live in its own
        // group slot; sinks count data per global group index.
        let mut groups: Vec<GroupReport> = Vec::new();
        let hosts = [cross_hosts[0], cross_hosts[1], cross_hosts[2], long_host];
        let sinks = [cross_sinks[0], cross_sinks[1], cross_sinks[2], long_sink];
        for gi in 0..4 {
            let (decided, accepted, rejected, sent) = {
                let h = sim.agent::<HostAgent>(hosts[gi]).expect("host");
                (
                    h.stats.decided[gi].since_mark(),
                    h.stats.accepted[gi].since_mark(),
                    h.stats.rejected[gi].since_mark(),
                    h.stats.data_sent[gi].since_mark(),
                )
            };
            let received = {
                let s = sim.agent::<SinkAgent>(sinks[gi]).expect("sink");
                s.stats.data_received[gi].since_mark()
            };
            groups.push(GroupReport {
                name: group_names[gi].to_string(),
                decided,
                accepted,
                rejected,
                blocking: if decided == 0 {
                    0.0
                } else {
                    rejected as f64 / decided as f64
                },
                data_sent: sent,
                data_received: received,
                loss: if sent == 0 {
                    0.0
                } else {
                    1.0 - received as f64 / sent as f64
                },
            });
        }

        let total_sent: u64 = groups.iter().map(|g| g.data_sent).sum();
        let total_recv: u64 = groups.iter().map(|g| g.data_received).sum();
        let total_dec: u64 = groups.iter().map(|g| g.decided).sum();
        let total_rej: u64 = groups.iter().map(|g| g.rejected).sum();
        let mut timeouts = 0u64;
        let mut leaked_flows = 0u64;
        let mut delay_hist = telemetry::LogHistogram::new();
        for gi in 0..4 {
            let h = sim.agent::<HostAgent>(hosts[gi]).expect("host");
            timeouts += h.stats.timeouts.since_mark();
            leaked_flows += h.stranded_flows() as u64;
            let s = sim.agent::<SinkAgent>(sinks[gi]).expect("sink");
            leaked_flows += s.undecided_flows() as u64;
            delay_hist.merge(&s.stats.data_delay_hist);
        }
        let param = match self.design {
            Design::Endpoint { epsilon, .. } => epsilon,
            Design::Mbac { eta } => eta,
        };

        if self.run_config.audit {
            sim.check_conservation()?;
        }

        Ok(Report {
            design: self.design.name(),
            param,
            utilization: link_utils.iter().sum::<f64>() / link_utils.len() as f64,
            data_loss: if total_sent == 0 {
                0.0
            } else {
                1.0 - total_recv as f64 / total_sent as f64
            },
            link_loss,
            blocking: if total_dec == 0 {
                0.0
            } else {
                total_rej as f64 / total_dec as f64
            },
            probe_overhead: 0.0,
            mark_fraction: 0.0,
            delay_ms_mean: 0.0,
            delay_ms_std: 0.0,
            delay_hist: telemetry::HistSummary::from_nanos(&delay_hist),
            groups,
            link_utils,
            timeouts,
            leaked_flows,
            measured_s: measured.as_secs_f64(),
            events: sim.queue.events_fired(),
            seed: self.seed,
        })
    }

    /// Like [`run`](Self::run) with the conservation audit forced on,
    /// returning just the audit error.
    #[deprecated(
        since = "0.2.0",
        note = "use `.audited().run()`, which reports all run errors"
    )]
    pub fn run_audited(&self) -> Result<Report, netsim::AuditError> {
        match self.clone().audited().run() {
            Ok(r) => Ok(r),
            Err(ScenarioError::Audit(e)) => Err(e),
            Err(ScenarioError::Run(e)) => panic!("{e}"),
        }
    }

    /// Build and run, panicking on any [`ScenarioError`].
    #[deprecated(since = "0.2.0", note = "use `run()` and handle the Result")]
    pub fn run_or_panic(&self) -> Report {
        self.run().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The per-hop product approximation of Table 6: if short flows at the
/// three hops are accepted with probabilities `a_i`, uncorrelated per-hop
/// decisions would accept long flows with probability `a_0·a_1·a_2` —
/// i.e. block them with `1 − Π(1 − b_i)`.
pub fn product_blocking(cross_blocking: &[f64]) -> f64 {
    1.0 - cross_blocking.iter().map(|b| 1.0 - b).product::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_approximation_math() {
        // Paper Table 6 (MBAC row): b = .307/.259/.286 -> product .633.
        let p = product_blocking(&[0.307, 0.259, 0.286]);
        assert!((p - 0.6329).abs() < 1e-3, "{p}");
        assert_eq!(product_blocking(&[0.0, 0.0, 0.0]), 0.0);
        assert!((product_blocking(&[1.0, 0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multihop_runs_and_long_flows_suffer_more() {
        let r = MultihopScenario::tables56()
            .horizon_secs(600.0)
            .warmup_secs(150.0)
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(r.groups.len(), 4);
        let long = &r.groups[3];
        let cross_avg = (r.groups[0].blocking + r.groups[1].blocking + r.groups[2].blocking) / 3.0;
        assert!(long.decided > 10, "long decided {}", long.decided);
        // Long flows fight three congested hops: they must block at least
        // as often as the average cross population.
        assert!(
            long.blocking >= cross_avg * 0.8,
            "long {} vs cross {}",
            long.blocking,
            cross_avg
        );
        assert!(r.link_utils.iter().all(|&u| u > 0.1), "{:?}", r.link_utils);
    }
}
