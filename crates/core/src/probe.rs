//! Probing algorithms and admission-control design axes (§2.2, §3.1).
//!
//! The paper's design space has two axes — congestion signal
//! ([`Signal::Drop`] vs [`Signal::Mark`]) and probe placement
//! ([`Placement::InBand`] vs [`Placement::OutOfBand`]) — crossed with
//! three probing algorithms ([`ProbeStyle`]): simple (probe at rate `r`
//! for the whole interval), early reject (rate `r`, but checked every
//! sub-interval) and slow start (rate ramps r/16 → r, checked every
//! sub-interval).

use simcore::SimDuration;

/// How congestion is signalled to the prober.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Packet drops (loss fraction compared against ε).
    Drop,
    /// Virtual-queue ECN marks; the judged fraction counts marked *plus*
    /// lost packets, since marking routers still drop on real overflow.
    Mark,
}

/// Which priority the probe packets travel at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Probes share the data packets' priority class.
    InBand,
    /// Probes ride a lower priority class (but above best effort); data
    /// packets push resident probes out of a full buffer.
    OutOfBand,
}

/// The probing algorithm (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbeStyle {
    /// Probe at rate `r` for the whole interval; a single check at the
    /// end, plus the in-flight abort rule ("once 51 packets are dropped
    /// the probing is halted").
    Simple,
    /// Probe at rate `r`, but evaluate the loss fraction at the end of
    /// every one-second sub-interval and reject early if over threshold.
    EarlyReject,
    /// Ramp the rate r/16, r/8, r/4, r/2, r across the sub-intervals,
    /// evaluating at each boundary (§2.2.3's thrashing mitigation).
    SlowStart,
}

impl ProbeStyle {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ProbeStyle::Simple => "simple",
            ProbeStyle::EarlyReject => "early-reject",
            ProbeStyle::SlowStart => "slow-start",
        }
    }
}

/// One stage of a probe: a rate fraction of `r` held for a duration, with
/// a pass/fail check at the end.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stage {
    /// Fraction of the declared token rate `r` to probe at.
    pub rate_frac: f64,
    /// Stage length.
    pub duration: SimDuration,
}

/// A complete probe schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbePlan {
    /// The stages, in order.
    pub stages: Vec<Stage>,
    /// Whether the sink may abort mid-stage as soon as the loss budget for
    /// the *whole* probe is exhausted (the simple-probing rule).
    pub in_flight_abort: bool,
}

impl ProbePlan {
    /// Build the plan for `style` with total probing time `total`
    /// (the paper's default is 5 s; Fig 3 uses 25 s).
    pub fn new(style: ProbeStyle, total: SimDuration) -> Self {
        assert!(!total.is_zero());
        match style {
            ProbeStyle::Simple => ProbePlan {
                stages: vec![Stage {
                    rate_frac: 1.0,
                    duration: total,
                }],
                in_flight_abort: true,
            },
            ProbeStyle::EarlyReject => ProbePlan {
                stages: (0..5)
                    .map(|_| Stage {
                        rate_frac: 1.0,
                        duration: total / 5,
                    })
                    .collect(),
                in_flight_abort: false,
            },
            ProbeStyle::SlowStart => ProbePlan {
                stages: (0..5)
                    .map(|i| Stage {
                        rate_frac: 1.0 / (1 << (4 - i)) as f64,
                        duration: total / 5,
                    })
                    .collect(),
                in_flight_abort: false,
            },
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Packets sent in stage `i` for a flow probing at `r_bps` with
    /// `pkt_bytes`-byte packets (at least 1).
    pub fn stage_packets(&self, i: usize, r_bps: u64, pkt_bytes: u32) -> u32 {
        let s = &self.stages[i];
        let rate = s.rate_frac * r_bps as f64;
        let n = (s.duration.as_secs_f64() * rate / (8.0 * pkt_bytes as f64)).round();
        (n as u32).max(1)
    }

    /// Inter-packet spacing in stage `i`.
    pub fn stage_spacing(&self, i: usize, r_bps: u64, pkt_bytes: u32) -> SimDuration {
        let s = &self.stages[i];
        let rate = s.rate_frac * r_bps as f64;
        SimDuration::from_secs_f64(pkt_bytes as f64 * 8.0 / rate)
    }

    /// Total packets across all stages.
    pub fn total_packets(&self, r_bps: u64, pkt_bytes: u32) -> u32 {
        (0..self.stages.len())
            .map(|i| self.stage_packets(i, r_bps, pkt_bytes))
            .sum()
    }
}

/// The pass/fail rule applied to a stage's probe statistics.
///
/// `sent` comes from the sender's stage-end report, `received` and
/// `marked` from the receiver's counters. Returns the congestion fraction
/// the design's ε is compared against.
pub fn congestion_fraction(signal: Signal, sent: u32, received: u32, marked: u32) -> f64 {
    if sent == 0 {
        return 0.0;
    }
    let lost = sent.saturating_sub(received);
    let events = match signal {
        Signal::Drop => lost,
        Signal::Mark => lost + marked,
    };
    events as f64 / sent as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIVE_S: SimDuration = SimDuration::from_secs(5);

    #[test]
    fn simple_plan_is_one_stage_full_rate() {
        let p = ProbePlan::new(ProbeStyle::Simple, FIVE_S);
        assert_eq!(p.num_stages(), 1);
        assert_eq!(p.stages[0].rate_frac, 1.0);
        assert_eq!(p.stages[0].duration, FIVE_S);
        assert!(p.in_flight_abort);
    }

    #[test]
    fn slow_start_ladder() {
        let p = ProbePlan::new(ProbeStyle::SlowStart, FIVE_S);
        let fracs: Vec<f64> = p.stages.iter().map(|s| s.rate_frac).collect();
        assert_eq!(
            fracs,
            vec![1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 1.0]
        );
        assert!(p
            .stages
            .iter()
            .all(|s| s.duration == SimDuration::from_secs(1)));
        assert!(!p.in_flight_abort);
    }

    #[test]
    fn early_reject_is_full_rate_in_five_checks() {
        let p = ProbePlan::new(ProbeStyle::EarlyReject, FIVE_S);
        assert_eq!(p.num_stages(), 5);
        assert!(p.stages.iter().all(|s| s.rate_frac == 1.0));
    }

    #[test]
    fn packet_counts_match_rates() {
        // EXP1: r = 256 kbps, 125-byte packets -> 256 pkt/s.
        let p = ProbePlan::new(ProbeStyle::Simple, FIVE_S);
        assert_eq!(p.stage_packets(0, 256_000, 125), 1280);
        let ss = ProbePlan::new(ProbeStyle::SlowStart, FIVE_S);
        // Stage 0 probes at 16 kbps for 1 s = 16 packets.
        assert_eq!(ss.stage_packets(0, 256_000, 125), 16);
        assert_eq!(ss.stage_packets(4, 256_000, 125), 256);
        // Total for slow start = 16+32+64+128+256 = 496.
        assert_eq!(ss.total_packets(256_000, 125), 496);
    }

    #[test]
    fn spacing_is_inverse_rate() {
        let p = ProbePlan::new(ProbeStyle::Simple, FIVE_S);
        let sp = p.stage_spacing(0, 256_000, 125);
        assert_eq!(sp, SimDuration::from_secs_f64(0.00390625));
    }

    #[test]
    fn fig3_long_probe_scales_stages() {
        let p = ProbePlan::new(ProbeStyle::SlowStart, SimDuration::from_secs(25));
        assert!(p.stages.iter().all(|s| s.duration == FIVE_S));
    }

    #[test]
    fn congestion_fraction_rules() {
        assert_eq!(congestion_fraction(Signal::Drop, 100, 95, 10), 0.05);
        assert_eq!(congestion_fraction(Signal::Mark, 100, 95, 10), 0.15);
        assert_eq!(congestion_fraction(Signal::Drop, 0, 0, 0), 0.0);
        // Receiver can't have more than sent, but guard saturation anyway.
        assert_eq!(congestion_fraction(Signal::Drop, 10, 12, 0), 0.0);
    }
}
