//! The single-bottleneck scenario of §3.2/§4.1–4.5.
//!
//! "All but one of our simulations uses a simple topology with many
//! sources sharing a single congested link" — 10 Mbps (1 Mbps in the
//! low-multiplexing case), 20 ms propagation delay, 200-packet buffer.
//! Following the paper's simplification, the bottleneck link itself runs
//! at the admission-controlled traffic's allocated share, so no explicit
//! rate limiter or best-effort background is simulated (the full
//! rate-limited priority scheduler exists in `netsim` and is exercised by
//! the ablation benches and the coexistence experiment).

use crate::design::{effective_epsilons, Design, Group};
use crate::host::{HostAgent, HostConfig};
use crate::mbac::MbacRegistry;
use crate::metrics::{GroupReport, Report};
use crate::probe::{Placement, Signal};
use crate::sink::{stage_grace, SinkAgent, SinkConfig};
use netsim::{
    Agent, Api, AuditError, DropTail, FaultPlan, Impairment, Limit, Network, NodeId, Packet,
    RunError, Sim, StrictPrio, TrafficClass, VirtualQueue,
};
use simcore::{SimDuration, SimRng, SimTime};
use std::any::Any;
use telemetry::{Telemetry, TelemetryConfig};
use traffic::{Demography, SourceSpec};

/// The periodic load-sampler driving MBAC's Measured Sum estimators.
pub struct MeterAgent {
    /// Sampling period S.
    pub period: SimDuration,
}

impl Agent for MeterAgent {
    fn on_start(&mut self, api: &mut Api) {
        api.timer_in(self.period, 0, 0);
    }

    fn on_packet(&mut self, _pkt: Packet, _api: &mut Api) {}

    fn on_timer(&mut self, _kind: u32, _data: u64, api: &mut Api) {
        let mut bb = api.net.blackboard.take();
        if let Some(reg) = bb.as_mut().and_then(|b| b.downcast_mut::<MbacRegistry>()) {
            reg.sample_all(api.net.links(), api.now());
        }
        api.net.blackboard = bb;
        api.timer_in(self.period, 0, 0);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Why a scenario run stopped without a report.
#[derive(Clone, Debug)]
pub enum ScenarioError {
    /// The run loop aborted (event budget, time regression).
    Run(RunError),
    /// The packet-conservation audit failed.
    Audit(AuditError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Run(e) => write!(f, "run aborted: {e}"),
            ScenarioError::Audit(e) => write!(f, "audit failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<RunError> for ScenarioError {
    fn from(e: RunError) -> Self {
        ScenarioError::Run(e)
    }
}

impl From<AuditError> for ScenarioError {
    fn from(e: AuditError) -> Self {
        ScenarioError::Audit(e)
    }
}

/// How a run is *supervised*, as opposed to what is simulated: watchdogs
/// armed during the run and checks applied after it. One `RunConfig`
/// drives every scenario type's single fallible `run()` entry point.
///
/// When any watchdog is armed (audit or event budget), the run also
/// switches the calendar to lenient scheduling: an event scheduled behind
/// the clock surfaces as [`RunError::ScheduledIntoPast`] — a counted,
/// per-seed failure — instead of panicking the whole process (and with it
/// a pooled sweep's worker).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunConfig {
    /// Verify packet conservation after the run.
    pub audit: bool,
    /// Cap on total simulation events (event-storm watchdog).
    pub event_budget: Option<u64>,
    /// Host-side verdict timeout, seconds (lost verdicts resolve as
    /// rejections after this long). `None` = wait forever.
    pub verdict_timeout_s: Option<f64>,
}

impl RunConfig {
    /// True if any watchdog that wants graceful (non-panicking) failure
    /// handling is armed.
    pub fn wants_lenient(&self) -> bool {
        self.audit || self.event_budget.is_some()
    }
}

/// A single-bottleneck experiment configuration (builder style).
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Admission-control design under test.
    pub design: Design,
    /// Flow populations.
    pub groups: Vec<Group>,
    /// Mean flow interarrival time τ, seconds.
    pub tau_s: f64,
    /// Mean flow lifetime, seconds (§3.2: 300 s).
    pub lifetime_s: f64,
    /// Bottleneck bandwidth = the admission-controlled share, bits/s.
    pub link_bps: u64,
    /// Bottleneck buffer, packets (§3.2: 200).
    pub buffer_pkts: usize,
    /// Propagation delay, milliseconds (§3.2: 20 ms).
    pub prop_delay_ms: f64,
    /// Total probing time (5 s default; 25 s in Fig 3).
    pub probe_total_s: f64,
    /// Virtual-queue rate factor for marking designs (§3.1: 0.9).
    pub vq_factor: f64,
    /// Whether data packets push resident probes out of a full buffer
    /// (§3.1; true in the paper — switchable for the ablation bench).
    pub probe_pushout: bool,
    /// Rejected-flow retry with exponential back-off (the paper's
    /// footnote-10 extension; None = no retries, as in the paper).
    pub retry: Option<crate::host::RetryPolicy>,
    /// MBAC measurement window T.
    pub mbac_window_s: f64,
    /// MBAC sampling period S.
    pub mbac_sample_s: f64,
    /// Simulation horizon, seconds.
    pub horizon_s: f64,
    /// Warm-up discarded from statistics, seconds.
    pub warmup_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Bernoulli loss applied to *control* packets on both directions of
    /// the bottleneck path (robustness extension; 0 = the paper's
    /// lossless-signalling idealisation).
    pub control_loss: f64,
    /// Scheduled bottleneck outages, as `(down_s, up_s)` windows.
    pub flaps_s: Vec<(f64, f64)>,
    /// Watchdogs and post-run checks (see [`RunConfig`]).
    pub run_config: RunConfig,
    /// Optional telemetry capture (metrics, time-series sampler, flight
    /// recorder). `None` keeps the hot path free of instrumentation.
    pub telemetry: Option<TelemetryConfig>,
}

/// Everything a run produces: the [`Report`] plus, when the scenario was
/// configured with [`Scenario::telemetry`], the captured telemetry hub.
#[derive(Debug)]
pub struct RunOutput {
    /// The scenario's result metrics.
    pub report: Report,
    /// Captured telemetry (metrics registry, sampled time-series, flight
    /// recorder), if it was enabled.
    pub telemetry: Option<Box<Telemetry>>,
}

impl Scenario {
    /// The basic scenario of §4.1: EXP1 sources, τ = 3.5 s, 10 Mbps link,
    /// slow-start in-band dropping with ε = 0.01. The paper runs 14 000 s
    /// with a 2 000 s warm-up; the default here is a faster 3 000/500 s —
    /// pass `.paper_length()` for full fidelity.
    pub fn basic() -> Self {
        Scenario {
            design: Design::endpoint(
                Signal::Drop,
                Placement::InBand,
                crate::probe::ProbeStyle::SlowStart,
                0.01,
            ),
            groups: vec![Group::new("EXP1", SourceSpec::exp1(), 1.0)],
            tau_s: 3.5,
            lifetime_s: 300.0,
            link_bps: 10_000_000,
            buffer_pkts: 200,
            prop_delay_ms: 20.0,
            probe_total_s: 5.0,
            vq_factor: 0.9,
            probe_pushout: true,
            retry: None,
            mbac_window_s: 1.0,
            mbac_sample_s: 0.1,
            horizon_s: 3_000.0,
            warmup_s: 500.0,
            seed: 1,
            control_loss: 0.0,
            flaps_s: Vec::new(),
            run_config: RunConfig::default(),
            telemetry: None,
        }
    }

    /// Set the design.
    pub fn design(mut self, d: Design) -> Self {
        self.design = d;
        self
    }

    /// Replace the flow populations.
    pub fn groups(mut self, groups: Vec<Group>) -> Self {
        assert!(!groups.is_empty());
        self.groups = groups;
        self
    }

    /// Set mean flow interarrival time τ.
    pub fn tau(mut self, tau_s: f64) -> Self {
        assert!(tau_s > 0.0);
        self.tau_s = tau_s;
        self
    }

    /// Set the bottleneck bandwidth.
    pub fn link_bps(mut self, bps: u64) -> Self {
        self.link_bps = bps;
        self
    }

    /// Set the total probing time.
    pub fn probe_secs(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.probe_total_s = s;
        self
    }

    /// Set the simulation horizon.
    pub fn horizon_secs(mut self, s: f64) -> Self {
        self.horizon_s = s;
        self
    }

    /// Set the warm-up length.
    pub fn warmup_secs(mut self, s: f64) -> Self {
        self.warmup_s = s;
        self
    }

    /// The paper's full-length run: 14 000 s, first 2 000 s discarded.
    pub fn paper_length(mut self) -> Self {
        self.horizon_s = 14_000.0;
        self.warmup_s = 2_000.0;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Lose this fraction of control packets (both directions).
    pub fn control_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.control_loss = p;
        self
    }

    /// Add a bottleneck outage window.
    pub fn flap(mut self, down_s: f64, up_s: f64) -> Self {
        assert!(down_s < up_s);
        self.flaps_s.push((down_s, up_s));
        self
    }

    /// Resolve missing verdicts as rejections after this many seconds.
    pub fn verdict_timeout(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.run_config.verdict_timeout_s = Some(s);
        self
    }

    /// Enable the packet-conservation audit.
    pub fn audited(mut self) -> Self {
        self.run_config.audit = true;
        self
    }

    /// Cap total simulation events (event-storm watchdog).
    pub fn event_budget(mut self, budget: u64) -> Self {
        self.run_config.event_budget = Some(budget);
        self
    }

    /// Replace the whole run supervision config at once.
    pub fn with_run_config(mut self, cfg: RunConfig) -> Self {
        self.run_config = cfg;
        self
    }

    /// Enable telemetry capture (metrics, periodic time-series sampling,
    /// flight recorder). Retrieve the hub with [`run_full`](Scenario::run_full).
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Largest packet size among the groups (sizes the buffer in bytes).
    fn max_pkt_bytes(&self) -> u32 {
        self.groups
            .iter()
            .map(|g| g.source.pkt_bytes)
            .max()
            .unwrap_or(125)
    }

    /// Build and run the simulation, producing a [`Report`] or a graceful
    /// error (exhausted event budget, scheduling violation, failed
    /// conservation audit), as configured by the scenario's [`RunConfig`].
    ///
    /// This is the single entry point for every run. Without watchdogs
    /// armed it cannot fail; callers that want the old infallible
    /// behaviour can `.unwrap()` (or use the deprecated
    /// [`run_or_panic`](Scenario::run_or_panic) shim).
    pub fn run(&self) -> Result<Report, ScenarioError> {
        self.run_full().map(|o| o.report)
    }

    /// Like [`run`](Scenario::run), but also returns the telemetry hub
    /// when the scenario was configured with one. On a failed run, if the
    /// telemetry config names a dump directory, the flight recorder is
    /// written there as `{label}-seed{seed}.flight.jsonl` before the error
    /// propagates (the recorder itself stays reachable through any
    /// [`TelemetryConfig::with_recorder`] handle the caller kept).
    pub fn run_full(&self) -> Result<RunOutput, ScenarioError> {
        assert!(self.warmup_s < self.horizon_s);
        let root = SimRng::new(self.seed);

        // Topology: host -> bottleneck -> sink, fast reverse path.
        let mut net = Network::new();
        let host_n = net.add_node();
        let sink_n = net.add_node();
        let meter_n = net.add_node(); // timers only; no links

        let out_of_band = self.design.placement() == Placement::OutOfBand;
        let buffer = Limit::Packets(self.buffer_pkts);
        let qdisc = Box::new(StrictPrio::admission_queue_opts(
            buffer,
            out_of_band,
            self.probe_pushout,
        ));
        let marker = match self.design.signal() {
            Signal::Mark => Some(VirtualQueue::new(
                self.link_bps,
                self.vq_factor,
                (self.buffer_pkts as u32 * self.max_pkt_bytes()) as f64,
            )),
            Signal::Drop => None,
        };
        let prop = SimDuration::from_secs_f64(self.prop_delay_ms / 1_000.0);
        let bottleneck = net.add_link(host_n, sink_n, self.link_bps, prop, qdisc, marker);
        // Reverse path for verdicts: fast and uncongested.
        let reverse = net.add_link(
            sink_n,
            host_n,
            1_000_000_000,
            prop,
            Box::new(DropTail::new(Limit::Packets(100_000))),
            None,
        );

        let mut sim = Sim::new(net);

        // MBAC registry + meter.
        if let Design::Mbac { eta } = self.design {
            let mut reg = MbacRegistry::new(eta);
            reg.register(
                bottleneck,
                self.link_bps as f64,
                SimDuration::from_secs_f64(self.mbac_window_s),
            );
            sim.net.blackboard = Some(Box::new(reg));
            sim.attach(
                meter_n,
                Box::new(MeterAgent {
                    period: SimDuration::from_secs_f64(self.mbac_sample_s),
                }),
            );
        }

        let horizon = SimTime::from_secs_f64(self.horizon_s);
        let warmup = SimTime::from_secs_f64(self.warmup_s);
        let probe_total = SimDuration::from_secs_f64(self.probe_total_s);

        let host_cfg = HostConfig {
            sink: sink_n,
            design: self.design,
            groups: self.groups.clone(),
            demography: Demography::new(self.tau_s, self.lifetime_s),
            probe_total,
            mbac_path: vec![bottleneck],
            stop_arrivals_at: horizon,
            start_arrivals_at: SimTime::ZERO,
            retry: self.retry,
            verdict_timeout: self
                .run_config
                .verdict_timeout_s
                .map(SimDuration::from_secs_f64),
            measure_start: warmup,
            measure_end: horizon,
        };
        sim.attach(host_n, Box::new(HostAgent::new(host_cfg, root.derive(1))));

        let buffer_bytes = (self.buffer_pkts as u32 * self.max_pkt_bytes()) as u64;
        let sink_cfg = SinkConfig {
            signal: self.design.signal(),
            eps_per_group: effective_epsilons(&self.design, &self.groups),
            grace: stage_grace(buffer_bytes, self.link_bps, prop),
            flow_ttl: probe_total * 2 + SimDuration::from_secs(60),
        };
        sim.attach(sink_n, Box::new(SinkAgent::new(sink_cfg)));

        // Fault plan: control-packet loss on both directions of the
        // bottleneck path, plus any scheduled outages. The plan gets its
        // own derived RNG stream so enabling faults never perturbs the
        // traffic models' draws.
        let mut plan = FaultPlan::new();
        if self.control_loss > 0.0 {
            plan = plan
                .impair(Impairment::loss(
                    bottleneck,
                    Some(TrafficClass::Control),
                    self.control_loss,
                ))
                .impair(Impairment::loss(
                    reverse,
                    Some(TrafficClass::Control),
                    self.control_loss,
                ));
        }
        for &(down_s, up_s) in &self.flaps_s {
            plan = plan.flap(
                bottleneck,
                SimTime::from_secs_f64(down_s),
                SimTime::from_secs_f64(up_s),
            );
        }
        if !plan.is_empty() {
            sim.install_faults(plan, root.derive(99));
        }
        if let Some(budget) = self.run_config.event_budget {
            sim.set_event_budget(budget);
        }
        if self.run_config.wants_lenient() {
            sim.set_lenient_scheduling(true);
        }
        if let Some(tcfg) = &self.telemetry {
            sim.net.telemetry = Some(Box::new(tcfg.build()));
        }

        let driven = self.drive(&mut sim, host_n, sink_n, bottleneck);
        // Recover the hub before collecting so it survives both outcomes.
        let tel = sim.net.telemetry.take();
        match driven {
            Ok(link_metrics) => Ok(RunOutput {
                report: self.collect(&mut sim, host_n, sink_n, link_metrics),
                telemetry: tel,
            }),
            Err(e) => {
                if let Some(tel) = &tel {
                    // RunErrors were already recorded by the sim loop; the
                    // audit fires after it, so note it here.
                    if let ScenarioError::Audit(a) = &e {
                        tel.recorder
                            .record(sim.queue.now(), "audit.error", a.to_string());
                    }
                    if let Some(dir) = self.telemetry.as_ref().and_then(|c| c.dump_dir.as_ref()) {
                        let label = &self.telemetry.as_ref().expect("telemetry config").label;
                        let path = dir.join(format!("{label}-seed{}.flight.jsonl", self.seed));
                        if let Err(io) = tel.recorder.dump_jsonl(&path) {
                            eprintln!("flight-recorder dump to {} failed: {io}", path.display());
                        }
                    }
                }
                Err(e)
            }
        }
    }

    /// Warm up, snapshot, measure, then drain so every in-window data
    /// packet has either arrived or been dropped before counters are read
    /// (exact loss accounting). Returns the bottleneck link metrics, which
    /// must be sampled at the horizon rather than after the drain.
    fn drive(
        &self,
        sim: &mut Sim,
        host_n: NodeId,
        sink_n: NodeId,
        bottleneck: netsim::LinkId,
    ) -> Result<(f64, f64, f64, f64), ScenarioError> {
        let horizon = SimTime::from_secs_f64(self.horizon_s);
        let warmup = SimTime::from_secs_f64(self.warmup_s);
        sim.try_run_until(warmup)?;
        for l in sim.net.links_mut() {
            l.stats.mark_all();
        }
        sim.agent::<HostAgent>(host_n)
            .expect("host")
            .stats
            .mark_all();
        sim.agent::<SinkAgent>(sink_n)
            .expect("sink")
            .stats
            .mark_all();
        sim.try_run_until(horizon)?;
        let link_metrics = self.read_link_metrics(sim, bottleneck);
        sim.try_run_until(horizon + SimDuration::from_secs(5))?;

        if self.run_config.audit {
            sim.check_conservation()?;
        }
        Ok(link_metrics)
    }

    /// Build and run the simulation, producing a [`Report`] or a graceful
    /// error.
    #[deprecated(since = "0.2.0", note = "use `run()`, which is now fallible")]
    pub fn try_run(&self) -> Result<Report, ScenarioError> {
        self.run()
    }

    /// Build and run the simulation, panicking on any [`ScenarioError`].
    #[deprecated(since = "0.2.0", note = "use `run()` and handle the Result")]
    pub fn run_or_panic(&self) -> Report {
        self.run().unwrap_or_else(|e| panic!("{e}"))
    }

    fn read_link_metrics(&self, sim: &Sim, bottleneck: netsim::LinkId) -> (f64, f64, f64, f64) {
        let measured = SimDuration::from_secs_f64(self.horizon_s - self.warmup_s);
        let stats = &sim.net.link(bottleneck).stats;
        let util = stats.utilization(TrafficClass::Data, self.link_bps, measured);
        let loss = stats.drop_fraction(TrafficClass::Data);
        let data_b = stats
            .class(TrafficClass::Data)
            .transmitted_bytes
            .since_mark();
        let probe_b = stats
            .class(TrafficClass::Probe)
            .transmitted_bytes
            .since_mark();
        let overhead = if data_b + probe_b == 0 {
            0.0
        } else {
            probe_b as f64 / (data_b + probe_b) as f64
        };
        let marked = stats.class(TrafficClass::Data).marked.since_mark();
        let transmitted = stats.class(TrafficClass::Data).transmitted.since_mark();
        let mark_frac = if transmitted == 0 {
            0.0
        } else {
            marked as f64 / transmitted as f64
        };
        (util, loss, overhead, mark_frac)
    }

    fn collect(
        &self,
        sim: &mut Sim,
        host_n: NodeId,
        sink_n: NodeId,
        link_metrics: (f64, f64, f64, f64),
    ) -> Report {
        let measured = SimDuration::from_secs_f64(self.horizon_s - self.warmup_s);
        let (utilization, link_loss, probe_overhead, mark_fraction) = link_metrics;

        // Host/sink per-group counters.
        let (decided, accepted, rejected, sent, timeouts, host_stranded): (
            Vec<u64>,
            Vec<u64>,
            Vec<u64>,
            Vec<u64>,
            u64,
            u64,
        ) = {
            let host = sim.agent::<HostAgent>(host_n).expect("host");
            (
                host.stats.decided.iter().map(|c| c.since_mark()).collect(),
                host.stats.accepted.iter().map(|c| c.since_mark()).collect(),
                host.stats.rejected.iter().map(|c| c.since_mark()).collect(),
                host.stats
                    .data_sent
                    .iter()
                    .map(|c| c.since_mark())
                    .collect(),
                host.stats.timeouts.since_mark(),
                host.stranded_flows() as u64,
            )
        };
        let (received, delay_ms_mean, delay_ms_std, delay_hist, sink_undecided): (
            Vec<u64>,
            f64,
            f64,
            telemetry::HistSummary,
            u64,
        ) = {
            let sink = sim.agent::<SinkAgent>(sink_n).expect("sink");
            (
                sink.stats
                    .data_received
                    .iter()
                    .map(|c| c.since_mark())
                    .collect(),
                sink.stats.data_delay.mean() * 1_000.0,
                sink.stats.data_delay.std_dev() * 1_000.0,
                telemetry::HistSummary::from_nanos(&sink.stats.data_delay_hist),
                sink.undecided_flows() as u64,
            )
        };

        let groups: Vec<GroupReport> = self
            .groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let dec = decided[i];
                let rej = rejected[i];
                GroupReport {
                    name: g.name.clone(),
                    decided: dec,
                    accepted: accepted[i],
                    rejected: rej,
                    blocking: if dec == 0 {
                        0.0
                    } else {
                        rej as f64 / dec as f64
                    },
                    data_sent: sent[i],
                    data_received: received[i],
                    loss: if sent[i] == 0 {
                        0.0
                    } else {
                        1.0 - received[i] as f64 / sent[i] as f64
                    },
                }
            })
            .collect();

        let total_sent: u64 = sent.iter().sum();
        let total_recv: u64 = received.iter().sum();
        let total_dec: u64 = decided.iter().sum();
        let total_rej: u64 = rejected.iter().sum();

        let param = match self.design {
            Design::Endpoint { epsilon, .. } => epsilon,
            Design::Mbac { eta } => eta,
        };

        Report {
            design: self.design.name(),
            param,
            utilization,
            data_loss: if total_sent == 0 {
                0.0
            } else {
                1.0 - total_recv as f64 / total_sent as f64
            },
            link_loss,
            blocking: if total_dec == 0 {
                0.0
            } else {
                total_rej as f64 / total_dec as f64
            },
            probe_overhead,
            mark_fraction,
            delay_ms_mean,
            delay_ms_std,
            delay_hist,
            groups,
            link_utils: vec![utilization],
            timeouts,
            leaked_flows: host_stranded + sink_undecided,
            measured_s: measured.as_secs_f64(),
            events: sim.queue.events_fired(),
            seed: self.seed,
        }
    }
}

/// Run a scenario across several seeds and average the reports.
#[deprecated(
    since = "0.2.0",
    note = "use the bench crate's `Sweep` builder, which parallelizes and isolates"
)]
pub fn run_seeds(base: &Scenario, seeds: &[u64]) -> Report {
    assert!(!seeds.is_empty());
    let reports: Vec<Report> = seeds
        .iter()
        .map(|&s| base.clone().seed(s).run().unwrap_or_else(|e| panic!("{e}")))
        .collect();
    Report::average(&reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeStyle;

    fn quick(design: Design) -> Report {
        Scenario::basic()
            .design(design)
            .horizon_secs(260.0)
            .warmup_secs(60.0)
            .seed(7)
            .run()
            .unwrap()
    }

    #[test]
    fn light_load_admits_everything() {
        // τ = 60 s on a 10 Mbps link: ~5 concurrent 128k flows, no
        // congestion — everything is admitted, loss is zero.
        let r = Scenario::basic()
            .tau(60.0)
            .horizon_secs(400.0)
            .warmup_secs(50.0)
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(r.blocking, 0.0, "{r:?}");
        assert!(r.data_loss < 1e-4, "loss {}", r.data_loss);
        assert!(
            r.utilization > 0.01 && r.utilization < 0.5,
            "util {}",
            r.utilization
        );
    }

    #[test]
    fn overload_blocks_flows_and_bounds_loss() {
        // τ = 1.0 s: ~400% offered load; a large share must be blocked and
        // utilization must stay high.
        let r = Scenario::basic()
            .tau(1.0)
            .horizon_secs(500.0)
            .warmup_secs(100.0)
            .seed(5)
            .run()
            .unwrap();
        assert!(r.blocking > 0.4, "blocking {}", r.blocking);
        assert!(r.utilization > 0.5, "utilization {}", r.utilization);
        assert!(r.data_loss < 0.2, "loss {}", r.data_loss);
    }

    #[test]
    fn all_four_endpoint_designs_run() {
        for (sig, pl) in [
            (Signal::Drop, Placement::InBand),
            (Signal::Drop, Placement::OutOfBand),
            (Signal::Mark, Placement::InBand),
            (Signal::Mark, Placement::OutOfBand),
        ] {
            let r = quick(Design::endpoint(sig, pl, ProbeStyle::SlowStart, 0.02));
            assert!(r.utilization > 0.0, "{sig:?}/{pl:?}: {r:?}");
            assert!(r.groups[0].decided > 0, "{sig:?}/{pl:?}: no decisions");
        }
    }

    #[test]
    fn mbac_benchmark_runs_and_respects_target() {
        let r = quick(Design::mbac(0.9));
        assert!(r.groups[0].decided > 0);
        // With a 0.9 target the long-run utilization cannot exceed ~1.0.
        assert!(r.utilization < 1.05, "util {}", r.utilization);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let a = quick(Design::endpoint(
            Signal::Drop,
            Placement::InBand,
            ProbeStyle::SlowStart,
            0.01,
        ));
        let b = quick(Design::endpoint(
            Signal::Drop,
            Placement::InBand,
            ProbeStyle::SlowStart,
            0.01,
        ));
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.data_loss, b.data_loss);
        assert_eq!(a.groups[0].decided, b.groups[0].decided);
    }

    #[test]
    fn zero_epsilon_is_strictest() {
        let strict = quick(Design::endpoint(
            Signal::Drop,
            Placement::InBand,
            ProbeStyle::SlowStart,
            0.0,
        ));
        let loose = quick(Design::endpoint(
            Signal::Drop,
            Placement::InBand,
            ProbeStyle::SlowStart,
            0.05,
        ));
        assert!(
            strict.blocking >= loose.blocking,
            "strict {} vs loose {}",
            strict.blocking,
            loose.blocking
        );
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;
    use crate::host::RetryPolicy;
    use crate::probe::ProbeStyle;

    #[test]
    fn retries_raise_effective_load_and_fire_only_on_rejection() {
        let d = Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.0);
        // Light load: no rejections, so no retries.
        let mut light = Scenario::basic()
            .design(d)
            .tau(60.0)
            .horizon_secs(300.0)
            .warmup_secs(50.0)
            .seed(2);
        light.retry = Some(RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_secs(5),
            max_backoff: SimDuration::from_secs(60),
        });
        let r = light.clone().run().unwrap();
        assert_eq!(r.blocking, 0.0);

        // Heavy load: rejections happen and retries fire; the retried
        // attempts add decisions, so decided count exceeds the no-retry
        // baseline's.
        let mut heavy = Scenario::basic()
            .design(d)
            .tau(1.0)
            .horizon_secs(400.0)
            .warmup_secs(100.0)
            .seed(2);
        let base = heavy.clone().run().unwrap();
        heavy.retry = Some(RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_secs(5),
            max_backoff: SimDuration::from_secs(60),
        });
        let with_retry = heavy.run().unwrap();
        let base_dec: u64 = base.groups.iter().map(|g| g.decided).sum();
        let retry_dec: u64 = with_retry.groups.iter().map(|g| g.decided).sum();
        assert!(
            retry_dec > base_dec,
            "retries should add decisions: {retry_dec} vs {base_dec}"
        );
    }
}
