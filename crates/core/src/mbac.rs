//! The router-based benchmark: Measured Sum admission control
//! (the paper's \[14\] — Jamin, Shenker & Danzig, INFOCOM 1997), with
//! the time-window load estimator.
//!
//! Measured Sum admits a flow requesting rate `r` iff `ν̂ + r ≤ η·C`,
//! where `ν̂` is the measured load of admission-controlled traffic and η
//! the utilization target. The estimator samples the average arrival rate
//! every `sample_period`; the estimate is the max sampled average within
//! the current measurement window; admitting a flow bumps the estimate by
//! `r` and restarts the window; a sample above the estimate replaces it
//! immediately.
//!
//! Unlike the endpoint designs, requests at a router are *serialised*
//! (§2.2.3) — the simulation's single-threaded event loop provides that
//! serialisation for free.

use netsim::{Link, LinkId, TrafficClass};
use simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// Per-link Measured Sum state.
#[derive(Clone, Debug)]
pub struct MeasuredSum {
    /// Current load estimate ν̂, bits/second.
    estimate_bps: f64,
    /// Max sampled average in the current window.
    window_max_bps: f64,
    /// Start of the current measurement window.
    window_start: SimTime,
    /// Window length T.
    window: SimDuration,
    /// Byte counter value at the previous sample (Data class, offered).
    last_bytes: u64,
    /// Time of the previous sample.
    last_sample: SimTime,
    /// Admission-controlled capacity of this link, bits/second.
    capacity_bps: f64,
}

impl MeasuredSum {
    /// Fresh estimator for a link of the given admission-controlled
    /// capacity with measurement window `window`.
    pub fn new(capacity_bps: f64, window: SimDuration) -> Self {
        assert!(capacity_bps > 0.0 && !window.is_zero());
        MeasuredSum {
            estimate_bps: 0.0,
            window_max_bps: 0.0,
            window_start: SimTime::ZERO,
            window,
            last_bytes: 0,
            last_sample: SimTime::ZERO,
            capacity_bps,
        }
    }

    /// Current estimate, bits/second.
    pub fn estimate_bps(&self) -> f64 {
        self.estimate_bps
    }

    /// Feed one sample: cumulative Data bytes offered to the link.
    pub fn sample(&mut self, cumulative_bytes: u64, now: SimTime) {
        let dt = now.since(self.last_sample).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        let rate = (cumulative_bytes.saturating_sub(self.last_bytes)) as f64 * 8.0 / dt;
        self.last_bytes = cumulative_bytes;
        self.last_sample = now;

        self.window_max_bps = self.window_max_bps.max(rate);
        // A sample above the estimate replaces it immediately.
        if rate > self.estimate_bps {
            self.estimate_bps = rate;
        }
        // At the end of a window, the estimate becomes the window max.
        if now.since(self.window_start) >= self.window {
            self.estimate_bps = self.window_max_bps;
            self.window_max_bps = 0.0;
            self.window_start = now;
        }
    }

    /// Would a flow of rate `r_bps` fit under target utilization `eta`?
    pub fn admits(&self, r_bps: f64, eta: f64) -> bool {
        self.estimate_bps + r_bps <= eta * self.capacity_bps
    }

    /// Commit an admission: bump the estimate and restart the window.
    pub fn commit(&mut self, r_bps: f64, now: SimTime) {
        self.estimate_bps += r_bps;
        self.window_max_bps = 0.0;
        self.window_start = now;
    }
}

/// The registry shared through the network blackboard: one estimator per
/// metered link plus the global utilization target η.
pub struct MbacRegistry {
    links: HashMap<LinkId, MeasuredSum>,
    /// Utilization target η (the knob swept to trace the MBAC loss-load
    /// curve).
    pub eta: f64,
}

impl MbacRegistry {
    /// Empty registry with target `eta`.
    pub fn new(eta: f64) -> Self {
        assert!(eta > 0.0);
        MbacRegistry {
            links: HashMap::new(),
            eta,
        }
    }

    /// Register a link for metering and admission checks.
    pub fn register(&mut self, link: LinkId, capacity_bps: f64, window: SimDuration) {
        self.links
            .insert(link, MeasuredSum::new(capacity_bps, window));
    }

    /// Number of metered links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True if no links are registered.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Hop-by-hop admission for a flow of rate `r_bps` along `path`
    /// (links not registered are unmetered and always admit). All
    /// registered hops must admit; on success the estimate is committed
    /// at each.
    pub fn admit(&mut self, path: &[LinkId], r_bps: f64, now: SimTime) -> bool {
        let ok = path
            .iter()
            .filter_map(|l| self.links.get(l))
            .all(|m| m.admits(r_bps, self.eta));
        if ok {
            for l in path {
                if let Some(m) = self.links.get_mut(l) {
                    m.commit(r_bps, now);
                }
            }
        }
        ok
    }

    /// Sample every registered link from the live link array.
    pub fn sample_all(&mut self, links: &[Link], now: SimTime) {
        for (lid, m) in self.links.iter_mut() {
            let link = &links[lid.0 as usize];
            let bytes = link.stats.class(TrafficClass::Data).offered_bytes.total();
            m.sample(bytes, now);
        }
    }

    /// Estimator for a link (tests/inspection).
    pub fn estimator(&self, link: LinkId) -> Option<&MeasuredSum> {
        self.links.get(&link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIN: SimDuration = SimDuration::from_secs(1);

    #[test]
    fn estimate_tracks_sampled_rate() {
        let mut m = MeasuredSum::new(10_000_000.0, WIN);
        // 125 kB every 100 ms = 10 Mbps.
        let mut bytes = 0;
        for i in 1..=20 {
            bytes += 125_000;
            m.sample(bytes, SimTime::from_secs_f64(i as f64 * 0.1));
        }
        assert!((m.estimate_bps() - 10_000_000.0).abs() / 1e7 < 0.01);
    }

    #[test]
    fn admit_and_commit() {
        let mut m = MeasuredSum::new(10_000_000.0, WIN);
        assert!(m.admits(256_000.0, 0.9));
        m.commit(256_000.0, SimTime::ZERO);
        assert_eq!(m.estimate_bps(), 256_000.0);
        // Fill to the target: 9 Mbps / 256k = 35 flows total.
        for _ in 0..34 {
            assert!(m.admits(256_000.0, 0.9));
            m.commit(256_000.0, SimTime::ZERO);
        }
        assert!(!m.admits(256_000.0, 0.9));
    }

    #[test]
    fn window_end_decays_estimate_to_measured_max() {
        let mut m = MeasuredSum::new(10_000_000.0, WIN);
        m.commit(5_000_000.0, SimTime::ZERO); // phantom reservation
        assert_eq!(m.estimate_bps(), 5_000_000.0);
        // Actual traffic is only 1 Mbps; after a full window the estimate
        // falls to the measured max.
        let mut bytes = 0;
        for i in 1..=11 {
            bytes += 12_500; // 12.5 kB / 100 ms = 1 Mbps
            m.sample(bytes, SimTime::from_secs_f64(i as f64 * 0.1));
        }
        assert!(
            (m.estimate_bps() - 1_000_000.0).abs() / 1e6 < 0.05,
            "estimate {}",
            m.estimate_bps()
        );
    }

    #[test]
    fn sample_spike_raises_estimate_immediately() {
        let mut m = MeasuredSum::new(10_000_000.0, WIN);
        m.sample(125_000, SimTime::from_secs_f64(0.1)); // 10 Mbps spike
        assert!(m.estimate_bps() > 9_000_000.0);
    }

    #[test]
    fn registry_multi_hop_all_must_admit() {
        let mut reg = MbacRegistry::new(0.9);
        reg.register(LinkId(0), 10_000_000.0, WIN);
        reg.register(LinkId(1), 1_000_000.0, WIN);
        let path = [LinkId(0), LinkId(1)];
        // 900 kbps fits both; commit loads link 1 to its cap.
        assert!(reg.admit(&path, 900_000.0, SimTime::ZERO));
        // Next flow of 256k fails at link 1 but would fit link 0.
        assert!(!reg.admit(&path, 256_000.0, SimTime::ZERO));
        // Link 0 alone still admits — and a failed path committed nothing.
        assert!(reg.admit(&[LinkId(0)], 256_000.0, SimTime::ZERO));
        let e1 = reg.estimator(LinkId(1)).unwrap().estimate_bps();
        assert_eq!(e1, 900_000.0);
    }

    #[test]
    fn unregistered_links_always_admit() {
        let mut reg = MbacRegistry::new(0.9);
        assert!(reg.admit(&[LinkId(7)], 1e12, SimTime::ZERO));
    }
}
