//! Admission-control designs under test and flow population groups.

use crate::probe::{Placement, ProbeStyle, Signal};
use traffic::SourceSpec;

/// An admission-control design: one of the paper's four endpoint
/// prototypes (signal × placement, with a probing algorithm and a
/// threshold ε), or the router-based Measured Sum benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Design {
    /// Endpoint admission control.
    Endpoint {
        /// Congestion signal (drop or mark).
        signal: Signal,
        /// Probe placement (in-band or out-of-band).
        placement: Placement,
        /// Probing algorithm.
        style: ProbeStyle,
        /// Acceptance threshold ε.
        epsilon: f64,
    },
    /// Measured Sum MBAC benchmark with utilization target η.
    Mbac {
        /// Utilization target η.
        eta: f64,
    },
}

impl Design {
    /// Endpoint design shorthand.
    pub fn endpoint(signal: Signal, placement: Placement, style: ProbeStyle, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon));
        Design::Endpoint {
            signal,
            placement,
            style,
            epsilon,
        }
    }

    /// MBAC benchmark shorthand.
    pub fn mbac(eta: f64) -> Self {
        assert!(eta > 0.0 && eta <= 1.5);
        Design::Mbac { eta }
    }

    /// The four prototype names used in the figures.
    pub fn name(&self) -> String {
        match self {
            Design::Endpoint {
                signal, placement, ..
            } => {
                let s = match signal {
                    Signal::Drop => "drop",
                    Signal::Mark => "mark",
                };
                let p = match placement {
                    Placement::InBand => "in-band",
                    Placement::OutOfBand => "out-of-band",
                };
                format!("{s} ({p})")
            }
            Design::Mbac { .. } => "MBAC".to_string(),
        }
    }

    /// Probe placement (MBAC has none; reported as in-band for queueing).
    pub fn placement(&self) -> Placement {
        match self {
            Design::Endpoint { placement, .. } => *placement,
            Design::Mbac { .. } => Placement::InBand,
        }
    }

    /// Congestion signal (MBAC: Drop — it never marks).
    pub fn signal(&self) -> Signal {
        match self {
            Design::Endpoint { signal, .. } => *signal,
            Design::Mbac { .. } => Signal::Drop,
        }
    }
}

/// A population of statistically identical flows: a source model, a share
/// of the arrival process, and optionally its own acceptance threshold
/// (for the heterogeneous-threshold experiment, Table 3).
#[derive(Clone, Debug)]
pub struct Group {
    /// Label used in reports ("EXP1", "low-eps", "long", ...).
    pub name: String,
    /// Traffic source model.
    pub source: SourceSpec,
    /// Relative share of flow arrivals (weights need not sum to 1).
    pub weight: f64,
    /// Per-group ε override (None = the design's ε).
    pub epsilon: Option<f64>,
}

impl Group {
    /// A group with the design's default threshold.
    pub fn new(name: impl Into<String>, source: SourceSpec, weight: f64) -> Self {
        assert!(weight > 0.0);
        Group {
            name: name.into(),
            source,
            weight,
            epsilon: None,
        }
    }

    /// Override the acceptance threshold for this group.
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        self.epsilon = Some(eps);
        self
    }
}

/// Resolve each group's effective ε under `design`.
pub fn effective_epsilons(design: &Design, groups: &[Group]) -> Vec<f64> {
    let default = match design {
        Design::Endpoint { epsilon, .. } => *epsilon,
        Design::Mbac { .. } => 0.0,
    };
    groups
        .iter()
        .map(|g| g.epsilon.unwrap_or(default))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_figures() {
        assert_eq!(
            Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01).name(),
            "drop (in-band)"
        );
        assert_eq!(
            Design::endpoint(Signal::Mark, Placement::OutOfBand, ProbeStyle::Simple, 0.05).name(),
            "mark (out-of-band)"
        );
        assert_eq!(Design::mbac(0.9).name(), "MBAC");
    }

    #[test]
    fn epsilon_resolution() {
        let d = Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.02);
        let groups = vec![
            Group::new("a", SourceSpec::exp1(), 1.0),
            Group::new("b", SourceSpec::exp1(), 1.0).with_epsilon(0.2),
        ];
        assert_eq!(effective_epsilons(&d, &groups), vec![0.02, 0.2]);
    }

    #[test]
    #[should_panic]
    fn epsilon_out_of_range_panics() {
        Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::Simple, 1.5);
    }
}
