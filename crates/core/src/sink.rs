//! The receiving host: probe accounting and the admission verdict.
//!
//! "At the end of the probing interval, the loss percentage is computed
//! and the admission decision is made; the receiving host records the
//! losses and communicates the acceptance/rejection decision to the
//! sending host." (§3.1)
//!
//! The sink counts each flow's probe packets (and ECN marks) per stage.
//! When the sender's stage-end report arrives, the sink waits one *grace
//! period* (enough for in-flight probes of that stage to drain — the
//! report travels in the higher-priority control band and would otherwise
//! overtake them) and then compares the stage's congestion fraction with
//! the flow's ε: over threshold → `Reject` now; final stage passed →
//! `Accept`. The in-flight abort rule of simple probing rejects as soon
//! as the whole-probe loss budget is provably blown.

use crate::msg::{decode_data_aux, decode_probe_aux, Msg};
use crate::probe::{congestion_fraction, Signal};
use netsim::{Agent, Api, FlowId, NodeId, Packet, TrafficClass};
use simcore::stats::{Counter, Welford};
use simcore::SimDuration;
use std::any::Any;
use std::collections::HashMap;
use telemetry::LogHistogram;

/// Timer kinds used by the sink.
pub mod timer {
    /// Evaluate stage `data >> 56` of flow `data & MASK`.
    pub const EVAL: u32 = 10;
    /// Garbage-collect the flow record `data`.
    pub const GC: u32 = 11;
}

const FLOW_MASK: u64 = (1 << 56) - 1;
/// Maximum stages any probe plan may have (array bound).
pub const MAX_STAGES: usize = 8;

/// Sink configuration.
pub struct SinkConfig {
    /// Congestion signal the verdict uses.
    pub signal: Signal,
    /// Effective ε per group index.
    pub eps_per_group: Vec<f64>,
    /// How long after a stage-end report to wait before judging the stage
    /// (bounds the queueing delay of in-flight probes).
    pub grace: SimDuration,
    /// Upper bound on the life of an *undecided* flow record. When probes
    /// or control packets are lost, a flow may never reach a verdict; its
    /// record is reclaimed after this TTL (counted in
    /// [`SinkStats::expired`]) so sink state stays bounded. Must exceed
    /// the longest probe duration plus grace.
    pub flow_ttl: SimDuration,
}

/// Per-group and aggregate receiver statistics.
#[derive(Debug)]
pub struct SinkStats {
    /// Data packets received, per group.
    pub data_received: Vec<Counter>,
    /// Data bytes received, per group.
    pub data_bytes: Vec<Counter>,
    /// Probe packets received (aggregate).
    pub probe_received: Counter,
    /// Accept verdicts issued.
    pub accepts: Counter,
    /// Reject verdicts issued.
    pub rejects: Counter,
    /// End-to-end delay of delivered data packets, seconds. The paper
    /// argues Controlled-Load delays stay small because the
    /// admission-controlled queue is bounded; this lets reports verify
    /// that claim.
    pub data_delay: Welford,
    /// Full distribution of that delay, log-bucketed in nanoseconds
    /// (quantiles for the report's delay summary).
    pub data_delay_hist: LogHistogram,
    /// Undecided flow records reclaimed by the TTL garbage collector.
    pub expired: Counter,
    /// Timer events of an unknown kind (counted and ignored).
    pub stray_timers: Counter,
}

impl SinkStats {
    fn new(groups: usize) -> Self {
        SinkStats {
            data_received: (0..groups).map(|_| Counter::new()).collect(),
            data_bytes: (0..groups).map(|_| Counter::new()).collect(),
            probe_received: Counter::new(),
            accepts: Counter::new(),
            rejects: Counter::new(),
            data_delay: Welford::new(),
            data_delay_hist: LogHistogram::new(),
            expired: Counter::new(),
            stray_timers: Counter::new(),
        }
    }

    /// Snapshot all counters (end of warm-up).
    pub fn mark_all(&mut self) {
        for c in self
            .data_received
            .iter_mut()
            .chain(self.data_bytes.iter_mut())
        {
            c.mark();
        }
        self.probe_received.mark();
        self.accepts.mark();
        self.rejects.mark();
        self.expired.mark();
        self.stray_timers.mark();
        self.data_delay.reset();
        self.data_delay_hist.reset();
    }
}

struct SinkFlow {
    host: NodeId,
    eps: f64,
    expected_total: u32,
    abort: bool,
    decided: bool,
    received_total: u32,
    marked_total: u32,
    /// Highest probe sequence number seen + 1 (lower bound on sent count).
    max_seq_plus1: u64,
    stage_received: [u32; MAX_STAGES],
    stage_marked: [u32; MAX_STAGES],
    stage_sent: [u32; MAX_STAGES],
    final_stage: Option<u8>,
}

impl SinkFlow {
    fn new(host: NodeId, eps: f64) -> Self {
        SinkFlow {
            host,
            eps,
            expected_total: 0,
            abort: false,
            decided: false,
            received_total: 0,
            marked_total: 0,
            max_seq_plus1: 0,
            stage_received: [0; MAX_STAGES],
            stage_marked: [0; MAX_STAGES],
            stage_sent: [0; MAX_STAGES],
            final_stage: None,
        }
    }
}

/// The receiving-host agent.
pub struct SinkAgent {
    cfg: SinkConfig,
    flows: HashMap<u64, SinkFlow>,
    /// Statistics (readable after the run via `Sim::agent`).
    pub stats: SinkStats,
}

impl SinkAgent {
    /// Build a sink for the given configuration.
    pub fn new(cfg: SinkConfig) -> Self {
        let n = cfg.eps_per_group.len();
        SinkAgent {
            cfg,
            flows: HashMap::new(),
            stats: SinkStats::new(n),
        }
    }

    fn eps_of(&self, group: u8) -> f64 {
        *self.cfg.eps_per_group.get(group as usize).unwrap_or(&0.0)
    }

    /// Flow records still awaiting a verdict right now. Bounded by the
    /// TTL garbage collector even when control packets are lost.
    pub fn undecided_flows(&self) -> usize {
        self.flows.values().filter(|f| !f.decided).count()
    }

    /// Create the record for `id` if absent, arming its TTL reclaim timer
    /// so an abandoned (never-decided) flow cannot leak state forever.
    fn ensure_flow(&mut self, id: u64, host: NodeId, eps: f64, api: &mut Api) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.flows.entry(id) {
            e.insert(SinkFlow::new(host, eps));
            api.timer_in(self.cfg.flow_ttl, timer::GC, id);
        }
    }

    fn verdict(&mut self, flow_id: u64, accept: bool, api: &mut Api) {
        let flow = self
            .flows
            .get_mut(&flow_id)
            .expect("verdict for unknown flow");
        flow.decided = true;
        if accept {
            self.stats.accepts.inc();
        } else {
            self.stats.rejects.inc();
        }
        let msg = if accept { Msg::Accept } else { Msg::Reject };
        let pkt = Packet::new(
            0,
            FlowId(flow_id),
            api.node,
            flow.host,
            crate::host::CONTROL_PKT_BYTES,
            TrafficClass::Control,
            0,
            api.now(),
        )
        .with_aux(msg.encode());
        api.send(pkt);
        // Keep the record briefly so in-flight probes don't resurrect it.
        api.timer_in(SimDuration::from_secs(30), timer::GC, flow_id);
    }

    fn on_probe(&mut self, pkt: Packet, api: &mut Api) {
        self.stats.probe_received.inc();
        let (stage, group) = decode_probe_aux(pkt.aux);
        let eps = self.eps_of(group);
        self.ensure_flow(pkt.flow.0, pkt.src, eps, api);
        let flow = self.flows.get_mut(&pkt.flow.0).expect("just ensured");
        if flow.decided {
            return;
        }
        let s = (stage as usize).min(MAX_STAGES - 1);
        flow.stage_received[s] += 1;
        flow.received_total += 1;
        if pkt.marked {
            flow.stage_marked[s] += 1;
            flow.marked_total += 1;
        }
        flow.max_seq_plus1 = flow.max_seq_plus1.max(pkt.seq + 1);

        // In-flight abort (simple probing): reject as soon as the whole
        // probe's loss budget is provably exhausted.
        if flow.abort && flow.expected_total > 0 {
            let lost = flow
                .max_seq_plus1
                .saturating_sub(flow.received_total as u64) as u32;
            let events = match self.cfg.signal {
                Signal::Drop => lost,
                Signal::Mark => lost + flow.marked_total,
            };
            let budget = flow.eps * flow.expected_total as f64;
            if events as f64 > budget {
                self.verdict(pkt.flow.0, false, api);
            }
        }
    }

    fn on_control(&mut self, pkt: Packet, api: &mut Api) {
        match Msg::decode(pkt.aux) {
            Some(Msg::ProbeStart {
                group,
                expected,
                abort,
            }) => {
                let eps = self.eps_of(group);
                self.ensure_flow(pkt.flow.0, pkt.src, eps, api);
                let flow = self.flows.get_mut(&pkt.flow.0).expect("just ensured");
                flow.host = pkt.src;
                flow.eps = eps;
                flow.expected_total = expected;
                flow.abort = abort;
            }
            Some(Msg::StageEnd {
                stage,
                sent,
                is_final,
            }) => {
                if let Some(flow) = self.flows.get_mut(&pkt.flow.0) {
                    let s = (stage as usize).min(MAX_STAGES - 1);
                    flow.stage_sent[s] = sent;
                    if is_final {
                        flow.final_stage = Some(stage);
                    }
                    // Judge after the grace period so in-flight probes of
                    // this stage (travelling in a lower band) can land.
                    let data = ((stage as u64) << 56) | (pkt.flow.0 & FLOW_MASK);
                    api.timer_in(self.cfg.grace, timer::EVAL, data);
                }
            }
            _ => {}
        }
    }

    fn on_eval(&mut self, data: u64, api: &mut Api) {
        let flow_id = data & FLOW_MASK;
        let stage = (data >> 56) as u8;
        let Some(flow) = self.flows.get(&flow_id) else {
            return;
        };
        if flow.decided {
            return;
        }
        let s = (stage as usize).min(MAX_STAGES - 1);
        let frac = congestion_fraction(
            self.cfg.signal,
            flow.stage_sent[s],
            flow.stage_received[s],
            flow.stage_marked[s],
        );
        if frac > flow.eps {
            self.verdict(flow_id, false, api);
        } else if flow.final_stage == Some(stage) {
            self.verdict(flow_id, true, api);
        }
    }
}

impl Agent for SinkAgent {
    fn on_packet(&mut self, pkt: Packet, api: &mut Api) {
        match pkt.class {
            TrafficClass::Data => {
                // Only packets the sender tagged as in-window count, so the
                // sent/received identity is exact after the drain period.
                let (g, in_window) = decode_data_aux(pkt.aux);
                let g = g as usize;
                if in_window && g < self.stats.data_received.len() {
                    self.stats.data_received[g].inc();
                    self.stats.data_bytes[g].add(pkt.size as u64);
                    let delay = api.now().since(pkt.created);
                    self.stats.data_delay.add(delay.as_secs_f64());
                    let delay_ns = delay.as_nanos();
                    self.stats.data_delay_hist.record(delay_ns);
                    if let Some(tel) = api.net.telemetry.as_deref_mut() {
                        tel.metrics.observe("sink.delay_ns", delay_ns);
                    }
                }
            }
            TrafficClass::Probe => self.on_probe(pkt, api),
            TrafficClass::Control => self.on_control(pkt, api),
            TrafficClass::BestEffort => {}
        }
    }

    fn on_timer(&mut self, kind: u32, data: u64, api: &mut Api) {
        match kind {
            timer::EVAL => self.on_eval(data, api),
            timer::GC => {
                // Fired either 30 s after a verdict (drop the decided
                // record once stragglers drained) or at the creation TTL.
                // Reclaiming an undecided record means the flow never got
                // a verdict — that's the `expired` leak-pressure signal.
                if let Some(f) = self.flows.remove(&data) {
                    if !f.decided {
                        self.stats.expired.inc();
                    }
                }
            }
            // Count and ignore unknown timer kinds; aborting a long run
            // over a stray timer helps nobody.
            _ => self.stats.stray_timers.inc(),
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A time-stamped helper: the grace period a scenario should configure —
/// worst-case drain time of `buffer_bytes` at `link_bps`, doubled, plus
/// the propagation delay.
pub fn stage_grace(buffer_bytes: u64, link_bps: u64, prop: SimDuration) -> SimDuration {
    let drain = SimDuration::from_secs_f64(buffer_bytes as f64 * 8.0 / link_bps as f64);
    drain * 2 + prop
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grace_math() {
        // 200 × 125 B = 25 kB at 10 Mbps: drain 20 ms, ×2 + 20 ms prop = 60 ms.
        let g = stage_grace(25_000, 10_000_000, SimDuration::from_millis(20));
        assert_eq!(g, SimDuration::from_millis(60));
    }

    #[test]
    fn flow_mask_covers_host_flow_ids() {
        // Host flow ids are node << 32 | counter; nodes are u32 but in
        // practice < 2^20, so ids stay below 2^56.
        let id = (1_000_000u64 << 32) | 0xFFFF_FFFF;
        assert_eq!(id & FLOW_MASK, id);
    }
}
