//! Result types for scenario runs.
//!
//! A [`Report`] is the unit the figures are made of: one point on a
//! loss-load curve (utilization, data-loss probability) plus blocking
//! probabilities and per-group breakdowns for the tables. Serializable so
//! the bench harness can persist raw results.

use serde::Serialize;
use telemetry::HistSummary;

/// Per-group results.
#[derive(Clone, Debug, Serialize)]
pub struct GroupReport {
    /// Group label.
    pub name: String,
    /// Flows whose admission decision concluded after warm-up.
    pub decided: u64,
    /// Accepted flows.
    pub accepted: u64,
    /// Rejected flows.
    pub rejected: u64,
    /// Blocking probability (rejected / decided).
    pub blocking: f64,
    /// Data packets sent by admitted flows after warm-up.
    pub data_sent: u64,
    /// Data packets received at the sink after warm-up.
    pub data_received: u64,
    /// End-to-end data loss fraction.
    pub loss: f64,
}

/// Results of one scenario run.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Design label ("drop (in-band)", "MBAC", ...).
    pub design: String,
    /// Acceptance threshold ε (or MBAC target η).
    pub param: f64,
    /// Utilization of the bottleneck's allocated share by admission-
    /// controlled *data* packets (probes excluded, §3.2).
    pub utilization: f64,
    /// End-to-end data packet loss probability.
    pub data_loss: f64,
    /// Data drop fraction at the bottleneck queue (single-link scenarios:
    /// equals end-to-end loss up to edge effects).
    pub link_loss: f64,
    /// Overall blocking probability.
    pub blocking: f64,
    /// Fraction of transmitted admission-controlled bytes that were
    /// probes (probe overhead).
    pub probe_overhead: f64,
    /// Fraction of delivered data packets carrying an ECN mark.
    pub mark_fraction: f64,
    /// Mean end-to-end delay of delivered data packets, milliseconds.
    pub delay_ms_mean: f64,
    /// Standard deviation of that delay, milliseconds.
    pub delay_ms_std: f64,
    /// Delay distribution summary (quantiles in milliseconds), from the
    /// sink's log-bucketed histogram over the measurement window.
    pub delay_hist: HistSummary,
    /// Per-group breakdowns.
    pub groups: Vec<GroupReport>,
    /// Per-bottleneck-link data utilization (multi-hop scenarios).
    pub link_utils: Vec<f64>,
    /// Flows whose verdict never arrived and timed out into rejection
    /// (lost-control-packet resilience; zero in a fault-free run).
    pub timeouts: u64,
    /// Per-flow records still stranded at the end of the run: host flows
    /// stuck awaiting a verdict plus undecided sink records. With the
    /// verdict timeout and sink TTL enabled this should be ~zero even
    /// under faults.
    pub leaked_flows: u64,
    /// Measurement interval, seconds (horizon − warm-up).
    pub measured_s: f64,
    /// Simulation events processed over the whole run (throughput metric
    /// for the bench harness; summed when averaging seeds).
    pub events: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Report {
    /// Merge several same-configuration runs (different seeds) by
    /// averaging rates and summing counts.
    pub fn average(reports: &[Report]) -> Report {
        assert!(!reports.is_empty());
        let n = reports.len() as f64;
        let mut out = reports[0].clone();
        let mean = |f: fn(&Report) -> f64| reports.iter().map(f).sum::<f64>() / n;
        out.utilization = mean(|r| r.utilization);
        out.data_loss = mean(|r| r.data_loss);
        out.link_loss = mean(|r| r.link_loss);
        out.blocking = mean(|r| r.blocking);
        out.probe_overhead = mean(|r| r.probe_overhead);
        out.mark_fraction = mean(|r| r.mark_fraction);
        out.delay_ms_mean = mean(|r| r.delay_ms_mean);
        out.delay_ms_std = mean(|r| r.delay_ms_std);
        out.delay_hist = {
            let hists: Vec<&HistSummary> = reports.iter().map(|r| &r.delay_hist).collect();
            HistSummary::average(&hists)
        };
        out.timeouts = reports.iter().map(|r| r.timeouts).sum();
        out.leaked_flows = reports.iter().map(|r| r.leaked_flows).sum();
        out.events = reports.iter().map(|r| r.events).sum();
        for (i, lu) in out.link_utils.iter_mut().enumerate() {
            *lu = reports.iter().map(|r| r.link_utils[i]).sum::<f64>() / n;
        }
        for (gi, g) in out.groups.iter_mut().enumerate() {
            g.decided = reports.iter().map(|r| r.groups[gi].decided).sum();
            g.accepted = reports.iter().map(|r| r.groups[gi].accepted).sum();
            g.rejected = reports.iter().map(|r| r.groups[gi].rejected).sum();
            g.data_sent = reports.iter().map(|r| r.groups[gi].data_sent).sum();
            g.data_received = reports.iter().map(|r| r.groups[gi].data_received).sum();
            g.blocking = if g.decided == 0 {
                0.0
            } else {
                g.rejected as f64 / g.decided as f64
            };
            g.loss = if g.data_sent == 0 {
                0.0
            } else {
                1.0 - g.data_received as f64 / g.data_sent as f64
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(util: f64, loss: f64, acc: u64, rej: u64) -> Report {
        Report {
            design: "test".into(),
            param: 0.01,
            utilization: util,
            data_loss: loss,
            link_loss: loss,
            blocking: rej as f64 / (acc + rej) as f64,
            probe_overhead: 0.1,
            mark_fraction: 0.0,
            delay_ms_mean: 22.0,
            delay_ms_std: 1.0,
            delay_hist: HistSummary::default(),
            groups: vec![GroupReport {
                name: "g".into(),
                decided: acc + rej,
                accepted: acc,
                rejected: rej,
                blocking: rej as f64 / (acc + rej) as f64,
                data_sent: 1000,
                data_received: 990,
                loss: 0.01,
            }],
            link_utils: vec![util],
            timeouts: 0,
            leaked_flows: 0,
            measured_s: 100.0,
            events: 10,
            seed: 1,
        }
    }

    #[test]
    fn averaging_runs() {
        let a = mk(0.8, 0.01, 80, 20);
        let b = mk(0.9, 0.03, 90, 10);
        let avg = Report::average(&[a, b]);
        assert!((avg.utilization - 0.85).abs() < 1e-12);
        assert!((avg.data_loss - 0.02).abs() < 1e-12);
        assert_eq!(avg.groups[0].decided, 200);
        assert_eq!(avg.groups[0].rejected, 30);
        assert!((avg.groups[0].blocking - 0.15).abs() < 1e-12);
        assert!((avg.link_utils[0] - 0.85).abs() < 1e-12);
    }

    #[test]
    fn report_serializes() {
        let r = mk(0.8, 0.01, 80, 20);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"utilization\":0.8"));
    }
}
