//! Result types for scenario runs.
//!
//! A [`Report`] is the unit the figures are made of: one point on a
//! loss-load curve (utilization, data-loss probability) plus blocking
//! probabilities and per-group breakdowns for the tables. Serializable so
//! the bench harness can persist raw results.

use serde::{Serialize, Value};
use telemetry::HistSummary;

/// Per-group results.
#[derive(Clone, Debug, Serialize)]
pub struct GroupReport {
    /// Group label.
    pub name: String,
    /// Flows whose admission decision concluded after warm-up.
    pub decided: u64,
    /// Accepted flows.
    pub accepted: u64,
    /// Rejected flows.
    pub rejected: u64,
    /// Blocking probability (rejected / decided).
    pub blocking: f64,
    /// Data packets sent by admitted flows after warm-up.
    pub data_sent: u64,
    /// Data packets received at the sink after warm-up.
    pub data_received: u64,
    /// End-to-end data loss fraction.
    pub loss: f64,
}

/// Results of one scenario run.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Design label ("drop (in-band)", "MBAC", ...).
    pub design: String,
    /// Acceptance threshold ε (or MBAC target η).
    pub param: f64,
    /// Utilization of the bottleneck's allocated share by admission-
    /// controlled *data* packets (probes excluded, §3.2).
    pub utilization: f64,
    /// End-to-end data packet loss probability.
    pub data_loss: f64,
    /// Data drop fraction at the bottleneck queue (single-link scenarios:
    /// equals end-to-end loss up to edge effects).
    pub link_loss: f64,
    /// Overall blocking probability.
    pub blocking: f64,
    /// Fraction of transmitted admission-controlled bytes that were
    /// probes (probe overhead).
    pub probe_overhead: f64,
    /// Fraction of delivered data packets carrying an ECN mark.
    pub mark_fraction: f64,
    /// Mean end-to-end delay of delivered data packets, milliseconds.
    pub delay_ms_mean: f64,
    /// Standard deviation of that delay, milliseconds.
    pub delay_ms_std: f64,
    /// Delay distribution summary (quantiles in milliseconds), from the
    /// sink's log-bucketed histogram over the measurement window.
    pub delay_hist: HistSummary,
    /// Per-group breakdowns.
    pub groups: Vec<GroupReport>,
    /// Per-bottleneck-link data utilization (multi-hop scenarios).
    pub link_utils: Vec<f64>,
    /// Flows whose verdict never arrived and timed out into rejection
    /// (lost-control-packet resilience; zero in a fault-free run).
    pub timeouts: u64,
    /// Per-flow records still stranded at the end of the run: host flows
    /// stuck awaiting a verdict plus undecided sink records. With the
    /// verdict timeout and sink TTL enabled this should be ~zero even
    /// under faults.
    pub leaked_flows: u64,
    /// Measurement interval, seconds (horizon − warm-up).
    pub measured_s: f64,
    /// Simulation events processed over the whole run (throughput metric
    /// for the bench harness; summed when averaging seeds).
    pub events: u64,
    /// RNG seed.
    pub seed: u64,
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

fn count(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

impl GroupReport {
    /// Rebuild a per-group report from its serialized JSON object.
    /// Missing fields default to zero (result files written by earlier
    /// harness versions omit later additions).
    pub fn from_json(v: &Value) -> Result<GroupReport, String> {
        if v.as_object().is_none() {
            return Err("group report is not a JSON object".into());
        }
        Ok(GroupReport {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            decided: count(v, "decided"),
            accepted: count(v, "accepted"),
            rejected: count(v, "rejected"),
            blocking: num(v, "blocking"),
            data_sent: count(v, "data_sent"),
            data_received: count(v, "data_received"),
            loss: num(v, "loss"),
        })
    }
}

impl Report {
    /// Rebuild a report from its serialized JSON object — the accessor the
    /// reproduction gate (`experiments -- check`) uses to re-read the rows
    /// of `results/*.json`. The inverse of `Serialize` for current files;
    /// fields absent from older files default to zero/empty.
    pub fn from_json(v: &Value) -> Result<Report, String> {
        if v.as_object().is_none() {
            return Err("report row is not a JSON object".into());
        }
        let groups = match v.get("groups").and_then(Value::as_array) {
            Some(items) => items
                .iter()
                .map(GroupReport::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let link_utils = v
            .get("link_utils")
            .and_then(Value::as_array)
            .map(|items| items.iter().filter_map(Value::as_f64).collect())
            .unwrap_or_default();
        Ok(Report {
            design: v
                .get("design")
                .and_then(Value::as_str)
                .ok_or("report row missing 'design'")?
                .to_string(),
            param: num(v, "param"),
            utilization: num(v, "utilization"),
            data_loss: num(v, "data_loss"),
            link_loss: num(v, "link_loss"),
            blocking: num(v, "blocking"),
            probe_overhead: num(v, "probe_overhead"),
            mark_fraction: num(v, "mark_fraction"),
            delay_ms_mean: num(v, "delay_ms_mean"),
            delay_ms_std: num(v, "delay_ms_std"),
            delay_hist: v
                .get("delay_hist")
                .map(HistSummary::from_json)
                .unwrap_or_default(),
            groups,
            link_utils,
            timeouts: count(v, "timeouts"),
            leaked_flows: count(v, "leaked_flows"),
            measured_s: num(v, "measured_s"),
            events: count(v, "events"),
            seed: count(v, "seed"),
        })
    }

    /// Merge several same-configuration runs (different seeds) by
    /// averaging rates and summing counts.
    pub fn average(reports: &[Report]) -> Report {
        assert!(!reports.is_empty());
        let n = reports.len() as f64;
        let mut out = reports[0].clone();
        let mean = |f: fn(&Report) -> f64| reports.iter().map(f).sum::<f64>() / n;
        out.utilization = mean(|r| r.utilization);
        out.data_loss = mean(|r| r.data_loss);
        out.link_loss = mean(|r| r.link_loss);
        out.blocking = mean(|r| r.blocking);
        out.probe_overhead = mean(|r| r.probe_overhead);
        out.mark_fraction = mean(|r| r.mark_fraction);
        out.delay_ms_mean = mean(|r| r.delay_ms_mean);
        out.delay_ms_std = mean(|r| r.delay_ms_std);
        out.delay_hist = {
            let hists: Vec<&HistSummary> = reports.iter().map(|r| &r.delay_hist).collect();
            HistSummary::average(&hists)
        };
        out.timeouts = reports.iter().map(|r| r.timeouts).sum();
        out.leaked_flows = reports.iter().map(|r| r.leaked_flows).sum();
        out.events = reports.iter().map(|r| r.events).sum();
        for (i, lu) in out.link_utils.iter_mut().enumerate() {
            *lu = reports.iter().map(|r| r.link_utils[i]).sum::<f64>() / n;
        }
        for (gi, g) in out.groups.iter_mut().enumerate() {
            g.decided = reports.iter().map(|r| r.groups[gi].decided).sum();
            g.accepted = reports.iter().map(|r| r.groups[gi].accepted).sum();
            g.rejected = reports.iter().map(|r| r.groups[gi].rejected).sum();
            g.data_sent = reports.iter().map(|r| r.groups[gi].data_sent).sum();
            g.data_received = reports.iter().map(|r| r.groups[gi].data_received).sum();
            g.blocking = if g.decided == 0 {
                0.0
            } else {
                g.rejected as f64 / g.decided as f64
            };
            g.loss = if g.data_sent == 0 {
                0.0
            } else {
                1.0 - g.data_received as f64 / g.data_sent as f64
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(util: f64, loss: f64, acc: u64, rej: u64) -> Report {
        Report {
            design: "test".into(),
            param: 0.01,
            utilization: util,
            data_loss: loss,
            link_loss: loss,
            blocking: rej as f64 / (acc + rej) as f64,
            probe_overhead: 0.1,
            mark_fraction: 0.0,
            delay_ms_mean: 22.0,
            delay_ms_std: 1.0,
            delay_hist: HistSummary::default(),
            groups: vec![GroupReport {
                name: "g".into(),
                decided: acc + rej,
                accepted: acc,
                rejected: rej,
                blocking: rej as f64 / (acc + rej) as f64,
                data_sent: 1000,
                data_received: 990,
                loss: 0.01,
            }],
            link_utils: vec![util],
            timeouts: 0,
            leaked_flows: 0,
            measured_s: 100.0,
            events: 10,
            seed: 1,
        }
    }

    #[test]
    fn averaging_runs() {
        let a = mk(0.8, 0.01, 80, 20);
        let b = mk(0.9, 0.03, 90, 10);
        let avg = Report::average(&[a, b]);
        assert!((avg.utilization - 0.85).abs() < 1e-12);
        assert!((avg.data_loss - 0.02).abs() < 1e-12);
        assert_eq!(avg.groups[0].decided, 200);
        assert_eq!(avg.groups[0].rejected, 30);
        assert!((avg.groups[0].blocking - 0.15).abs() < 1e-12);
        assert!((avg.link_utils[0] - 0.85).abs() < 1e-12);
    }

    #[test]
    fn report_serializes() {
        let r = mk(0.8, 0.01, 80, 20);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"utilization\":0.8"));
    }

    #[test]
    fn report_json_round_trips() {
        let r = mk(0.8, 0.01, 80, 20);
        let v = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        let back = Report::from_json(&v).unwrap();
        assert_eq!(back.design, r.design);
        assert_eq!(back.utilization, r.utilization);
        assert_eq!(back.data_loss, r.data_loss);
        assert_eq!(back.groups.len(), 1);
        assert_eq!(back.groups[0].decided, r.groups[0].decided);
        assert_eq!(back.groups[0].name, "g");
        assert_eq!(back.link_utils, r.link_utils);
        assert_eq!(back.delay_hist, r.delay_hist);
        assert_eq!(back.seed, 1);
    }

    #[test]
    fn report_from_json_tolerates_missing_fields() {
        // A pre-telemetry row: no delay_hist, timeouts, leaked_flows, events.
        let v = serde_json::from_str(
            r#"{"design":"drop (in-band)","param":0.01,"utilization":0.84,
                "data_loss":0.002,"blocking":0.15,
                "groups":[{"name":"EXP1","decided":10,"accepted":9,"rejected":1,
                           "blocking":0.1,"data_sent":100,"data_received":99,"loss":0.01}],
                "link_utils":[0.84],"measured_s":1200.0,"seed":1}"#,
        )
        .unwrap();
        let r = Report::from_json(&v).unwrap();
        assert_eq!(r.design, "drop (in-band)");
        assert_eq!(r.timeouts, 0);
        assert_eq!(r.events, 0);
        assert_eq!(r.delay_hist, telemetry::HistSummary::default());
        assert_eq!(r.groups[0].decided, 10);
    }

    #[test]
    fn report_from_json_rejects_non_rows() {
        assert!(Report::from_json(&Value::Null).is_err());
        assert!(Report::from_json(&Value::Array(vec![])).is_err());
        let no_design = serde_json::from_str(r#"{"param":0.01}"#).unwrap();
        assert!(Report::from_json(&no_design).is_err());
    }
}
