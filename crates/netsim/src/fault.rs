//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes everything that can go wrong with the
//! substrate during a run: scheduled link down/up flaps, and per-link
//! wire impairments (Bernoulli loss, duplication, and reorder-jitter),
//! optionally restricted to one [`TrafficClass`]. The plan is installed
//! on a [`Sim`](crate::Sim) together with a dedicated [`SimRng`] stream,
//! so every impairment draw comes from the seeded generator — identical
//! seeds and plans reproduce bit-identical runs, and adding faults never
//! perturbs the traffic models' own streams.
//!
//! Semantics:
//!
//! - **Flaps**: at `down_at` the link stops transmitting and is removed
//!   from routing (routes recompute on the next injection); the packet on
//!   the wire and anything finishing serialisation while down is lost and
//!   counted in [`FaultStats::down_drops`]. Queued packets are *not*
//!   flushed — the interface pauses store-and-forward style — and resume
//!   when `up_at` restores the link and re-enters it into routing.
//! - **Loss/duplication/reorder** apply at transmission completion, i.e.
//!   on the wire after the queue: loss models corruption past the qdisc
//!   (counted in [`FaultStats::wire_lost`], distinct from queue drops),
//!   duplication delivers a second copy, and reorder-jitter delays an
//!   affected copy by a uniform extra amount so later packets can
//!   overtake it.

use crate::packet::{LinkId, TrafficClass};
use simcore::{SimDuration, SimRng, SimTime};

/// One scheduled link outage.
#[derive(Clone, Copy, Debug)]
pub struct LinkFlap {
    /// The link that goes down.
    pub link: LinkId,
    /// When it goes down.
    pub down_at: SimTime,
    /// When it comes back up (must be after `down_at`).
    pub up_at: SimTime,
}

/// Stochastic wire impairments for one link.
#[derive(Clone, Copy, Debug)]
pub struct Impairment {
    /// The link affected.
    pub link: LinkId,
    /// Restrict to one traffic class (`None` = every class).
    pub class: Option<TrafficClass>,
    /// Probability a transmitted packet is lost on the wire.
    pub loss: f64,
    /// Probability a delivered packet is duplicated.
    pub duplicate: f64,
    /// Probability a delivered copy gets extra reorder jitter.
    pub reorder: f64,
    /// Maximum extra delay for a reordered copy (uniform in `(0, jitter]`).
    pub jitter: SimDuration,
}

impl Impairment {
    /// A pure-loss impairment on `link` for `class`.
    pub fn loss(link: LinkId, class: Option<TrafficClass>, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        Impairment {
            link,
            class,
            loss: p,
            duplicate: 0.0,
            reorder: 0.0,
            jitter: SimDuration::ZERO,
        }
    }

    fn applies_to(&self, link: LinkId, class: TrafficClass) -> bool {
        self.link == link && self.class.is_none_or(|c| c == class)
    }
}

/// The full fault schedule for a run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Scheduled outages.
    pub flaps: Vec<LinkFlap>,
    /// Per-link wire impairments.
    pub impairments: Vec<Impairment>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan does anything at all.
    pub fn is_empty(&self) -> bool {
        self.flaps.is_empty() && self.impairments.is_empty()
    }

    /// Add an outage window for `link`.
    pub fn flap(mut self, link: LinkId, down_at: SimTime, up_at: SimTime) -> Self {
        assert!(down_at < up_at, "flap must go down before it comes up");
        self.flaps.push(LinkFlap {
            link,
            down_at,
            up_at,
        });
        self
    }

    /// Add a wire impairment.
    pub fn impair(mut self, imp: Impairment) -> Self {
        assert!((0.0..=1.0).contains(&imp.loss));
        assert!((0.0..=1.0).contains(&imp.duplicate));
        assert!((0.0..=1.0).contains(&imp.reorder));
        self.impairments.push(imp);
        self
    }
}

/// Counters for injected faults (readable after a run).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultStats {
    /// Packets lost on the wire by Bernoulli loss.
    pub wire_lost: u64,
    /// Extra copies delivered by duplication.
    pub duplicated: u64,
    /// Copies delayed by reorder jitter.
    pub reordered: u64,
    /// Packets lost because their link was down when they finished
    /// serialising (including the flush of the in-flight packet).
    pub down_drops: u64,
}

/// What to do with one copy of a transmitted packet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum WireFate {
    /// Lost on the wire.
    Lost,
    /// Deliver after the given extra delay (zero = on time); the `bool`
    /// is whether a duplicate copy should also be delivered, with its own
    /// extra delay.
    Deliver {
        extra: SimDuration,
        dup_extra: Option<SimDuration>,
    },
}

/// Installed fault state: the plan plus its dedicated RNG stream.
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: SimRng,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, rng: SimRng) -> Self {
        FaultState {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// Decide the fate of a packet of `class` finishing transmission on
    /// `link`. Draws are only consumed for configured, matching
    /// impairments, so unimpaired links never touch the fault stream.
    pub(crate) fn judge(&mut self, link: LinkId, class: TrafficClass) -> WireFate {
        let Some(imp) = self
            .plan
            .impairments
            .iter()
            .find(|i| i.applies_to(link, class))
            .copied()
        else {
            return WireFate::Deliver {
                extra: SimDuration::ZERO,
                dup_extra: None,
            };
        };
        if imp.loss > 0.0 && self.rng.chance(imp.loss) {
            self.stats.wire_lost += 1;
            return WireFate::Lost;
        }
        let extra = self.draw_jitter(&imp);
        let dup_extra = if imp.duplicate > 0.0 && self.rng.chance(imp.duplicate) {
            self.stats.duplicated += 1;
            Some(self.draw_jitter(&imp))
        } else {
            None
        };
        WireFate::Deliver { extra, dup_extra }
    }

    fn draw_jitter(&mut self, imp: &Impairment) -> SimDuration {
        if imp.reorder > 0.0 && imp.jitter > SimDuration::ZERO && self.rng.chance(imp.reorder) {
            self.stats.reordered += 1;
            SimDuration::from_secs_f64(self.rng.uniform() * imp.jitter.as_secs_f64())
        } else {
            SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_validates() {
        let plan = FaultPlan::new()
            .flap(
                LinkId(0),
                SimTime::from_secs_f64(1.0),
                SimTime::from_secs_f64(2.0),
            )
            .impair(Impairment::loss(
                LinkId(1),
                Some(TrafficClass::Control),
                0.25,
            ));
        assert_eq!(plan.flaps.len(), 1);
        assert_eq!(plan.impairments.len(), 1);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "down before")]
    fn inverted_flap_rejected() {
        let _ = FaultPlan::new().flap(LinkId(0), SimTime::from_secs_f64(2.0), SimTime::ZERO);
    }

    #[test]
    fn judge_is_deterministic_and_class_scoped() {
        let plan = FaultPlan::new().impair(Impairment::loss(
            LinkId(0),
            Some(TrafficClass::Control),
            0.5,
        ));
        let run = |seed| {
            let mut st = FaultState::new(plan.clone(), SimRng::new(seed));
            let fates: Vec<WireFate> = (0..64)
                .map(|_| st.judge(LinkId(0), TrafficClass::Control))
                .collect();
            (fates, st.stats.wire_lost)
        };
        assert_eq!(run(9), run(9));
        let (_, lost) = run(9);
        assert!(lost > 10 && lost < 54, "p=0.5 of 64: {lost}");

        // Other classes and other links never consume draws or drop.
        let mut st = FaultState::new(plan, SimRng::new(9));
        for _ in 0..64 {
            assert_eq!(
                st.judge(LinkId(0), TrafficClass::Data),
                WireFate::Deliver {
                    extra: SimDuration::ZERO,
                    dup_extra: None
                }
            );
            assert_eq!(
                st.judge(LinkId(1), TrafficClass::Control),
                WireFate::Deliver {
                    extra: SimDuration::ZERO,
                    dup_extra: None
                }
            );
        }
        assert_eq!(st.stats.wire_lost, 0);
    }

    #[test]
    fn duplication_and_reorder_counted() {
        let plan = FaultPlan::new().impair(Impairment {
            link: LinkId(2),
            class: None,
            loss: 0.0,
            duplicate: 0.5,
            reorder: 0.5,
            jitter: SimDuration::from_millis(10),
        });
        let mut st = FaultState::new(plan, SimRng::new(3));
        let mut dups = 0;
        for _ in 0..200 {
            match st.judge(LinkId(2), TrafficClass::Data) {
                WireFate::Deliver { dup_extra, .. } => dups += dup_extra.is_some() as u32,
                WireFate::Lost => panic!("loss disabled"),
            }
        }
        assert!(dups > 50, "dups {dups}");
        assert_eq!(st.stats.duplicated as u32, dups);
        assert!(st.stats.reordered > 50);
    }
}
