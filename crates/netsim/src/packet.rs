//! Packets and identifiers.

use simcore::SimTime;
use std::fmt;

/// Index of a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Index of a unidirectional link in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// Globally unique flow identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}
impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Traffic classes, in the priority order the paper's prototype designs
/// assume (§2.1.2–2.1.3): control and admission-controlled data highest,
/// probes below data but above best effort.
///
/// The numeric discriminant doubles as an index into per-class statistic
/// arrays; keep [`TrafficClass::COUNT`] in sync.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum TrafficClass {
    /// Signalling/feedback packets (accept/reject notices, TCP ACKs). These
    /// ride the highest band; the paper does not model signalling loss.
    Control = 0,
    /// Admission-controlled data traffic.
    Data = 1,
    /// Probe packets. With *in-band* probing the scheduler maps this class
    /// to the same band as [`TrafficClass::Data`]; with *out-of-band*
    /// probing it gets its own lower band.
    Probe = 2,
    /// Ordinary best-effort traffic (e.g. TCP in the incremental-deployment
    /// study).
    BestEffort = 3,
}

impl TrafficClass {
    /// Number of classes (array dimension for per-class stats).
    pub const COUNT: usize = 4;
    /// All classes, in discriminant order.
    pub const ALL: [TrafficClass; Self::COUNT] = [
        TrafficClass::Control,
        TrafficClass::Data,
        TrafficClass::Probe,
        TrafficClass::BestEffort,
    ];

    /// Discriminant as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A simulated packet.
///
/// Packets are plain values moved through queues and events; there is no
/// payload, only accounting metadata.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Globally unique packet id (assigned by the sender).
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Origin node.
    pub src: NodeId,
    /// Destination node (delivery target).
    pub dst: NodeId,
    /// Size on the wire, bytes.
    pub size: u32,
    /// Traffic class (drives scheduling priority).
    pub class: TrafficClass,
    /// Per-flow sequence number (receivers detect losses as gaps).
    pub seq: u64,
    /// ECN congestion-experienced mark, set by virtual-queue markers.
    pub marked: bool,
    /// Time the sender created the packet (for delay accounting).
    pub created: SimTime,
    /// Opaque endpoint-defined metadata (e.g. probe stage, control payload).
    /// Routers never read it.
    pub aux: u64,
}

impl Packet {
    /// Convenience constructor; `id` and `seq` start at the given values and
    /// `marked` clear.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u64,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        size: u32,
        class: TrafficClass,
        seq: u64,
        created: SimTime,
    ) -> Self {
        Packet {
            id,
            flow,
            src,
            dst,
            size,
            class,
            seq,
            marked: false,
            created,
            aux: 0,
        }
    }

    /// Set the endpoint metadata field (builder style).
    pub fn with_aux(mut self, aux: u64) -> Self {
        self.aux = aux;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense() {
        for (i, c) in TrafficClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(TrafficClass::ALL.len(), TrafficClass::COUNT);
    }

    #[test]
    fn packet_construction() {
        let p = Packet::new(
            1,
            FlowId(7),
            NodeId(0),
            NodeId(1),
            125,
            TrafficClass::Probe,
            3,
            SimTime::ZERO,
        );
        assert_eq!(p.size, 125);
        assert!(!p.marked);
        assert_eq!(p.class, TrafficClass::Probe);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(2).to_string(), "l2");
        assert_eq!(FlowId(9).to_string(), "f9");
    }
}
