//! Invariant auditing: packet conservation and run health.
//!
//! The substrate maintains a handful of cheap global counters
//! ([`AuditCounters`], a few u64 increments on the packet path) so that a
//! test can assert, at any quiescent point, that no packet was silently
//! created or destroyed:
//!
//! ```text
//! injected + duplicated =
//!     delivered + queue drops + wire losses + down drops + no-route drops
//!     + queued + in flight + in transit
//! ```
//!
//! `injected` counts agent-originated sends ([`crate::Api::send`]);
//! forwarding at transit nodes does not re-count. `in transit` tracks
//! scheduled `Deliver` events not yet fired (packets on the wire), so the
//! identity holds mid-run, not just after a drain.
//!
//! The check itself is opt-in — call [`check_conservation`] (or
//! `Sim::check_conservation`) from tests or audited scenarios.

use crate::topo::Network;

/// Global packet-path counters maintained by the substrate.
#[derive(Clone, Copy, Debug, Default)]
pub struct AuditCounters {
    /// Agent-originated packet sends.
    pub injected: u64,
    /// Final deliveries (including packets arriving at agent-less nodes).
    pub delivered: u64,
    /// Scheduled `Deliver` events not yet fired.
    pub in_transit: u64,
    /// Packets dropped because no route existed to their destination
    /// (e.g. every path contains a down link).
    pub no_route_drops: u64,
    /// Timer events that fired on a node with no agent (counted and
    /// ignored rather than aborting the run).
    pub stray_timers: u64,
}

/// A violated invariant.
#[derive(Clone, Debug)]
pub enum AuditError {
    /// The conservation identity does not balance.
    Conservation {
        /// Left-hand side: injected + duplicated.
        sources: u64,
        /// Right-hand side: all sink terms summed.
        sinks: u64,
        /// Human-readable term breakdown.
        detail: String,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Conservation {
                sources,
                sinks,
                detail,
            } => write!(
                f,
                "packet conservation violated: sources {sources} != sinks {sinks} ({detail})"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// Check packet conservation against the network's current state.
pub fn check_conservation(net: &Network) -> Result<(), AuditError> {
    let a = net.audit;
    let fault = net.fault_stats().copied().unwrap_or_default();

    let mut queue_drops = 0u64;
    let mut queued = 0u64;
    let mut in_flight = 0u64;
    for l in net.links() {
        for class in crate::packet::TrafficClass::ALL {
            queue_drops += l.stats.class(class).dropped.total();
        }
        queued += l.queue_len() as u64;
        in_flight += l.is_busy() as u64;
    }

    let sources = a.injected + fault.duplicated;
    let sinks = a.delivered
        + queue_drops
        + fault.wire_lost
        + fault.down_drops
        + a.no_route_drops
        + queued
        + in_flight
        + a.in_transit;

    if sources == sinks {
        Ok(())
    } else {
        Err(AuditError::Conservation {
            sources,
            sinks,
            detail: format!(
                "injected {} + duplicated {} vs delivered {} + queue_drops {queue_drops} \
                 + wire_lost {} + down_drops {} + no_route {} + queued {queued} \
                 + in_flight {in_flight} + in_transit {}",
                a.injected,
                fault.duplicated,
                a.delivered,
                fault.wire_lost,
                fault.down_drops,
                a.no_route_drops,
                a.in_transit
            ),
        })
    }
}
