//! Unidirectional links: a queueing discipline feeding a transmitter with
//! fixed bandwidth and propagation delay, plus per-class statistics.

use crate::packet::{LinkId, NodeId, Packet, TrafficClass};
use crate::qdisc::{Dequeue, Qdisc, VirtualQueue};
use crate::trace::{TraceKind, Tracer};
use simcore::stats::Counter;
use simcore::{SimDuration, SimTime};

/// Arrival/drop/mark/departure counters for one traffic class on one link.
#[derive(Clone, Debug, Default)]
pub struct ClassStats {
    /// Packets offered to the queue (before any drop decision).
    pub offered: Counter,
    /// Bytes offered.
    pub offered_bytes: Counter,
    /// Packets dropped (tail drop, RED drop, or push-out eviction).
    pub dropped: Counter,
    /// Packets that left the queue carrying an ECN mark.
    pub marked: Counter,
    /// Packets transmitted onto the wire.
    pub transmitted: Counter,
    /// Bytes transmitted.
    pub transmitted_bytes: Counter,
}

/// Per-link statistics, indexed by [`TrafficClass`].
#[derive(Clone, Debug, Default)]
pub struct LinkStats {
    per_class: [ClassStats; TrafficClass::COUNT],
}

impl LinkStats {
    /// Stats for one class.
    pub fn class(&self, c: TrafficClass) -> &ClassStats {
        &self.per_class[c.index()]
    }

    fn class_mut(&mut self, c: TrafficClass) -> &mut ClassStats {
        &mut self.per_class[c.index()]
    }

    /// Snapshot all counters (start of the measurement window, i.e. end of
    /// warm-up). Subsequent reads via `since_mark()` exclude the warm-up.
    pub fn mark_all(&mut self) {
        for cs in &mut self.per_class {
            cs.offered.mark();
            cs.offered_bytes.mark();
            cs.dropped.mark();
            cs.marked.mark();
            cs.transmitted.mark();
            cs.transmitted_bytes.mark();
        }
    }

    /// Fraction of `class` packets dropped since the mark (drops/offered).
    pub fn drop_fraction(&self, c: TrafficClass) -> f64 {
        let cs = self.class(c);
        let offered = cs.offered.since_mark();
        if offered == 0 {
            0.0
        } else {
            cs.dropped.since_mark() as f64 / offered as f64
        }
    }

    /// Lifetime packets dropped, summed over all classes (telemetry
    /// sampling works on lifetime totals and differences them itself).
    pub fn total_dropped(&self) -> u64 {
        self.per_class.iter().map(|cs| cs.dropped.total()).sum()
    }

    /// Lifetime bytes transmitted, summed over all classes.
    pub fn total_transmitted_bytes(&self) -> u64 {
        self.per_class
            .iter()
            .map(|cs| cs.transmitted_bytes.total())
            .sum()
    }

    /// Utilization of `class` since the mark against a reference rate:
    /// transmitted bytes / (`rate_bps` × `interval`).
    pub fn utilization(&self, c: TrafficClass, rate_bps: u64, interval: SimDuration) -> f64 {
        let secs = interval.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        let bits = self.class(c).transmitted_bytes.since_mark() as f64 * 8.0;
        bits / (rate_bps as f64 * secs)
    }
}

/// A unidirectional link.
///
/// Owns its queueing discipline and (optionally) a [`VirtualQueue`] ECN
/// marker that every arriving admission-controlled packet passes through
/// before the real queue (§3.1).
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Transmission rate, bits/second.
    pub bandwidth_bps: u64,
    /// Propagation delay.
    pub prop_delay: SimDuration,
    qdisc: Box<dyn Qdisc>,
    marker: Option<VirtualQueue>,
    /// Reused eviction scratch: cleared and refilled by every enqueue so
    /// the per-packet hot path never allocates (a push-out free-list).
    evict_buf: Vec<Packet>,
    in_flight: Option<Packet>,
    /// Earliest pending `TryDequeue` wake-up, to avoid duplicate events.
    wakeup_at: Option<SimTime>,
    /// Operational state (fault injection): a down link neither starts
    /// new transmissions nor delivers the one on the wire; queued packets
    /// wait for the link to come back up.
    up: bool,
    /// Per-class counters.
    pub stats: LinkStats,
}

/// What a link wants the driver to do after an operation.
#[derive(Debug, PartialEq, Eq)]
pub enum LinkAction {
    /// Nothing to schedule.
    None,
    /// Schedule a `TxComplete` for this link at the given time.
    TxCompleteAt(SimTime),
    /// Schedule a `TryDequeue` for this link at the given time.
    WakeupAt(SimTime),
}

impl Link {
    /// Build a link; `marker` enables virtual-queue ECN marking.
    pub fn new(
        id: LinkId,
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
        qdisc: Box<dyn Qdisc>,
        marker: Option<VirtualQueue>,
    ) -> Self {
        assert!(bandwidth_bps > 0);
        Link {
            id,
            from,
            to,
            bandwidth_bps,
            prop_delay,
            qdisc,
            marker,
            evict_buf: Vec::new(),
            in_flight: None,
            wakeup_at: None,
            up: true,
            stats: LinkStats::default(),
        }
    }

    /// Offer a packet to the link's queue, updating statistics and (if
    /// tracing is enabled) the trace.
    pub fn receive(&mut self, mut pkt: Packet, now: SimTime, tracer: &mut Option<Tracer>) {
        let class = pkt.class;
        self.stats.class_mut(class).offered.inc();
        self.stats
            .class_mut(class)
            .offered_bytes
            .add(pkt.size as u64);
        if let Some(m) = &mut self.marker {
            let was_marked = pkt.marked;
            m.process(&mut pkt, now);
            if pkt.marked && !was_marked {
                self.stats.class_mut(class).marked.inc();
            }
        }
        let id = self.id;
        let (flow, seq, size) = (pkt.flow.0, pkt.seq, pkt.size);
        if let Some(t) = tracer.as_mut() {
            t.record(now, TraceKind::Enqueue, Some(id), &pkt);
        }
        self.evict_buf.clear();
        let accepted = self.qdisc.enqueue_into(pkt, now, &mut self.evict_buf);
        if !accepted {
            self.stats.class_mut(class).dropped.inc();
            if let Some(t) = tracer.as_mut() {
                t.record_raw(now, TraceKind::Drop, Some(id), flow, class, seq, size);
            }
        }
        for victim in self.evict_buf.drain(..) {
            self.stats.class_mut(victim.class).dropped.inc();
            if let Some(t) = tracer.as_mut() {
                t.record(now, TraceKind::Evict, Some(id), &victim);
            }
        }
    }

    /// If idle, try to start transmitting; report what to schedule.
    pub fn try_start(&mut self, now: SimTime) -> LinkAction {
        if !self.up || self.in_flight.is_some() {
            return LinkAction::None;
        }
        match self.qdisc.dequeue(now) {
            Dequeue::Packet(p) => {
                let tx = SimDuration::transmission(p.size, self.bandwidth_bps);
                self.in_flight = Some(p);
                LinkAction::TxCompleteAt(now + tx)
            }
            Dequeue::NotBefore(t) => {
                // Deduplicate wake-ups: only schedule if nothing earlier or
                // equal is already pending.
                let stale = self.wakeup_at.is_none_or(|w| w <= now || w > t);
                if stale {
                    self.wakeup_at = Some(t);
                    LinkAction::WakeupAt(t)
                } else {
                    LinkAction::None
                }
            }
            Dequeue::Empty => LinkAction::None,
        }
    }

    /// Complete the in-flight transmission; returns the packet (now to be
    /// propagated to `self.to`).
    pub fn tx_complete(&mut self, now: SimTime, tracer: &mut Option<Tracer>) -> Packet {
        let p = self
            .in_flight
            .take()
            .expect("TxComplete on a link with nothing in flight");
        let cs = self.stats.class_mut(p.class);
        cs.transmitted.inc();
        cs.transmitted_bytes.add(p.size as u64);
        if let Some(t) = tracer.as_mut() {
            t.record(now, TraceKind::Transmit, Some(self.id), &p);
        }
        p
    }

    /// Handle a `TryDequeue` wake-up.
    pub fn wakeup(&mut self, now: SimTime) -> LinkAction {
        self.wakeup_at = None;
        self.try_start(now)
    }

    /// Packets currently buffered (excluding any packet on the wire).
    pub fn queue_len(&self) -> usize {
        self.qdisc.len_packets()
    }

    /// Bytes currently buffered.
    pub fn queue_bytes(&self) -> u64 {
        self.qdisc.len_bytes()
    }

    /// Whether the transmitter is busy.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Whether the link is operational (fault injection).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Change the operational state (driven by `LinkDown`/`LinkUp`
    /// events; routing must be recomputed by the caller).
    pub(crate) fn set_up(&mut self, up: bool) {
        self.up = up;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::qdisc::{DropTail, Limit};

    fn link() -> Link {
        Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            10_000_000, // 10 Mbps
            SimDuration::from_millis(20),
            Box::new(DropTail::new(Limit::Packets(2))),
            None,
        )
    }

    fn pkt(id: u64) -> Packet {
        Packet::new(
            id,
            FlowId(0),
            NodeId(0),
            NodeId(1),
            125,
            TrafficClass::Data,
            id,
            SimTime::ZERO,
        )
    }

    #[test]
    fn transmit_cycle() {
        let mut l = link();
        let t0 = SimTime::ZERO;
        l.receive(pkt(0), t0, &mut None);
        match l.try_start(t0) {
            LinkAction::TxCompleteAt(t) => {
                // 125 B at 10 Mbps = 100 us.
                assert_eq!(t, t0 + SimDuration::from_micros(100));
                assert!(l.is_busy());
                let p = l.tx_complete(t, &mut None);
                assert_eq!(p.id, 0);
                assert!(!l.is_busy());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stats.class(TrafficClass::Data).transmitted.total(), 1);
    }

    #[test]
    fn busy_link_does_not_restart() {
        let mut l = link();
        l.receive(pkt(0), SimTime::ZERO, &mut None);
        l.receive(pkt(1), SimTime::ZERO, &mut None);
        assert!(matches!(
            l.try_start(SimTime::ZERO),
            LinkAction::TxCompleteAt(_)
        ));
        assert_eq!(l.try_start(SimTime::ZERO), LinkAction::None);
    }

    #[test]
    fn overflow_counts_drops() {
        let mut l = link();
        for i in 0..5 {
            l.receive(pkt(i), SimTime::ZERO, &mut None);
        }
        assert_eq!(l.stats.class(TrafficClass::Data).offered.total(), 5);
        assert_eq!(l.stats.class(TrafficClass::Data).dropped.total(), 3);
        assert!((l.stats.drop_fraction(TrafficClass::Data) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn marker_marks_and_counts() {
        let mut l = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            10_000_000,
            SimDuration::ZERO,
            Box::new(DropTail::new(Limit::Packets(1000))),
            Some(VirtualQueue::new(10_000_000, 0.9, 2.0 * 125.0)),
        );
        // Burst enough packets at one instant to overwhelm the tiny VQ.
        for i in 0..10 {
            l.receive(pkt(i), SimTime::ZERO, &mut None);
        }
        assert!(l.stats.class(TrafficClass::Data).marked.total() >= 8);
        // Marked packets are still queued (marking, not dropping).
        assert_eq!(l.queue_len(), 10);
    }

    #[test]
    fn utilization_math() {
        let mut l = link();
        let t0 = SimTime::ZERO;
        l.receive(pkt(0), t0, &mut None);
        if let LinkAction::TxCompleteAt(t) = l.try_start(t0) {
            l.tx_complete(t, &mut None);
        }
        // 125 bytes over 1 second at 10 Mbps reference = 1e3 bits / 1e7.
        let u = l
            .stats
            .utilization(TrafficClass::Data, 10_000_000, SimDuration::from_secs(1));
        assert!((u - 0.0001).abs() < 1e-9);
    }

    #[test]
    fn warmup_marking_resets_ratios() {
        let mut l = link();
        for i in 0..5 {
            l.receive(pkt(i), SimTime::ZERO, &mut None);
        }
        l.stats.mark_all();
        assert_eq!(l.stats.drop_fraction(TrafficClass::Data), 0.0);
    }
}
