//! Topology and routing.
//!
//! A [`Network`] is a set of nodes connected by unidirectional [`Link`]s
//! with static minimum-hop routing (BFS per destination). Routes are
//! computed lazily and cached; adding a link invalidates the cache.

use crate::audit::AuditCounters;
use crate::fault::{FaultPlan, FaultState, FaultStats, WireFate};
use crate::link::{Link, LinkAction};
use crate::packet::{LinkId, NodeId, Packet, TrafficClass};
use crate::qdisc::{Qdisc, VirtualQueue};
use crate::sim::Event;
use crate::trace::TraceKind;
use simcore::{EventQueue, QueueSnapshot, SimDuration, SimRng, SimTime};
use std::collections::VecDeque;
use telemetry::Telemetry;

/// Per-link lifetime-counter snapshot from the previous sample tick, so
/// the sampler can emit per-interval rates from monotone totals.
#[derive(Clone, Copy, Default)]
struct LinkPrev {
    tx_bytes: u64,
    data_dropped: u64,
    data_offered: u64,
    probe_dropped: u64,
    probe_offered: u64,
}

/// The network: nodes, links, routes.
pub struct Network {
    num_nodes: usize,
    links: Vec<Link>,
    /// `next_hop[src][dst]` = link to take; `None` if unreachable.
    next_hop: Vec<Vec<Option<LinkId>>>,
    routes_dirty: bool,
    /// Packets delivered to a node with no agent expecting them.
    pub orphan_packets: u64,
    /// Optional packet-event tracer (see [`crate::trace`]).
    pub tracer: Option<crate::trace::Tracer>,
    /// Optional telemetry hub (metrics + sampler + flight recorder). Like
    /// the tracer, `None` is the fast path: every instrumented touch point
    /// is behind one `Option` check.
    pub telemetry: Option<Box<Telemetry>>,
    /// Per-link counter snapshots at the previous sample tick.
    tele_prev: Vec<LinkPrev>,
    /// Gauge column layout, frozen at the first sample.
    tele_gauges: Vec<String>,
    /// Packet-conservation counters (see [`crate::audit`]).
    pub audit: AuditCounters,
    /// Installed fault state, if any (see [`crate::fault`]).
    pub(crate) faults: Option<FaultState>,
    /// Shared state reachable from every agent through [`crate::Api`]
    /// (e.g. a router-based admission-control registry). Agents `take()`
    /// it, use it, and put it back — the run loop is single-threaded so
    /// this is race-free.
    pub blackboard: Option<Box<dyn std::any::Any + Send>>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network {
            num_nodes: 0,
            links: Vec::new(),
            next_hop: Vec::new(),
            routes_dirty: false,
            orphan_packets: 0,
            blackboard: None,
            tracer: None,
            telemetry: None,
            tele_prev: Vec::new(),
            tele_gauges: Vec::new(),
            audit: AuditCounters::default(),
            faults: None,
        }
    }

    /// Install a fault plan with its dedicated RNG stream. Prefer
    /// `Sim::install_faults`, which also schedules the plan's flap events.
    pub fn install_faults(&mut self, plan: FaultPlan, rng: SimRng) {
        self.faults = Some(FaultState::new(plan, rng));
    }

    /// Fault counters, if a plan is installed.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| &f.stats)
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes as u32);
        self.num_nodes += 1;
        self.routes_dirty = true;
        id
    }

    /// Add `n` nodes, returning their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Add a unidirectional link.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
        qdisc: Box<dyn Qdisc>,
        marker: Option<VirtualQueue>,
    ) -> LinkId {
        assert!((from.0 as usize) < self.num_nodes && (to.0 as usize) < self.num_nodes);
        assert_ne!(from, to, "self-loop link");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(
            id,
            from,
            to,
            bandwidth_bps,
            prop_delay,
            qdisc,
            marker,
        ));
        self.routes_dirty = true;
        id
    }

    /// Borrow a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Mutably borrow a link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// All links (for stats sweeps).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Mutable access to all links (warm-up resets).
    pub fn links_mut(&mut self) -> &mut [Link] {
        &mut self.links
    }

    /// Recompute minimum-hop routes (BFS from every node over out-links).
    pub fn compute_routes(&mut self) {
        let n = self.num_nodes;
        // For each destination, BFS on the reversed graph to get next hops.
        let mut rev: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        for l in &self.links {
            rev[l.to.0 as usize].push(l.id);
        }
        self.next_hop = vec![vec![None; n]; n];
        for dst in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut q = VecDeque::new();
            q.push_back(dst);
            while let Some(v) = q.pop_front() {
                for &lid in &rev[v] {
                    let link = &self.links[lid.0 as usize];
                    if !link.is_up() {
                        continue; // down links carry no routes
                    }
                    let u = link.from.0 as usize;
                    if dist[u] == usize::MAX {
                        dist[u] = dist[v] + 1;
                        self.next_hop[u][dst] = Some(lid);
                        q.push_back(u);
                    }
                }
            }
        }
        self.routes_dirty = false;
    }

    /// The next-hop link from `at` toward `dst` (None if unreachable).
    /// Requires routes to be computed.
    pub fn route(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        assert!(
            !self.routes_dirty,
            "routes are stale; call compute_routes()"
        );
        self.next_hop[at.0 as usize][dst.0 as usize]
    }

    /// Hop count from `at` to `dst` (None if unreachable), following routes.
    pub fn hops(&self, at: NodeId, dst: NodeId) -> Option<usize> {
        let mut here = at;
        let mut hops = 0;
        while here != dst {
            let lid = self.route(here, dst)?;
            here = self.link(lid).to;
            hops += 1;
            assert!(hops <= self.num_nodes, "routing loop");
        }
        Some(hops)
    }

    fn apply(&mut self, lid: LinkId, action: LinkAction, q: &mut EventQueue<Event>) {
        match action {
            LinkAction::None => {}
            LinkAction::TxCompleteAt(t) => q.schedule_at(t, Event::TxComplete { link: lid }),
            LinkAction::WakeupAt(t) => q.schedule_at(t, Event::TryDequeue { link: lid }),
        }
    }

    /// Inject `pkt` at `node`: route it onto the next-hop link (or deliver
    /// immediately if already at the destination). A destination with no
    /// route — possible when fault flaps partition the topology — is a
    /// counted drop ([`AuditCounters::no_route_drops`]), not a panic.
    pub fn inject(&mut self, pkt: Packet, node: NodeId, q: &mut EventQueue<Event>) {
        if node == pkt.dst {
            self.audit.in_transit += 1;
            q.schedule_in(SimDuration::ZERO, Event::Deliver { node, packet: pkt });
            return;
        }
        if self.routes_dirty {
            self.compute_routes();
        }
        let Some(lid) = self.route(node, pkt.dst) else {
            self.audit.no_route_drops += 1;
            if let Some(t) = self.tracer.as_mut() {
                t.record(q.now(), TraceKind::Drop, None, &pkt);
            }
            if let Some(tel) = self.telemetry.as_deref_mut() {
                tel.metrics.inc("net.drops.no_route", 1);
                tel.recorder.record(
                    q.now(),
                    "drop.no_route",
                    format!("flow {} stranded at n{}", pkt.flow.0, node.0),
                );
            }
            return;
        };
        let now = q.now();
        let tel_on = self.telemetry.is_some();
        let (flow, class) = (pkt.flow.0, pkt.class);
        let link = &mut self.links[lid.0 as usize];
        let drops_before = if tel_on {
            link.stats.total_dropped()
        } else {
            0
        };
        link.receive(pkt, now, &mut self.tracer);
        let action = link.try_start(now);
        if tel_on {
            let dropped = link.stats.total_dropped() - drops_before;
            if dropped > 0 {
                let tel = self.telemetry.as_deref_mut().expect("telemetry on");
                tel.metrics.inc("net.drops.queue", dropped);
                tel.recorder.record(
                    now,
                    "drop.queue",
                    format!("l{} flow {flow} class {class:?}", lid.0),
                );
            }
        }
        self.apply(lid, action, q);
    }

    /// Handle a `TxComplete` event: propagate the packet and restart the
    /// link. This is where installed wire faults act: a packet finishing
    /// serialisation on a down link is lost, and matching impairments may
    /// lose, duplicate, or jitter-delay the delivery.
    pub fn tx_complete(&mut self, lid: LinkId, q: &mut EventQueue<Event>) {
        let now = q.now();
        let link = &mut self.links[lid.0 as usize];
        let pkt = link.tx_complete(now, &mut self.tracer);
        let to = link.to;
        let delay = link.prop_delay;
        if !link.is_up() {
            if let Some(f) = self.faults.as_mut() {
                f.stats.down_drops += 1;
            }
            if let Some(t) = self.tracer.as_mut() {
                t.record(now, TraceKind::Drop, Some(lid), &pkt);
            }
            if let Some(tel) = self.telemetry.as_deref_mut() {
                tel.metrics.inc("net.drops.down_link", 1);
                tel.recorder.record(
                    now,
                    "drop.down_link",
                    format!("l{} flow {} class {:?}", lid.0, pkt.flow.0, pkt.class),
                );
            }
            return; // a down link never restarts; LinkUp will kick it
        }
        let fate = match self.faults.as_mut() {
            Some(f) => f.judge(lid, pkt.class),
            None => WireFate::Deliver {
                extra: SimDuration::ZERO,
                dup_extra: None,
            },
        };
        match fate {
            WireFate::Lost => {
                if let Some(t) = self.tracer.as_mut() {
                    t.record(now, TraceKind::Drop, Some(lid), &pkt);
                }
                if let Some(tel) = self.telemetry.as_deref_mut() {
                    tel.metrics.inc("net.drops.wire", 1);
                    tel.recorder.record(
                        now,
                        "drop.wire",
                        format!("l{} flow {} class {:?}", lid.0, pkt.flow.0, pkt.class),
                    );
                }
            }
            WireFate::Deliver { extra, dup_extra } => {
                if let Some(dup) = dup_extra {
                    self.audit.in_transit += 1;
                    q.schedule_in(
                        delay + dup,
                        Event::Deliver {
                            node: to,
                            packet: pkt.clone(),
                        },
                    );
                }
                self.audit.in_transit += 1;
                q.schedule_in(
                    delay + extra,
                    Event::Deliver {
                        node: to,
                        packet: pkt,
                    },
                );
            }
        }
        let action = link.try_start(now);
        self.apply(lid, action, q);
    }

    /// Flip a link's operational state (fault flaps). Going down removes
    /// the link from routing; coming up restores it and kicks the
    /// transmitter so queued packets resume.
    pub fn set_link_up(&mut self, lid: LinkId, up: bool, q: &mut EventQueue<Event>) {
        let link = &mut self.links[lid.0 as usize];
        if link.is_up() == up {
            return;
        }
        link.set_up(up);
        self.routes_dirty = true;
        if let Some(tel) = self.telemetry.as_deref_mut() {
            let kind = if up { "link.up" } else { "link.down" };
            tel.metrics.inc(kind, 1);
            tel.recorder.record(q.now(), kind, format!("l{}", lid.0));
        }
        if up {
            q.schedule_in(SimDuration::ZERO, Event::TryDequeue { link: lid });
        }
    }

    /// Handle a `TryDequeue` wake-up on a rate-limited link.
    pub fn try_dequeue(&mut self, lid: LinkId, q: &mut EventQueue<Event>) {
        let now = q.now();
        let action = self.links[lid.0 as usize].wakeup(now);
        self.apply(lid, action, q);
    }

    /// Drive the telemetry sampler: emit one row per tick boundary at or
    /// before `t` (the timestamp of the event about to be dispatched),
    /// reading per-link queue depth, utilization and per-class drop rates
    /// plus every registered gauge. The column layout freezes at the
    /// first sample; gauges registered later are not sampled (agents
    /// initialize theirs in `on_start`, which precedes every event).
    pub fn sample_telemetry(&mut self, t: SimTime, snap: QueueSnapshot) {
        let Some(tel) = self.telemetry.as_deref() else {
            return;
        };
        if !tel.sampler.due(t) {
            return;
        }
        // Take the hub out so link iteration and sampler writes do not
        // fight over `&mut self`.
        let mut tel = self.telemetry.take().expect("telemetry just observed");
        if !tel.sampler.series.has_columns() {
            let mut cols = vec!["events_fired".to_string(), "events_pending".to_string()];
            for l in &self.links {
                let i = l.id.0;
                cols.push(format!("l{i}.queue_pkts"));
                cols.push(format!("l{i}.queue_bytes"));
                cols.push(format!("l{i}.util"));
                cols.push(format!("l{i}.drop_data"));
                cols.push(format!("l{i}.drop_probe"));
            }
            self.tele_gauges = tel.metrics.gauge_names();
            cols.extend(self.tele_gauges.iter().cloned());
            tel.sampler.series.set_columns(cols);
            self.tele_prev = vec![LinkPrev::default(); self.links.len()];
        }
        let period_s = tel.sampler.period().as_secs_f64();
        let rate = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                part as f64 / whole as f64
            }
        };
        while tel.sampler.due(t) {
            let at = tel.sampler.tick();
            let mut row = Vec::with_capacity(2 + 5 * self.links.len() + self.tele_gauges.len());
            row.push(snap.fired as f64);
            row.push(snap.pending as f64);
            for (l, prev) in self.links.iter().zip(self.tele_prev.iter_mut()) {
                let data = l.stats.class(TrafficClass::Data);
                let probe = l.stats.class(TrafficClass::Probe);
                let cur = LinkPrev {
                    tx_bytes: l.stats.total_transmitted_bytes(),
                    data_dropped: data.dropped.total(),
                    data_offered: data.offered.total(),
                    probe_dropped: probe.dropped.total(),
                    probe_offered: probe.offered.total(),
                };
                row.push(l.queue_len() as f64);
                row.push(l.queue_bytes() as f64);
                row.push(
                    (cur.tx_bytes - prev.tx_bytes) as f64 * 8.0
                        / (l.bandwidth_bps as f64 * period_s),
                );
                row.push(rate(
                    cur.data_dropped - prev.data_dropped,
                    cur.data_offered - prev.data_offered,
                ));
                row.push(rate(
                    cur.probe_dropped - prev.probe_dropped,
                    cur.probe_offered - prev.probe_offered,
                ));
                *prev = cur;
            }
            for g in &self.tele_gauges {
                row.push(tel.metrics.gauge(g));
            }
            tel.sampler.series.push_row(at.as_nanos(), &row);
        }
        self.telemetry = Some(tel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, TrafficClass};
    use crate::qdisc::{DropTail, Limit};
    use simcore::SimTime;

    fn dt() -> Box<dyn Qdisc> {
        Box::new(DropTail::new(Limit::Packets(100)))
    }

    fn line3() -> Network {
        // n0 -> n1 -> n2 and back
        let mut net = Network::new();
        let ns = net.add_nodes(3);
        for w in ns.windows(2) {
            net.add_link(
                w[0],
                w[1],
                1_000_000,
                SimDuration::from_millis(1),
                dt(),
                None,
            );
            net.add_link(
                w[1],
                w[0],
                1_000_000,
                SimDuration::from_millis(1),
                dt(),
                None,
            );
        }
        net.compute_routes();
        net
    }

    #[test]
    fn routes_follow_min_hops() {
        let net = line3();
        assert_eq!(net.hops(NodeId(0), NodeId(2)), Some(2));
        assert_eq!(net.hops(NodeId(2), NodeId(0)), Some(2));
        assert_eq!(net.hops(NodeId(1), NodeId(1)), Some(0));
        let l = net.route(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(net.link(l).to, NodeId(1));
    }

    #[test]
    fn unreachable_is_none() {
        let mut net = Network::new();
        net.add_nodes(2);
        net.compute_routes();
        assert_eq!(net.route(NodeId(0), NodeId(1)), None);
        assert_eq!(net.hops(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn packet_crosses_two_hops() {
        let mut net = line3();
        let mut q: EventQueue<Event> = EventQueue::new();
        let pkt = Packet::new(
            0,
            FlowId(1),
            NodeId(0),
            NodeId(2),
            125,
            TrafficClass::Data,
            0,
            SimTime::ZERO,
        );
        net.inject(pkt, NodeId(0), &mut q);
        // Drive events until the Deliver at n2 appears.
        let mut delivered_at = None;
        while let Some((t, ev)) = q.pop() {
            match ev {
                Event::TxComplete { link } => net.tx_complete(link, &mut q),
                Event::TryDequeue { link } => net.try_dequeue(link, &mut q),
                Event::Deliver { node, packet } => {
                    if node == packet.dst {
                        delivered_at = Some(t);
                    } else {
                        net.inject(packet, node, &mut q);
                    }
                }
                Event::Timer { .. } | Event::LinkDown { .. } | Event::LinkUp { .. } => {
                    unreachable!()
                }
            }
        }
        // Two transmissions (1 ms each for 125 B at 1 Mbps) + two props (1 ms).
        let expected = SimTime::from_secs_f64(0.001 + 0.001 + 0.001 + 0.001);
        assert_eq!(delivered_at, Some(expected));
        assert_eq!(
            net.link(LinkId(0))
                .stats
                .class(TrafficClass::Data)
                .transmitted
                .total(),
            1
        );
        assert_eq!(
            net.link(LinkId(2))
                .stats
                .class(TrafficClass::Data)
                .transmitted
                .total(),
            1
        );
    }

    #[test]
    fn inject_at_destination_delivers_locally() {
        let mut net = line3();
        let mut q: EventQueue<Event> = EventQueue::new();
        let pkt = Packet::new(
            0,
            FlowId(1),
            NodeId(1),
            NodeId(1),
            1,
            TrafficClass::Control,
            0,
            SimTime::ZERO,
        );
        net.inject(pkt, NodeId(1), &mut q);
        match q.pop() {
            Some((_, Event::Deliver { node, packet })) => {
                assert_eq!(node, NodeId(1));
                assert_eq!(packet.dst, NodeId(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
