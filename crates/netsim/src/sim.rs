//! The simulation driver: events, agents, and the run loop.
//!
//! Endpoints (traffic sources, probing hosts, sinks, TCP stacks, meters)
//! are [`Agent`]s attached to nodes, in the style of ns-2. The driver pops
//! events from the calendar and dispatches:
//!
//! - link events to the [`Network`];
//! - packet deliveries to the destination node's agent (packets arriving at
//!   intermediate nodes are forwarded automatically, so routers need no
//!   agent);
//! - timers to the owning node's agent.

use crate::audit::AuditError;
use crate::fault::FaultPlan;
use crate::packet::{LinkId, NodeId, Packet};
use crate::topo::Network;
use simcore::{EventQueue, SimDuration, SimRng, SimTime};
use std::any::Any;

/// Simulation events.
#[derive(Debug)]
pub enum Event {
    /// A link finished serialising its in-flight packet.
    TxComplete { link: LinkId },
    /// A rate-limited link should retry dequeueing.
    TryDequeue { link: LinkId },
    /// A packet arrives at `node` after propagation.
    Deliver { node: NodeId, packet: Packet },
    /// An agent timer fires. `kind` and `data` are agent-defined.
    Timer { node: NodeId, kind: u32, data: u64 },
    /// A scheduled fault takes the link down.
    LinkDown { link: LinkId },
    /// A scheduled fault brings the link back up.
    LinkUp { link: LinkId },
}

/// Why a run stopped before reaching its horizon.
#[derive(Clone, Debug)]
pub enum RunError {
    /// The event budget was exhausted — an event storm (e.g. a retry loop
    /// with zero back-off) is spinning the calendar.
    EventBudgetExceeded {
        /// The configured budget.
        budget: u64,
        /// Simulation time when the budget ran out.
        at: SimTime,
    },
    /// The calendar handed out an event earlier than one already
    /// processed; simulation time must be monotone.
    TimeRegression {
        /// Time of the previously processed event.
        from: SimTime,
        /// Time of the offending event.
        to: SimTime,
    },
    /// An agent or link scheduled an event behind the clock. Only
    /// reported when lenient scheduling is armed
    /// ([`Sim::set_lenient_scheduling`], implied by
    /// [`Sim::set_event_budget`]); otherwise the calendar panics at the
    /// offending call site.
    ScheduledIntoPast {
        /// The requested (past) timestamp.
        at: SimTime,
        /// The clock when the schedule was requested.
        now: SimTime,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::EventBudgetExceeded { budget, at } => {
                write!(f, "event budget of {budget} exhausted at {at}")
            }
            RunError::TimeRegression { from, to } => {
                write!(f, "event time went backwards: {from} -> {to}")
            }
            RunError::ScheduledIntoPast { at, now } => {
                write!(f, "event scheduled into the past: {at} < now {now}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// The toolbox handed to an agent callback.
///
/// Through it the agent reads the clock, sends packets (which enter the
/// network at the agent's node), arms timers, and can reach the network
/// for measurement (e.g. MBAC load meters reading link stats).
pub struct Api<'a> {
    /// The node this agent sits on.
    pub node: NodeId,
    /// The network (routing, links, stats).
    pub net: &'a mut Network,
    queue: &'a mut EventQueue<Event>,
}

impl<'a> Api<'a> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Send a packet into the network from this node.
    #[inline]
    pub fn send(&mut self, pkt: Packet) {
        self.net.audit.injected += 1;
        self.net.inject(pkt, self.node, self.queue);
    }

    /// Arm a timer for this node at absolute time `at`.
    pub fn timer_at(&mut self, at: SimTime, kind: u32, data: u64) {
        let node = self.node;
        self.queue
            .schedule_at(at, Event::Timer { node, kind, data });
    }

    /// Arm a timer `delay` from now.
    pub fn timer_in(&mut self, delay: SimDuration, kind: u32, data: u64) {
        self.timer_at(self.now() + delay, kind, data);
    }
}

/// A node-resident endpoint.
///
/// `as_any` enables downcasting after a run to pull results out of concrete
/// agent types (`Sim::agent`), and must be implemented as `self`.
pub trait Agent: Send {
    /// Called once when the simulation starts (arm initial timers here).
    fn on_start(&mut self, _api: &mut Api) {}

    /// A packet addressed to this node arrived.
    fn on_packet(&mut self, pkt: Packet, api: &mut Api);

    /// A timer armed by this agent fired.
    fn on_timer(&mut self, _kind: u32, _data: u64, _api: &mut Api) {}

    /// Downcast support: `fn as_any(&mut self) -> &mut dyn Any { self }`.
    fn as_any(&mut self) -> &mut dyn Any;
}

/// A complete simulation: network + agents + event calendar.
pub struct Sim {
    /// The network substrate.
    pub net: Network,
    /// The event calendar.
    pub queue: EventQueue<Event>,
    agents: Vec<Option<Box<dyn Agent>>>,
    started: bool,
    /// Cap on total events processed (watchdog; `None` = unlimited).
    event_budget: Option<u64>,
    /// Time of the most recently processed event (monotonicity audit).
    last_event_time: SimTime,
}

impl Sim {
    /// Wrap a built network. Routes are computed here if still dirty.
    pub fn new(mut net: Network) -> Self {
        net.compute_routes();
        let n = net.num_nodes();
        Sim {
            net,
            queue: EventQueue::new(),
            agents: (0..n).map(|_| None).collect(),
            started: false,
            event_budget: None,
            last_event_time: SimTime::ZERO,
        }
    }

    /// Attach an agent to a node (replacing any previous one).
    pub fn attach(&mut self, node: NodeId, agent: Box<dyn Agent>) {
        self.agents[node.0 as usize] = Some(agent);
    }

    /// Install a fault plan: schedule its link flaps on the calendar and
    /// hand the impairments (with their dedicated RNG stream) to the
    /// network. Call before running; identical seed + plan reproduce a
    /// bit-identical run.
    pub fn install_faults(&mut self, plan: FaultPlan, rng: SimRng) {
        for f in &plan.flaps {
            self.queue
                .schedule_at(f.down_at, Event::LinkDown { link: f.link });
            self.queue
                .schedule_at(f.up_at, Event::LinkUp { link: f.link });
        }
        self.net.install_faults(plan, rng);
    }

    /// Bound the total number of events this simulation may process.
    /// [`try_run_until`](Sim::try_run_until) returns
    /// [`RunError::EventBudgetExceeded`] instead of spinning forever when
    /// an event storm (e.g. a zero-delay retry loop) hits the cap.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = Some(budget);
        // A budgeted run is a watchdog-carrying run: scheduling bugs
        // should surface as counted errors, not process aborts.
        self.set_lenient_scheduling(true);
    }

    /// In lenient mode a schedule-into-the-past is reported from
    /// [`try_run_until`](Sim::try_run_until) as
    /// [`RunError::ScheduledIntoPast`] instead of panicking inside the
    /// offending agent callback — so in a pooled sweep one bad schedule is
    /// a counted seed failure, not a pool-wide abort.
    pub fn set_lenient_scheduling(&mut self, lenient: bool) {
        self.queue.set_lenient(lenient);
    }

    /// Check packet conservation right now (see [`crate::audit`]).
    pub fn check_conservation(&self) -> Result<(), AuditError> {
        crate::audit::check_conservation(&self.net)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Borrow an attached agent as its concrete type.
    pub fn agent<T: 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.agents[node.0 as usize]
            .as_mut()?
            .as_any()
            .downcast_mut::<T>()
    }

    fn dispatch_start(&mut self) {
        for i in 0..self.agents.len() {
            if let Some(mut agent) = self.agents[i].take() {
                let mut api = Api {
                    node: NodeId(i as u32),
                    net: &mut self.net,
                    queue: &mut self.queue,
                };
                agent.on_start(&mut api);
                self.agents[i] = Some(agent);
            }
        }
        self.started = true;
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::TxComplete { link } => self.net.tx_complete(link, &mut self.queue),
            Event::TryDequeue { link } => self.net.try_dequeue(link, &mut self.queue),
            Event::Deliver { node, packet } => {
                self.net.audit.in_transit -= 1;
                if node != packet.dst {
                    // Transit node: forward.
                    self.net.inject(packet, node, &mut self.queue);
                    return;
                }
                self.net.audit.delivered += 1;
                if let Some(t) = self.net.tracer.as_mut() {
                    t.record(
                        self.queue.now(),
                        crate::trace::TraceKind::Deliver,
                        None,
                        &packet,
                    );
                }
                let idx = node.0 as usize;
                match self.agents[idx].take() {
                    Some(mut agent) => {
                        let mut api = Api {
                            node,
                            net: &mut self.net,
                            queue: &mut self.queue,
                        };
                        agent.on_packet(packet, &mut api);
                        self.agents[idx] = Some(agent);
                    }
                    None => self.net.orphan_packets += 1,
                }
            }
            Event::Timer { node, kind, data } => {
                let idx = node.0 as usize;
                // A timer for an agent-less node is counted and ignored,
                // not fatal: fault injection can legitimately orphan
                // timers (e.g. an agent torn down while its timer rode
                // the calendar).
                let Some(mut agent) = self.agents[idx].take() else {
                    self.net.audit.stray_timers += 1;
                    return;
                };
                let mut api = Api {
                    node,
                    net: &mut self.net,
                    queue: &mut self.queue,
                };
                agent.on_timer(kind, data, &mut api);
                self.agents[idx] = Some(agent);
            }
            Event::LinkDown { link } => self.net.set_link_up(link, false, &mut self.queue),
            Event::LinkUp { link } => self.net.set_link_up(link, true, &mut self.queue),
        }
    }

    /// Run until the calendar is empty or the next event is after `until`.
    /// Events exactly at `until` are processed. Returns an error instead
    /// of looping forever when the opt-in event budget is exhausted
    /// ([`Sim::set_event_budget`]), or if event time ever regresses.
    pub fn try_run_until(&mut self, until: SimTime) -> Result<(), RunError> {
        if !self.started {
            self.dispatch_start();
            self.check_schedule_violation()
                .map_err(|e| self.note_run_error(e))?;
        }
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            if let Some(budget) = self.event_budget {
                if self.queue.events_fired() >= budget {
                    return Err(self.note_run_error(RunError::EventBudgetExceeded {
                        budget,
                        at: self.queue.now(),
                    }));
                }
            }
            if t < self.last_event_time {
                return Err(self.note_run_error(RunError::TimeRegression {
                    from: self.last_event_time,
                    to: t,
                }));
            }
            self.last_event_time = t;
            // Telemetry sampling rides the event clock: one cheap Option
            // check per event when disabled, sample rows stamped at exact
            // tick boundaries when enabled.
            if self.net.telemetry.is_some() {
                let snap = self.queue.snapshot();
                self.net.sample_telemetry(t, snap);
            }
            let (_, ev) = self.queue.pop().expect("peeked");
            self.handle(ev);
            self.check_schedule_violation()
                .map_err(|e| self.note_run_error(e))?;
        }
        Ok(())
    }

    /// Surface a lenient-mode scheduling violation as a [`RunError`].
    #[inline]
    fn check_schedule_violation(&mut self) -> Result<(), RunError> {
        match self.queue.take_violation() {
            Some(v) => Err(RunError::ScheduledIntoPast {
                at: v.at,
                now: v.now,
            }),
            None => Ok(()),
        }
    }

    /// Stamp a fatal run error into the flight recorder (if telemetry is
    /// installed) so the dump carries its own cause of death.
    fn note_run_error(&self, e: RunError) -> RunError {
        if let Some(tel) = self.net.telemetry.as_deref() {
            tel.recorder
                .record(self.queue.now(), "run.error", e.to_string());
        }
        e
    }

    /// Run until the calendar is empty or the next event is after `until`.
    /// Panics if the event budget runs out — use
    /// [`try_run_until`](Sim::try_run_until) where a graceful error is
    /// wanted. Without a budget installed this never panics.
    pub fn run_until(&mut self, until: SimTime) {
        if let Err(e) = self.try_run_until(until) {
            panic!("{e}");
        }
    }

    /// Run until no events remain.
    pub fn run_to_completion(&mut self) {
        self.run_until(SimTime::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, TrafficClass};
    use crate::qdisc::{DropTail, Limit, Qdisc};
    use std::any::Any;

    /// Sends `n` packets, one per ms, to a peer.
    struct Blaster {
        peer: NodeId,
        n: u64,
        sent: u64,
    }
    impl Agent for Blaster {
        fn on_start(&mut self, api: &mut Api) {
            api.timer_in(SimDuration::ZERO, 0, 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _api: &mut Api) {}
        fn on_timer(&mut self, _k: u32, _d: u64, api: &mut Api) {
            if self.sent < self.n {
                let pkt = Packet::new(
                    self.sent,
                    FlowId(1),
                    api.node,
                    self.peer,
                    125,
                    TrafficClass::Data,
                    self.sent,
                    api.now(),
                );
                api.send(pkt);
                self.sent += 1;
                api.timer_in(SimDuration::from_millis(1), 0, 0);
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts received packets and checks sequence order.
    struct Sink {
        received: u64,
        last_seq: Option<u64>,
        in_order: bool,
    }
    impl Agent for Sink {
        fn on_packet(&mut self, pkt: Packet, _api: &mut Api) {
            if let Some(last) = self.last_seq {
                if pkt.seq <= last {
                    self.in_order = false;
                }
            }
            self.last_seq = Some(pkt.seq);
            self.received += 1;
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn dt() -> Box<dyn Qdisc> {
        Box::new(DropTail::new(Limit::Packets(1000)))
    }

    #[test]
    fn end_to_end_delivery() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_link(a, b, 10_000_000, SimDuration::from_millis(20), dt(), None);
        let mut sim = Sim::new(net);
        sim.attach(
            a,
            Box::new(Blaster {
                peer: b,
                n: 100,
                sent: 0,
            }),
        );
        sim.attach(
            b,
            Box::new(Sink {
                received: 0,
                last_seq: None,
                in_order: true,
            }),
        );
        sim.run_to_completion();
        let sink = sim.agent::<Sink>(b).unwrap();
        assert_eq!(sink.received, 100);
        assert!(sink.in_order);
        assert_eq!(sim.net.orphan_packets, 0);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_link(a, b, 10_000_000, SimDuration::ZERO, dt(), None);
        let mut sim = Sim::new(net);
        sim.attach(
            a,
            Box::new(Blaster {
                peer: b,
                n: 1000,
                sent: 0,
            }),
        );
        sim.attach(
            b,
            Box::new(Sink {
                received: 0,
                last_seq: None,
                in_order: true,
            }),
        );
        // 1000 packets at 1/ms take ~1 s; stop after 100 ms.
        sim.run_until(SimTime::from_secs_f64(0.1));
        let got = sim.agent::<Sink>(b).unwrap().received;
        assert!((99..=102).contains(&got), "got {got}");
    }

    #[test]
    fn orphan_packets_counted() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_link(a, b, 10_000_000, SimDuration::ZERO, dt(), None);
        let mut sim = Sim::new(net);
        sim.attach(
            a,
            Box::new(Blaster {
                peer: b,
                n: 5,
                sent: 0,
            }),
        );
        // No agent at b.
        sim.run_to_completion();
        assert_eq!(sim.net.orphan_packets, 5);
    }

    /// Arms a timer behind the clock after `trigger` fires.
    struct PastScheduler;
    impl Agent for PastScheduler {
        fn on_start(&mut self, api: &mut Api) {
            api.timer_in(SimDuration::from_millis(2), 0, 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _api: &mut Api) {}
        fn on_timer(&mut self, _k: u32, _d: u64, api: &mut Api) {
            // 1 ms, behind the 2 ms clock.
            api.timer_at(SimTime::from_nanos(1_000_000), 0, 0);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn lenient_past_schedule_is_run_error() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_link(a, b, 10_000_000, SimDuration::ZERO, dt(), None);
        let mut sim = Sim::new(net);
        sim.attach(a, Box::new(PastScheduler));
        sim.set_event_budget(1_000); // arms lenient scheduling too
        let err = sim.try_run_until(SimTime::from_secs(1)).unwrap_err();
        assert!(
            matches!(err, RunError::ScheduledIntoPast { .. }),
            "got {err}"
        );
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn strict_past_schedule_still_panics() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_link(a, b, 10_000_000, SimDuration::ZERO, dt(), None);
        let mut sim = Sim::new(net);
        sim.attach(a, Box::new(PastScheduler));
        sim.run_to_completion();
    }

    #[test]
    fn deterministic_event_counts() {
        let run = || {
            let mut net = Network::new();
            let a = net.add_node();
            let b = net.add_node();
            net.add_link(a, b, 1_000_000, SimDuration::from_millis(5), dt(), None);
            let mut sim = Sim::new(net);
            sim.attach(
                a,
                Box::new(Blaster {
                    peer: b,
                    n: 500,
                    sent: 0,
                }),
            );
            sim.attach(
                b,
                Box::new(Sink {
                    received: 0,
                    last_seq: None,
                    in_order: true,
                }),
            );
            sim.run_to_completion();
            (sim.queue.events_fired(), sim.now())
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::packet::{FlowId, TrafficClass};
    use crate::qdisc::{DropTail, Limit};
    use crate::trace::{TraceKind, Tracer};
    use std::any::Any;

    struct OneShot {
        peer: NodeId,
    }
    impl Agent for OneShot {
        fn on_start(&mut self, api: &mut Api) {
            api.timer_in(SimDuration::ZERO, 0, 0);
        }
        fn on_packet(&mut self, _p: Packet, _api: &mut Api) {}
        fn on_timer(&mut self, _k: u32, _d: u64, api: &mut Api) {
            let p = Packet::new(
                0,
                FlowId(5),
                api.node,
                self.peer,
                125,
                TrafficClass::Data,
                0,
                api.now(),
            );
            api.send(p);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }
    struct Sink;
    impl Agent for Sink {
        fn on_packet(&mut self, _p: Packet, _api: &mut Api) {}
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn tracer_sees_full_packet_lifecycle() {
        let mut net = crate::Network::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_link(
            a,
            b,
            10_000_000,
            SimDuration::from_millis(1),
            Box::new(DropTail::new(Limit::Packets(10))),
            None,
        );
        net.tracer = Some(Tracer::new(100));
        let mut sim = Sim::new(net);
        sim.attach(a, Box::new(OneShot { peer: b }));
        sim.attach(b, Box::new(Sink));
        sim.run_to_completion();
        let t = sim.net.tracer.as_ref().unwrap();
        assert_eq!(t.count(TraceKind::Enqueue), 1);
        assert_eq!(t.count(TraceKind::Transmit), 1);
        assert_eq!(t.count(TraceKind::Deliver), 1);
        assert_eq!(t.count(TraceKind::Drop), 0);
        // Lifecycle ordering: enqueue before transmit before deliver.
        let kinds: Vec<TraceKind> = t.records().iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![TraceKind::Enqueue, TraceKind::Transmit, TraceKind::Deliver]
        );
        assert!(t.records().iter().all(|r| r.flow == 5));
    }
}
