//! Packet-event tracing (ns-2-style trace files).
//!
//! A [`Tracer`] records per-packet events — enqueue, drop, eviction,
//! transmit, delivery — with timestamps, for debugging and for offline
//! analysis of queue dynamics. Tracing is opt-in per simulation
//! (`sim.net.tracer = Some(Tracer::new(cap))`) and costs nothing when
//! disabled.
//!
//! The format is deliberately close to ns-2's trace lines so existing
//! analysis habits transfer: one record per event with time, event kind,
//! link, flow, class, sequence number, and size.

use crate::packet::{LinkId, Packet, TrafficClass};
use simcore::SimTime;
use std::fmt;

/// What happened to a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Accepted into a link's queue.
    Enqueue,
    /// Rejected at a link's queue (tail/RED drop).
    Drop,
    /// Evicted from a queue by probe push-out.
    Evict,
    /// Transmitted onto the wire.
    Transmit,
    /// Delivered to the destination agent.
    Deliver,
}

impl TraceKind {
    /// ns-2-style single-character code.
    pub fn code(self) -> char {
        match self {
            TraceKind::Enqueue => '+',
            TraceKind::Drop => 'd',
            TraceKind::Evict => 'e',
            TraceKind::Transmit => '-',
            TraceKind::Deliver => 'r',
        }
    }
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Event time.
    pub at: SimTime,
    /// Event kind.
    pub kind: TraceKind,
    /// Link involved (None for deliveries).
    pub link: Option<LinkId>,
    /// Flow id.
    pub flow: u64,
    /// Traffic class.
    pub class: TrafficClass,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Packet size, bytes.
    pub size: u32,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let link = self
            .link
            .map(|l| l.to_string())
            .unwrap_or_else(|| "-".into());
        write!(
            f,
            "{} {:.9} {} f{} {:?} s{} {}B",
            self.kind.code(),
            self.at.as_secs_f64(),
            link,
            self.flow,
            self.class,
            self.seq,
            self.size
        )
    }
}

/// An event recorder with an optional class filter and a hard capacity
/// (oldest records are NOT overwritten — recording stops at capacity and
/// every further record is *counted* in [`dropped`](Tracer::dropped),
/// which keeps memory bounded while quantifying what the trace is
/// missing).
#[derive(Debug)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    capacity: usize,
    /// Record only this class (None = all classes).
    filter_class: Option<TrafficClass>,
    /// Records discarded past capacity.
    dropped: u64,
}

impl Tracer {
    /// A tracer holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            records: Vec::new(),
            capacity,
            filter_class: None,
            dropped: 0,
        }
    }

    /// Record only events for `class`.
    pub fn with_class(mut self, class: TrafficClass) -> Self {
        self.filter_class = Some(class);
        self
    }

    /// Record one event (internal hook; called by links/sim).
    pub fn record(&mut self, at: SimTime, kind: TraceKind, link: Option<LinkId>, pkt: &Packet) {
        self.record_raw(at, kind, link, pkt.flow.0, pkt.class, pkt.seq, pkt.size);
    }

    /// Record from raw fields (avoids borrowing a whole packet on paths
    /// where it has already been moved into a queue).
    #[allow(clippy::too_many_arguments)]
    pub fn record_raw(
        &mut self,
        at: SimTime,
        kind: TraceKind,
        link: Option<LinkId>,
        flow: u64,
        class: TrafficClass,
        seq: u64,
        size: u32,
    ) {
        if let Some(c) = self.filter_class {
            if class != c {
                return;
            }
        }
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord {
            at,
            kind,
            link,
            flow,
            class,
            seq,
            size,
        });
    }

    /// All recorded events, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// True if the capacity was hit and events were lost.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Number of records discarded after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count events of one kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Render all records, one per line (ns-2-style).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId};

    fn pkt(class: TrafficClass, seq: u64) -> Packet {
        Packet::new(
            seq,
            FlowId(3),
            NodeId(0),
            NodeId(1),
            125,
            class,
            seq,
            SimTime::ZERO,
        )
    }

    #[test]
    fn records_in_order_with_fields() {
        let mut t = Tracer::new(10);
        t.record(
            SimTime::from_secs(1),
            TraceKind::Enqueue,
            Some(LinkId(0)),
            &pkt(TrafficClass::Data, 7),
        );
        t.record(
            SimTime::from_secs(2),
            TraceKind::Transmit,
            Some(LinkId(0)),
            &pkt(TrafficClass::Data, 7),
        );
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].kind, TraceKind::Enqueue);
        assert_eq!(t.records()[1].seq, 7);
        assert_eq!(t.count(TraceKind::Transmit), 1);
        assert!(!t.truncated());
    }

    #[test]
    fn class_filter() {
        let mut t = Tracer::new(10).with_class(TrafficClass::Probe);
        t.record(
            SimTime::ZERO,
            TraceKind::Drop,
            Some(LinkId(1)),
            &pkt(TrafficClass::Data, 0),
        );
        t.record(
            SimTime::ZERO,
            TraceKind::Drop,
            Some(LinkId(1)),
            &pkt(TrafficClass::Probe, 1),
        );
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].class, TrafficClass::Probe);
    }

    #[test]
    fn capacity_stops_recording_and_flags() {
        let mut t = Tracer::new(2);
        for i in 0..5 {
            t.record(
                SimTime::ZERO,
                TraceKind::Enqueue,
                None,
                &pkt(TrafficClass::Data, i),
            );
        }
        assert_eq!(t.records().len(), 2);
        assert!(t.truncated());
        // Every discarded record is counted, not silently swallowed.
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn filtered_records_do_not_count_as_dropped() {
        let mut t = Tracer::new(1).with_class(TrafficClass::Probe);
        t.record(
            SimTime::ZERO,
            TraceKind::Enqueue,
            None,
            &pkt(TrafficClass::Data, 0), // filtered out, not a capacity drop
        );
        assert_eq!(t.dropped(), 0);
        for i in 1..4 {
            t.record(
                SimTime::ZERO,
                TraceKind::Enqueue,
                None,
                &pkt(TrafficClass::Probe, i),
            );
        }
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.dropped(), 2);
        assert!(t.truncated());
    }

    #[test]
    fn display_format_is_ns2_like() {
        let mut t = Tracer::new(4);
        t.record(
            SimTime::from_secs_f64(1.5),
            TraceKind::Drop,
            Some(LinkId(2)),
            &pkt(TrafficClass::Probe, 9),
        );
        let line = t.dump();
        assert!(line.starts_with("d 1.5"), "{line}");
        assert!(line.contains("l2"));
        assert!(line.contains("f3"));
        assert!(line.contains("s9"));
        assert!(line.contains("125B"));
    }
}
