//! Deficit Round Robin fair queueing [Shreedhar & Varghese 1996].
//!
//! §2.1.1 of the paper argues that fair queueing must *not* be used for
//! admission-controlled traffic because its per-flow isolation lets later
//! arrivals steal bandwidth from already-admitted larger flows. We
//! implement DRR so that the `stolen_bandwidth` example and the
//! architectural tests can demonstrate exactly that failure mode.

use super::{Dequeue, Limit, Qdisc};
use crate::packet::{FlowId, Packet};
use simcore::SimTime;
use std::collections::{BTreeMap, VecDeque};

struct FlowQueue {
    packets: VecDeque<Packet>,
    bytes: u64,
    deficit: u64,
    active: bool,
    /// True when the flow is starting a new round and should receive a
    /// quantum top-up on its next visit. Cleared while the flow continues
    /// to be served within the current round's deficit.
    fresh: bool,
}

impl FlowQueue {
    fn new() -> Self {
        FlowQueue {
            packets: VecDeque::new(),
            bytes: 0,
            deficit: 0,
            active: false,
            fresh: true,
        }
    }
}

/// A DRR scheduler with per-flow queues, a shared buffer limit, and
/// longest-queue drop on overflow.
pub struct Drr {
    flows: BTreeMap<FlowId, FlowQueue>,
    /// Round-robin order of active flows.
    active: VecDeque<FlowId>,
    quantum: u64,
    limit: Limit,
    total_pkts: usize,
    total_bytes: u64,
}

impl Drr {
    /// A DRR scheduler serving `quantum` bytes per flow per round.
    pub fn new(quantum: u64, limit: Limit) -> Self {
        assert!(quantum > 0);
        Drr {
            flows: BTreeMap::new(),
            active: VecDeque::new(),
            quantum,
            limit,
            total_pkts: 0,
            total_bytes: 0,
        }
    }

    /// Drop from the tail of the flow with the most buffered bytes
    /// (longest-queue drop), returning the victim. Ties break toward the
    /// highest flow id (max_by_key keeps the last maximum; BTreeMap order
    /// makes that deterministic).
    fn drop_from_longest(&mut self) -> Option<Packet> {
        let victim_flow = self
            .flows
            .iter()
            .filter(|(_, q)| !q.packets.is_empty())
            .max_by_key(|(_, q)| q.bytes)
            .map(|(&f, _)| f)?;
        let q = self.flows.get_mut(&victim_flow).expect("exists");
        let victim = q.packets.pop_back().expect("non-empty");
        q.bytes -= victim.size as u64;
        self.total_pkts -= 1;
        self.total_bytes -= victim.size as u64;
        Some(victim)
    }
}

impl Qdisc for Drr {
    fn enqueue_into(&mut self, pkt: Packet, _now: SimTime, evicted: &mut Vec<Packet>) -> bool {
        while self
            .limit
            .would_overflow(self.total_pkts, self.total_bytes, pkt.size)
        {
            // Longest-queue drop: fair queueing polices its own buffer by
            // penalising the biggest occupant; the arriving packet itself
            // is dropped only if its flow *is* the biggest occupant (which
            // drop_from_longest handles by evicting from that flow's tail).
            match self.drop_from_longest() {
                Some(v) => evicted.push(v),
                None => return false, // buffer can't fit it at all
            }
        }
        let flow = pkt.flow;
        let q = self.flows.entry(flow).or_insert_with(FlowQueue::new);
        q.bytes += pkt.size as u64;
        self.total_pkts += 1;
        self.total_bytes += pkt.size as u64;
        q.packets.push_back(pkt);
        if !q.active {
            q.active = true;
            q.deficit = 0;
            q.fresh = true;
            self.active.push_back(flow);
        }
        true
    }

    fn dequeue(&mut self, _now: SimTime) -> Dequeue {
        if self.total_pkts == 0 {
            return Dequeue::Empty;
        }
        loop {
            // One full round: visit each active flow once, topping up the
            // deficit by one quantum per visit.
            let mut visits = self.active.len();
            let mut min_gap: Option<u64> = None;
            while visits > 0 {
                visits -= 1;
                let Some(flow) = self.active.pop_front() else {
                    break;
                };
                let q = self.flows.get_mut(&flow).expect("active flow exists");
                if q.packets.is_empty() {
                    q.active = false;
                    q.deficit = 0;
                    continue;
                }
                if q.fresh {
                    q.deficit += self.quantum;
                    q.fresh = false;
                }
                let head_size = q.packets.front().expect("non-empty").size as u64;
                if head_size <= q.deficit {
                    q.deficit -= head_size;
                    let pkt = q.packets.pop_front().expect("non-empty");
                    q.bytes -= pkt.size as u64;
                    self.total_pkts -= 1;
                    self.total_bytes -= pkt.size as u64;
                    if q.packets.is_empty() {
                        q.active = false;
                        q.deficit = 0;
                    } else {
                        self.active.push_front(flow); // keep serving within deficit
                    }
                    return Dequeue::Packet(pkt);
                }
                // Deficit too small: move to the back of the round with a
                // fresh quantum due on the next visit.
                min_gap =
                    Some(min_gap.map_or(head_size - q.deficit, |g| g.min(head_size - q.deficit)));
                q.fresh = true;
                self.active.push_back(flow);
            }
            if self.active.is_empty() {
                // Every remaining flow record was empty.
                debug_assert_eq!(self.total_pkts, 0);
                return Dequeue::Empty;
            }
            // A whole round passed without service (every head exceeds its
            // deficit by at least `min_gap`). Skip ahead the number of
            // whole rounds the closest flow still needs — equivalent to
            // running that many idle DRR rounds, but O(flows) instead of
            // O(packet_size / quantum).
            if let Some(gap) = min_gap {
                let extra_rounds = gap.div_ceil(self.quantum).saturating_sub(1);
                if extra_rounds > 0 {
                    for flow in self.active.iter() {
                        let q = self.flows.get_mut(flow).expect("active flow exists");
                        q.deficit += extra_rounds * self.quantum;
                    }
                }
            }
        }
    }

    fn len_packets(&self) -> usize {
        self.total_pkts
    }

    fn len_bytes(&self) -> u64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{NodeId, TrafficClass};

    fn pkt(flow: u64, id: u64, size: u32) -> Packet {
        Packet::new(
            id,
            FlowId(flow),
            NodeId(0),
            NodeId(1),
            size,
            TrafficClass::Data,
            id,
            SimTime::ZERO,
        )
    }

    fn drain(q: &mut Drr) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Dequeue::Packet(p) = q.dequeue(SimTime::ZERO) {
            out.push(p);
        }
        out
    }

    #[test]
    fn equal_flows_get_interleaved_service() {
        let mut q = Drr::new(125, Limit::Packets(100));
        for i in 0..6 {
            q.enqueue(pkt(1, i, 125), SimTime::ZERO);
            q.enqueue(pkt(2, 100 + i, 125), SimTime::ZERO);
        }
        let out = drain(&mut q);
        // Per round each flow sends one packet: perfect alternation.
        let flow_seq: Vec<u64> = out.iter().map(|p| p.flow.0).collect();
        assert_eq!(flow_seq, vec![1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn byte_fairness_with_unequal_packet_sizes() {
        // Flow 1 sends 250-byte packets, flow 2 sends 125-byte packets.
        // With quantum 125, flow 1 sends one packet per two rounds while
        // flow 2 sends one per round: byte-fair.
        let mut q = Drr::new(125, Limit::Packets(100));
        for i in 0..4 {
            q.enqueue(pkt(1, i, 250), SimTime::ZERO);
        }
        for i in 0..8 {
            q.enqueue(pkt(2, 100 + i, 125), SimTime::ZERO);
        }
        let out = drain(&mut q);
        let bytes_1: u64 = out
            .iter()
            .filter(|p| p.flow.0 == 1)
            .map(|p| p.size as u64)
            .sum();
        let bytes_2: u64 = out
            .iter()
            .filter(|p| p.flow.0 == 2)
            .map(|p| p.size as u64)
            .sum();
        assert_eq!(bytes_1, 1000);
        assert_eq!(bytes_2, 1000);
        // First 12 departures should be byte-balanced within one packet.
        let first: Vec<_> = out.iter().take(9).collect();
        let b1: i64 = first
            .iter()
            .filter(|p| p.flow.0 == 1)
            .map(|p| p.size as i64)
            .sum();
        let b2: i64 = first
            .iter()
            .filter(|p| p.flow.0 == 2)
            .map(|p| p.size as i64)
            .sum();
        assert!((b1 - b2).abs() <= 250, "b1={b1} b2={b2}");
    }

    #[test]
    fn longest_queue_drop_on_overflow() {
        let mut q = Drr::new(125, Limit::Packets(4));
        q.enqueue(pkt(1, 0, 125), SimTime::ZERO);
        q.enqueue(pkt(1, 1, 125), SimTime::ZERO);
        q.enqueue(pkt(1, 2, 125), SimTime::ZERO);
        q.enqueue(pkt(2, 3, 125), SimTime::ZERO);
        // Buffer full. New packet from flow 2 evicts from flow 1 (longest).
        let r = q.enqueue(pkt(2, 4, 125), SimTime::ZERO);
        assert!(r.accepted);
        assert_eq!(r.evicted.len(), 1);
        assert_eq!(r.evicted[0].flow.0, 1);
        assert_eq!(q.len_packets(), 4);
    }

    #[test]
    fn empty_dequeue() {
        let mut q = Drr::new(125, Limit::Packets(10));
        assert!(matches!(q.dequeue(SimTime::ZERO), Dequeue::Empty));
        q.enqueue(pkt(1, 0, 100), SimTime::ZERO);
        drain(&mut q);
        assert!(matches!(q.dequeue(SimTime::ZERO), Dequeue::Empty));
        assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn three_flows_fair_shares() {
        let mut q = Drr::new(500, Limit::Packets(1000));
        for f in 1..=3u64 {
            for i in 0..30 {
                q.enqueue(pkt(f, f * 1000 + i, 125), SimTime::ZERO);
            }
        }
        // After 45 departures every flow should have sent ~15 packets.
        let mut counts = [0u32; 4];
        for _ in 0..45 {
            if let Dequeue::Packet(p) = q.dequeue(SimTime::ZERO) {
                counts[p.flow.0 as usize] += 1;
            }
        }
        for (f, &count) in counts.iter().enumerate().skip(1) {
            assert!((count as i32 - 15).abs() <= 4, "flow {f} got {count}");
        }
    }
}
