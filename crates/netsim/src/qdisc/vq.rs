//! Virtual-queue ECN marking (§3.1).
//!
//! "For the marking algorithm we use a virtual queue ... The router
//! simulates the behavior of a queue with 90% of the real bandwidth (but
//! same size buffer) and marks packets that would have been dropped in the
//! virtual queue. This can be implemented efficiently, as it only requires
//! one counter for each priority level."
//!
//! [`VirtualQueue`] is a *marker stage* attached to a link: every arriving
//! admission-controlled packet passes through it before the real qdisc.
//! Internally it simulates a strict-priority fluid queue running at
//! `factor × bandwidth` with the real buffer size: per-band byte backlogs
//! drain highest-priority-first, and an arriving packet is marked if the
//! virtual system has no room for it.

use crate::packet::{Packet, TrafficClass};
use simcore::SimTime;

/// Number of virtual bands (data above probe; control and best-effort
/// traffic bypass the marker).
const BANDS: usize = 2;

/// A per-link virtual queue marker.
#[derive(Clone, Debug)]
pub struct VirtualQueue {
    /// Virtual service rate, bytes/second.
    rate_bytes_per_sec: f64,
    /// Virtual buffer, bytes (same size as the real buffer per the paper).
    capacity_bytes: f64,
    /// Per-band virtual backlogs, bytes. Band 0 = data, band 1 = probe.
    backlog: [f64; BANDS],
    last: SimTime,
}

impl VirtualQueue {
    /// A virtual queue running at `factor` of `link_bps` with the given
    /// buffer size. The paper uses `factor = 0.9`.
    pub fn new(link_bps: u64, factor: f64, capacity_bytes: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0);
        assert!(capacity_bytes > 0.0);
        VirtualQueue {
            rate_bytes_per_sec: link_bps as f64 * factor / 8.0,
            capacity_bytes,
            backlog: [0.0; BANDS],
            last: SimTime::ZERO,
        }
    }

    fn band_of(class: TrafficClass) -> Option<usize> {
        match class {
            TrafficClass::Data => Some(0),
            TrafficClass::Probe => Some(1),
            TrafficClass::Control | TrafficClass::BestEffort => None,
        }
    }

    fn drain(&mut self, now: SimTime) {
        let mut budget = now.since(self.last).as_secs_f64() * self.rate_bytes_per_sec;
        self.last = now;
        // Strict priority: drain band 0 first.
        for b in &mut self.backlog {
            let served = budget.min(*b);
            *b -= served;
            budget -= served;
            if budget <= 0.0 {
                break;
            }
        }
    }

    /// Pass `pkt` through the marker: sets `pkt.marked` if the virtual
    /// queue would have dropped it. Non-admission-controlled classes pass
    /// through untouched and unaccounted.
    pub fn process(&mut self, pkt: &mut Packet, now: SimTime) {
        let Some(band) = Self::band_of(pkt.class) else {
            return;
        };
        self.drain(now);
        let total: f64 = self.backlog.iter().sum();
        if total + pkt.size as f64 > self.capacity_bytes {
            pkt.marked = true;
            // A dropped packet does not occupy the virtual buffer.
        } else {
            self.backlog[band] += pkt.size as f64;
        }
    }

    /// Total virtual backlog in bytes (for tests).
    pub fn backlog_bytes(&self) -> f64 {
        self.backlog.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId};
    use simcore::SimDuration;

    fn pkt(class: TrafficClass) -> Packet {
        Packet::new(
            0,
            FlowId(0),
            NodeId(0),
            NodeId(1),
            125,
            class,
            0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn no_marking_under_light_load() {
        // 10 Mbps link, VQ at 9 Mbps = 1.125e6 B/s. One packet per ms is
        // 125 kB/s — far below the virtual rate.
        let mut vq = VirtualQueue::new(10_000_000, 0.9, 200.0 * 125.0);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            let mut p = pkt(TrafficClass::Data);
            vq.process(&mut p, t);
            assert!(!p.marked);
            t += SimDuration::from_millis(1);
        }
        assert!(vq.backlog_bytes() < 126.0);
    }

    #[test]
    fn marks_before_real_queue_would_drop() {
        // Offered load exactly at link rate: the real queue (at C) holds,
        // but the virtual queue (at 0.9 C) backs up and must mark.
        let mut vq = VirtualQueue::new(10_000_000, 0.9, 50.0 * 125.0);
        let mut t = SimTime::ZERO;
        let mut marks = 0;
        // 10 Mbps of 125-byte packets = one per 100 us.
        for _ in 0..10_000 {
            let mut p = pkt(TrafficClass::Data);
            vq.process(&mut p, t);
            if p.marked {
                marks += 1;
            }
            t += SimDuration::from_micros(100);
        }
        // Long-run mark fraction approaches the virtual overload 0.1/1.0.
        let frac = marks as f64 / 10_000.0;
        assert!((frac - 0.1).abs() < 0.02, "mark fraction {frac}");
    }

    #[test]
    fn control_and_best_effort_bypass() {
        let mut vq = VirtualQueue::new(1_000, 0.9, 10.0);
        let mut p = pkt(TrafficClass::BestEffort);
        p.size = 1_000_000;
        vq.process(&mut p, SimTime::ZERO);
        assert!(!p.marked);
        assert_eq!(vq.backlog_bytes(), 0.0);
        let mut c = pkt(TrafficClass::Control);
        vq.process(&mut c, SimTime::ZERO);
        assert!(!c.marked);
    }

    #[test]
    fn idle_period_drains_backlog() {
        let mut vq = VirtualQueue::new(10_000_000, 0.9, 200.0 * 125.0);
        // Burst 100 packets at t=0.
        for _ in 0..100 {
            let mut p = pkt(TrafficClass::Data);
            vq.process(&mut p, SimTime::ZERO);
        }
        assert!(vq.backlog_bytes() > 0.0);
        let mut p = pkt(TrafficClass::Data);
        vq.process(&mut p, SimTime::from_secs(1));
        assert!(!p.marked);
        assert!((vq.backlog_bytes() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn probe_band_drains_after_data() {
        let mut vq = VirtualQueue::new(8_000, 1.0, 1e9); // 1000 B/s virtual
        let mut d = pkt(TrafficClass::Data);
        d.size = 1000;
        let mut pr = pkt(TrafficClass::Probe);
        pr.size = 1000;
        vq.process(&mut d, SimTime::ZERO);
        vq.process(&mut pr, SimTime::ZERO);
        // After 1 s, exactly the data backlog has drained.
        let mut probe2 = pkt(TrafficClass::Probe);
        probe2.size = 125;
        vq.process(&mut probe2, SimTime::from_secs(1));
        assert!((vq.backlog_bytes() - 1125.0).abs() < 1e-6);
    }
}
