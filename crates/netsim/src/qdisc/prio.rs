//! Strict-priority scheduling with shared buffers, probe push-out and
//! aggregate rate limiting.
//!
//! This is the scheduler §2.1 argues endpoint admission control needs:
//!
//! - strict priority between bands (no borrowing between admission-
//!   controlled and best-effort traffic);
//! - an optional *shared buffer* across the admission-controlled bands in
//!   which arriving data packets push out resident probe packets (§3.1);
//! - an optional *aggregate rate limit* over the admission-controlled bands,
//!   making the scheduler non-work-conserving for that group (§2.1.2): if
//!   the group is over its share, the link serves lower bands (best effort)
//!   or idles, never lets the group borrow.

use super::{Dequeue, DropTail, Limit, Qdisc, TokenBucket};
use crate::packet::{Packet, TrafficClass};
use simcore::SimTime;

/// Configuration of one priority band (index 0 = highest priority).
#[derive(Clone, Copy, Debug)]
pub struct Band {
    /// Per-band capacity; `None` = bounded only by a shared buffer (or
    /// unbounded if the band is in no shared group).
    pub limit: Option<Limit>,
}

/// Shared buffer over a set of bands with optional push-out.
#[derive(Clone, Debug)]
struct SharedGroup {
    bands: Vec<usize>,
    limit: Limit,
    /// When full, a packet arriving to a higher-priority band in the group
    /// evicts packets from the tail of the lowest-priority non-empty band
    /// in the group (the probe push-out of §3.1).
    pushout: bool,
}

/// Aggregate token-bucket rate limit over a set of bands.
#[derive(Clone, Debug)]
struct RateGroup {
    bands: Vec<usize>,
    bucket: TokenBucket,
}

/// Strict-priority scheduler.
pub struct StrictPrio {
    bands: Vec<DropTail>,
    band_limits: Vec<Option<Limit>>,
    class_map: [usize; TrafficClass::COUNT],
    shared: Option<SharedGroup>,
    rate: Option<RateGroup>,
}

impl StrictPrio {
    /// Build a scheduler with the given bands and class→band map.
    ///
    /// Panics if the map points at a nonexistent band.
    pub fn new(bands: Vec<Band>, class_map: [usize; TrafficClass::COUNT]) -> Self {
        assert!(!bands.is_empty());
        for &b in &class_map {
            assert!(b < bands.len(), "class mapped to nonexistent band {b}");
        }
        let band_limits: Vec<_> = bands.iter().map(|b| b.limit).collect();
        StrictPrio {
            bands: bands
                .iter()
                .map(|_| DropTail::new(Limit::Packets(usize::MAX)))
                .collect(),
            band_limits,
            class_map,
            shared: None,
            rate: None,
        }
    }

    /// Declare `bands` to share one buffer of capacity `limit`; with
    /// `pushout`, arrivals to higher-priority bands evict from lower ones.
    pub fn with_shared_buffer(mut self, bands: Vec<usize>, limit: Limit, pushout: bool) -> Self {
        for &b in &bands {
            assert!(b < self.bands.len());
        }
        self.shared = Some(SharedGroup {
            bands,
            limit,
            pushout,
        });
        self
    }

    /// Impose an aggregate rate limit (bits/s) over `bands`, with a token
    /// bucket depth of `burst_bytes`.
    pub fn with_rate_limit(mut self, bands: Vec<usize>, rate_bps: u64, burst_bytes: f64) -> Self {
        for &b in &bands {
            assert!(b < self.bands.len());
        }
        self.rate = Some(RateGroup {
            bands,
            bucket: TokenBucket::new(rate_bps, burst_bytes),
        });
        self
    }

    /// The admission-controlled queue of the paper's prototype designs
    /// (§3.1/§3.2): a control band above a data band, probes either sharing
    /// the data band (in-band) or in their own lower band (out-of-band);
    /// the data+probe bands share `buffer` with probe push-out.
    ///
    /// This models the paper's simulation simplification where the link
    /// itself runs at the allocated share, so no rate limiter is attached.
    pub fn admission_queue(buffer: Limit, out_of_band: bool) -> Self {
        Self::admission_queue_opts(buffer, out_of_band, true)
    }

    /// [`StrictPrio::admission_queue`] with the probe push-out rule
    /// switchable (for the push-out ablation bench).
    pub fn admission_queue_opts(buffer: Limit, out_of_band: bool, pushout: bool) -> Self {
        if out_of_band {
            // bands: 0 = control, 1 = data, 2 = probe
            StrictPrio::new(
                vec![
                    Band { limit: None },
                    Band { limit: None },
                    Band { limit: None },
                ],
                class_band_map(0, 1, 2, 2),
            )
            .with_shared_buffer(vec![1, 2], buffer, pushout)
        } else {
            // bands: 0 = control, 1 = data + probe
            StrictPrio::new(
                vec![Band { limit: None }, Band { limit: None }],
                class_band_map(0, 1, 1, 1),
            )
            .with_shared_buffer(vec![1], buffer, false)
        }
    }

    /// A full-link scheduler with best effort below the admission-controlled
    /// group, and the admission-controlled group (data + probes) strictly
    /// rate-limited to `share_bps` (§2.1.2). `ac_buffer` bounds the
    /// admission-controlled buffer (with probe push-out when `out_of_band`),
    /// `be_buffer` the best-effort buffer.
    pub fn rate_limited_link(
        share_bps: u64,
        ac_buffer: Limit,
        be_buffer: Limit,
        out_of_band: bool,
        mtu_bytes: f64,
    ) -> Self {
        if out_of_band {
            // bands: 0 control, 1 data, 2 probe, 3 best-effort
            StrictPrio::new(
                vec![
                    Band { limit: None },
                    Band { limit: None },
                    Band { limit: None },
                    Band {
                        limit: Some(be_buffer),
                    },
                ],
                class_band_map(0, 1, 2, 3),
            )
            .with_shared_buffer(vec![1, 2], ac_buffer, true)
            .with_rate_limit(vec![1, 2], share_bps, mtu_bytes)
        } else {
            // bands: 0 control, 1 data+probe, 2 best-effort
            StrictPrio::new(
                vec![
                    Band { limit: None },
                    Band { limit: None },
                    Band {
                        limit: Some(be_buffer),
                    },
                ],
                class_band_map(0, 1, 1, 2),
            )
            .with_shared_buffer(vec![1], ac_buffer, false)
            .with_rate_limit(vec![1], share_bps, mtu_bytes)
        }
    }

    fn group_occupancy(&self, group: &SharedGroup) -> (usize, u64) {
        let mut pkts = 0;
        let mut bytes = 0;
        for &b in &group.bands {
            pkts += self.bands[b].len_packets();
            bytes += self.bands[b].len_bytes();
        }
        (pkts, bytes)
    }

    /// Number of packets queued in `band` (for tests/inspection).
    pub fn band_len(&self, band: usize) -> usize {
        self.bands[band].len_packets()
    }
}

/// Build a class→band array from per-class band indices.
pub fn class_band_map(
    control: usize,
    data: usize,
    probe: usize,
    best_effort: usize,
) -> [usize; TrafficClass::COUNT] {
    let mut m = [0; TrafficClass::COUNT];
    m[TrafficClass::Control.index()] = control;
    m[TrafficClass::Data.index()] = data;
    m[TrafficClass::Probe.index()] = probe;
    m[TrafficClass::BestEffort.index()] = best_effort;
    m
}

impl Qdisc for StrictPrio {
    fn enqueue_into(&mut self, pkt: Packet, _now: SimTime, evicted: &mut Vec<Packet>) -> bool {
        let band = self.class_map[pkt.class.index()];

        // Per-band limit first.
        if let Some(limit) = self.band_limits[band] {
            let q = &self.bands[band];
            if limit.would_overflow(q.len_packets(), q.len_bytes(), pkt.size) {
                return false;
            }
        }

        // Shared-group limit with optional push-out. The group is taken out
        // of `self` for the duration to split the borrow without cloning
        // its band list on every enqueue (this is the per-packet hot path);
        // victims go into the caller's reused scratch, not a fresh Vec.
        if let Some(group) = self.shared.take() {
            let mut accepted = true;
            if group.bands.contains(&band) {
                let (mut pkts, mut bytes) = self.group_occupancy(&group);
                while group.limit.would_overflow(pkts, bytes, pkt.size) {
                    if !group.pushout {
                        accepted = false;
                        break;
                    }
                    // Evict from the lowest-priority non-empty band in the
                    // group that is *strictly lower priority* than the
                    // arriving packet's band.
                    let victim_band = group
                        .bands
                        .iter()
                        .copied()
                        .filter(|&b| b > band && self.bands[b].len_packets() > 0)
                        .max();
                    match victim_band {
                        Some(vb) => {
                            let victim = self.bands[vb]
                                .pop_tail()
                                .expect("non-empty band had no tail");
                            pkts -= 1;
                            bytes -= victim.size as u64;
                            evicted.push(victim);
                        }
                        None => {
                            // Nothing evictable below us: tail drop. (Each
                            // eviction frees at least one slot, so with
                            // push-out this only triggers when no lower band
                            // has packets.)
                            accepted = false;
                            break;
                        }
                    }
                }
            }
            self.shared = Some(group);
            if !accepted {
                return false;
            }
        }

        self.bands[band].force_enqueue(pkt);
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Dequeue {
        let mut earliest: Option<SimTime> = None;
        for b in 0..self.bands.len() {
            if self.bands[b].is_empty() {
                continue;
            }
            let restricted = self
                .rate
                .as_ref()
                .map(|r| r.bands.contains(&b))
                .unwrap_or(false);
            if restricted {
                let size = self.bands[b].peek().expect("non-empty").size;
                let rate = self.rate.as_mut().expect("checked above");
                let ready = rate.bucket.ready_at(size, now);
                if ready <= now && rate.bucket.try_take(size, now) {
                    return self.bands[b].dequeue(now);
                }
                let ready = ready.max(now + simcore::SimDuration::from_nanos(1));
                earliest = Some(earliest.map_or(ready, |e| e.min(ready)));
                // fall through to lower-priority (unrestricted) bands
            } else {
                return self.bands[b].dequeue(now);
            }
        }
        match earliest {
            Some(t) => Dequeue::NotBefore(t),
            None => Dequeue::Empty,
        }
    }

    fn len_packets(&self) -> usize {
        self.bands.iter().map(|b| b.len_packets()).sum()
    }

    fn len_bytes(&self) -> u64 {
        self.bands.iter().map(|b| b.len_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId};
    use simcore::SimDuration;

    fn pkt(id: u64, class: TrafficClass, size: u32) -> Packet {
        Packet::new(
            id,
            FlowId(0),
            NodeId(0),
            NodeId(1),
            size,
            class,
            id,
            SimTime::ZERO,
        )
    }

    fn deq(q: &mut StrictPrio, now: SimTime) -> Packet {
        match q.dequeue(now) {
            Dequeue::Packet(p) => p,
            other => panic!("expected packet, got {other:?}"),
        }
    }

    #[test]
    fn strict_priority_order() {
        let mut q = StrictPrio::admission_queue(Limit::Packets(100), true);
        q.enqueue(pkt(0, TrafficClass::Probe, 125), SimTime::ZERO);
        q.enqueue(pkt(1, TrafficClass::Data, 125), SimTime::ZERO);
        q.enqueue(pkt(2, TrafficClass::Control, 40), SimTime::ZERO);
        assert_eq!(deq(&mut q, SimTime::ZERO).class, TrafficClass::Control);
        assert_eq!(deq(&mut q, SimTime::ZERO).class, TrafficClass::Data);
        assert_eq!(deq(&mut q, SimTime::ZERO).class, TrafficClass::Probe);
        assert!(matches!(q.dequeue(SimTime::ZERO), Dequeue::Empty));
    }

    #[test]
    fn in_band_maps_probe_with_data_fifo() {
        let mut q = StrictPrio::admission_queue(Limit::Packets(100), false);
        q.enqueue(pkt(0, TrafficClass::Probe, 125), SimTime::ZERO);
        q.enqueue(pkt(1, TrafficClass::Data, 125), SimTime::ZERO);
        // In-band: probe and data share a band FIFO, so the probe leaves first.
        assert_eq!(deq(&mut q, SimTime::ZERO).id, 0);
        assert_eq!(deq(&mut q, SimTime::ZERO).id, 1);
    }

    #[test]
    fn data_pushes_out_probe_when_shared_buffer_full() {
        let mut q = StrictPrio::admission_queue(Limit::Packets(2), true);
        assert!(
            q.enqueue(pkt(0, TrafficClass::Probe, 125), SimTime::ZERO)
                .accepted
        );
        assert!(
            q.enqueue(pkt(1, TrafficClass::Probe, 125), SimTime::ZERO)
                .accepted
        );
        let r = q.enqueue(pkt(2, TrafficClass::Data, 125), SimTime::ZERO);
        assert!(r.accepted);
        assert_eq!(r.evicted.len(), 1);
        assert_eq!(r.evicted[0].id, 1, "evicts the newest resident probe");
        assert_eq!(q.band_len(1), 1); // data band
        assert_eq!(q.band_len(2), 1); // one probe left
    }

    #[test]
    fn probe_cannot_push_out_data() {
        let mut q = StrictPrio::admission_queue(Limit::Packets(2), true);
        q.enqueue(pkt(0, TrafficClass::Data, 125), SimTime::ZERO);
        q.enqueue(pkt(1, TrafficClass::Data, 125), SimTime::ZERO);
        let r = q.enqueue(pkt(2, TrafficClass::Probe, 125), SimTime::ZERO);
        assert!(!r.accepted);
        assert!(r.evicted.is_empty());
    }

    #[test]
    fn shared_buffer_counts_both_bands() {
        let mut q = StrictPrio::admission_queue(Limit::Packets(3), true);
        q.enqueue(pkt(0, TrafficClass::Data, 125), SimTime::ZERO);
        q.enqueue(pkt(1, TrafficClass::Probe, 125), SimTime::ZERO);
        q.enqueue(pkt(2, TrafficClass::Probe, 125), SimTime::ZERO);
        // Full: another data packet must evict a probe, not be dropped.
        let r = q.enqueue(pkt(3, TrafficClass::Data, 125), SimTime::ZERO);
        assert!(r.accepted);
        assert_eq!(r.evicted.len(), 1);
        assert_eq!(q.len_packets(), 3);
    }

    #[test]
    fn control_band_not_limited_by_shared_buffer() {
        let mut q = StrictPrio::admission_queue(Limit::Packets(1), true);
        q.enqueue(pkt(0, TrafficClass::Data, 125), SimTime::ZERO);
        // Shared buffer full, but control rides its own band.
        assert!(
            q.enqueue(pkt(1, TrafficClass::Control, 40), SimTime::ZERO)
                .accepted
        );
    }

    #[test]
    fn rate_limit_defers_group_but_not_best_effort() {
        // 1 Mbps share, 125-byte packets -> 1 ms per packet of tokens.
        let mut q = StrictPrio::rate_limited_link(
            1_000_000,
            Limit::Packets(100),
            Limit::Packets(100),
            false,
            125.0,
        );
        let t0 = SimTime::ZERO;
        q.enqueue(pkt(0, TrafficClass::Data, 125), t0);
        q.enqueue(pkt(1, TrafficClass::Data, 125), t0);
        q.enqueue(pkt(2, TrafficClass::BestEffort, 125), t0);
        // First data packet consumes the full bucket (depth = 1 MTU).
        assert_eq!(deq(&mut q, t0).id, 0);
        // Second data packet is rate-blocked; best effort goes instead.
        assert_eq!(deq(&mut q, t0).id, 2);
        // Now only data remains and it is blocked: NotBefore ~1ms.
        match q.dequeue(t0) {
            Dequeue::NotBefore(t) => {
                assert_eq!(t, t0 + SimDuration::from_millis(1));
                assert_eq!(deq(&mut q, t).id, 1);
            }
            other => panic!("expected NotBefore, got {other:?}"),
        }
    }

    #[test]
    fn per_band_limit_drops() {
        let mut q = StrictPrio::rate_limited_link(
            1_000_000,
            Limit::Packets(100),
            Limit::Packets(1),
            false,
            125.0,
        );
        assert!(
            q.enqueue(pkt(0, TrafficClass::BestEffort, 125), SimTime::ZERO)
                .accepted
        );
        assert!(
            !q.enqueue(pkt(1, TrafficClass::BestEffort, 125), SimTime::ZERO)
                .accepted
        );
    }

    #[test]
    fn byte_limited_shared_buffer_pushout_frees_enough() {
        let mut q = StrictPrio::admission_queue(Limit::Bytes(250), true);
        q.enqueue(pkt(0, TrafficClass::Probe, 125), SimTime::ZERO);
        q.enqueue(pkt(1, TrafficClass::Probe, 125), SimTime::ZERO);
        // A 200-byte data packet needs to evict both 125-byte probes.
        let r = q.enqueue(pkt(2, TrafficClass::Data, 200), SimTime::ZERO);
        assert!(r.accepted);
        assert_eq!(r.evicted.len(), 2);
        assert_eq!(q.len_bytes(), 200);
    }
}
