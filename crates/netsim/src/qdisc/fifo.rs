//! Drop-tail FIFO — the paper's default router queue (§3.1).

use super::{Dequeue, Limit, Qdisc};
use crate::packet::Packet;
use simcore::SimTime;
use std::collections::VecDeque;

/// A single FIFO buffer with tail drop on overflow.
#[derive(Debug)]
pub struct DropTail {
    queue: VecDeque<Packet>,
    limit: Limit,
    bytes: u64,
}

impl DropTail {
    /// An empty buffer with the given capacity.
    pub fn new(limit: Limit) -> Self {
        DropTail {
            queue: VecDeque::new(),
            limit,
            bytes: 0,
        }
    }

    /// The configured capacity.
    pub fn limit(&self) -> Limit {
        self.limit
    }

    /// Peek at the head packet without removing it.
    pub fn peek(&self) -> Option<&Packet> {
        self.queue.front()
    }

    /// Remove the most recently enqueued packet (used by push-out schedulers).
    pub fn pop_tail(&mut self) -> Option<Packet> {
        let p = self.queue.pop_back()?;
        self.bytes -= p.size as u64;
        Some(p)
    }

    /// Would admitting a packet of `size` bytes overflow the buffer?
    pub fn would_overflow(&self, size: u32) -> bool {
        self.limit
            .would_overflow(self.queue.len(), self.bytes, size)
    }

    /// Enqueue without a capacity check (the caller has already made room —
    /// used by shared-buffer schedulers).
    pub fn force_enqueue(&mut self, pkt: Packet) {
        self.bytes += pkt.size as u64;
        self.queue.push_back(pkt);
    }
}

impl Qdisc for DropTail {
    fn enqueue_into(&mut self, pkt: Packet, _now: SimTime, _evicted: &mut Vec<Packet>) -> bool {
        if self.would_overflow(pkt.size) {
            false
        } else {
            self.force_enqueue(pkt);
            true
        }
    }

    fn dequeue(&mut self, _now: SimTime) -> Dequeue {
        match self.queue.pop_front() {
            Some(p) => {
                self.bytes -= p.size as u64;
                Dequeue::Packet(p)
            }
            None => Dequeue::Empty,
        }
    }

    fn len_packets(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, TrafficClass};

    fn pkt(id: u64, size: u32) -> Packet {
        Packet::new(
            id,
            FlowId(0),
            NodeId(0),
            NodeId(1),
            size,
            TrafficClass::Data,
            id,
            SimTime::ZERO,
        )
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTail::new(Limit::Packets(10));
        for i in 0..5 {
            assert!(q.enqueue(pkt(i, 100), SimTime::ZERO).accepted);
        }
        for i in 0..5 {
            match q.dequeue(SimTime::ZERO) {
                Dequeue::Packet(p) => assert_eq!(p.id, i),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(q.dequeue(SimTime::ZERO), Dequeue::Empty));
    }

    #[test]
    fn packet_limit_tail_drops() {
        let mut q = DropTail::new(Limit::Packets(2));
        assert!(q.enqueue(pkt(0, 1), SimTime::ZERO).accepted);
        assert!(q.enqueue(pkt(1, 1), SimTime::ZERO).accepted);
        let r = q.enqueue(pkt(2, 1), SimTime::ZERO);
        assert!(!r.accepted && r.evicted.is_empty());
        assert_eq!(q.len_packets(), 2);
    }

    #[test]
    fn byte_limit_and_accounting() {
        let mut q = DropTail::new(Limit::Bytes(250));
        assert!(q.enqueue(pkt(0, 125), SimTime::ZERO).accepted);
        assert!(q.enqueue(pkt(1, 125), SimTime::ZERO).accepted);
        assert!(!q.enqueue(pkt(2, 1), SimTime::ZERO).accepted);
        assert_eq!(q.len_bytes(), 250);
        q.dequeue(SimTime::ZERO);
        assert_eq!(q.len_bytes(), 125);
        assert!(q.enqueue(pkt(3, 125), SimTime::ZERO).accepted);
    }

    #[test]
    fn pop_tail_removes_newest() {
        let mut q = DropTail::new(Limit::Packets(10));
        q.enqueue(pkt(0, 10), SimTime::ZERO);
        q.enqueue(pkt(1, 20), SimTime::ZERO);
        let p = q.pop_tail().unwrap();
        assert_eq!(p.id, 1);
        assert_eq!(q.len_bytes(), 10);
        assert_eq!(q.peek().unwrap().id, 0);
    }
}
