//! Random Early Detection [Floyd & Jacobson 1993].
//!
//! The paper uses drop-tail for its experiments ("we used drop-tail for
//! ease of simulation") but names RED as the alternative; we provide it so
//! that the ablation benches can check the paper's claim that the choice
//! does not affect the results. Supports drop or ECN-mark mode.

use super::{Dequeue, Limit, Qdisc};
use crate::packet::Packet;
use simcore::{SimRng, SimTime};
use std::collections::VecDeque;

/// What RED does to a packet it selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedMode {
    /// Drop the packet.
    Drop,
    /// Set the ECN congestion-experienced mark and enqueue anyway.
    Mark,
}

/// RED parameters (classic, non-gentle).
#[derive(Clone, Copy, Debug)]
pub struct RedParams {
    /// Minimum average-queue threshold, packets.
    pub min_th: f64,
    /// Maximum average-queue threshold, packets.
    pub max_th: f64,
    /// Drop/mark probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate.
    pub weight: f64,
    /// Typical packet transmission time, used to age the average across
    /// idle periods.
    pub mean_pkt_time: simcore::SimDuration,
}

impl Default for RedParams {
    fn default() -> Self {
        RedParams {
            min_th: 5.0,
            max_th: 15.0,
            max_p: 0.1,
            weight: 0.002,
            mean_pkt_time: simcore::SimDuration::from_micros(100),
        }
    }
}

/// A RED queue with a hard physical limit.
pub struct Red {
    queue: VecDeque<Packet>,
    bytes: u64,
    limit: Limit,
    params: RedParams,
    mode: RedMode,
    avg: f64,
    /// Packets since the last drop/mark while in the "between thresholds"
    /// region (the `count` of the RED paper, for uniformization).
    count: i64,
    idle_since: Option<SimTime>,
    rng: SimRng,
}

impl Red {
    /// A RED queue with physical capacity `limit`.
    pub fn new(limit: Limit, params: RedParams, mode: RedMode, rng: SimRng) -> Self {
        assert!(params.min_th < params.max_th);
        assert!((0.0..=1.0).contains(&params.max_p));
        assert!(params.weight > 0.0 && params.weight <= 1.0);
        Red {
            queue: VecDeque::new(),
            bytes: 0,
            limit,
            params,
            mode,
            avg: 0.0,
            count: -1,
            idle_since: Some(SimTime::ZERO),
            rng,
        }
    }

    /// Current average-queue estimate (packets), for tests.
    pub fn avg(&self) -> f64 {
        self.avg
    }

    fn update_avg(&mut self, now: SimTime) {
        if let Some(idle_start) = self.idle_since {
            // Age the average across the idle period: pretend m small
            // packets departed.
            let idle = now.since(idle_start).as_secs_f64();
            let m = (idle / self.params.mean_pkt_time.as_secs_f64()).floor();
            self.avg *= (1.0 - self.params.weight).powf(m);
            self.idle_since = None;
        }
        self.avg =
            self.avg * (1.0 - self.params.weight) + self.queue.len() as f64 * self.params.weight;
    }

    /// Classic RED early-detection decision for an arriving packet.
    fn early_action(&mut self) -> bool {
        let p = &self.params;
        if self.avg < p.min_th {
            self.count = -1;
            return false;
        }
        if self.avg >= p.max_th {
            self.count = 0;
            return true;
        }
        self.count += 1;
        let pb = p.max_p * (self.avg - p.min_th) / (p.max_th - p.min_th);
        let pa = if self.count as f64 * pb >= 1.0 {
            1.0
        } else {
            pb / (1.0 - self.count as f64 * pb)
        };
        if self.rng.chance(pa) {
            self.count = 0;
            true
        } else {
            false
        }
    }
}

impl Qdisc for Red {
    fn enqueue_into(&mut self, mut pkt: Packet, now: SimTime, _evicted: &mut Vec<Packet>) -> bool {
        self.update_avg(now);

        // Physical overflow always drops.
        if self
            .limit
            .would_overflow(self.queue.len(), self.bytes, pkt.size)
        {
            self.count = 0;
            return false;
        }

        if self.early_action() {
            match self.mode {
                RedMode::Drop => return false,
                RedMode::Mark => pkt.marked = true,
            }
        }
        self.bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Dequeue {
        match self.queue.pop_front() {
            Some(p) => {
                self.bytes -= p.size as u64;
                if self.queue.is_empty() {
                    self.idle_since = Some(now);
                }
                Dequeue::Packet(p)
            }
            None => Dequeue::Empty,
        }
    }

    fn len_packets(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, TrafficClass};

    fn pkt(id: u64) -> Packet {
        Packet::new(
            id,
            FlowId(0),
            NodeId(0),
            NodeId(1),
            125,
            TrafficClass::Data,
            id,
            SimTime::ZERO,
        )
    }

    fn red(mode: RedMode) -> Red {
        Red::new(
            Limit::Packets(1000),
            RedParams {
                min_th: 2.0,
                max_th: 6.0,
                max_p: 0.5,
                weight: 0.5, // fast-moving average for testability
                ..RedParams::default()
            },
            mode,
            SimRng::new(1),
        )
    }

    #[test]
    fn below_min_th_never_drops() {
        let mut q = red(RedMode::Drop);
        // Keep queue at ~1 by dequeuing after each enqueue.
        for i in 0..1000 {
            assert!(q.enqueue(pkt(i), SimTime::ZERO).accepted);
            q.dequeue(SimTime::ZERO);
        }
    }

    #[test]
    fn sustained_overload_drops_probabilistically() {
        let mut q = red(RedMode::Drop);
        let mut dropped = 0;
        for i in 0..500 {
            if !q.enqueue(pkt(i), SimTime::ZERO).accepted {
                dropped += 1;
            }
        }
        assert!(dropped > 50, "dropped {dropped}");
        assert!(dropped < 500);
    }

    #[test]
    fn mark_mode_marks_instead_of_dropping() {
        let mut q = red(RedMode::Mark);
        let mut marked = 0;
        let mut accepted = 0;
        for i in 0..200 {
            let r = q.enqueue(pkt(i), SimTime::ZERO);
            if r.accepted {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 200, "mark mode only drops on physical overflow");
        while let Dequeue::Packet(p) = q.dequeue(SimTime::ZERO) {
            if p.marked {
                marked += 1;
            }
        }
        assert!(marked > 20, "marked {marked}");
    }

    #[test]
    fn physical_limit_still_enforced_in_mark_mode() {
        let mut q = Red::new(
            Limit::Packets(3),
            RedParams::default(),
            RedMode::Mark,
            SimRng::new(2),
        );
        for i in 0..3 {
            assert!(q.enqueue(pkt(i), SimTime::ZERO).accepted);
        }
        assert!(!q.enqueue(pkt(3), SimTime::ZERO).accepted);
    }

    #[test]
    fn idle_period_decays_average() {
        let mut q = red(RedMode::Drop);
        for i in 0..10 {
            q.enqueue(pkt(i), SimTime::ZERO);
        }
        let hot = q.avg();
        while let Dequeue::Packet(_) = q.dequeue(SimTime::from_secs(1)) {}
        // Arrive after a long idle gap: the average should have decayed.
        q.enqueue(pkt(100), SimTime::from_secs(10));
        assert!(q.avg() < hot * 0.1, "avg {} vs hot {hot}", q.avg());
    }
}
