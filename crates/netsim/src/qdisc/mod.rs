//! Queueing disciplines.
//!
//! A [`Qdisc`] buffers packets between a link's input and its transmitter.
//! The interface supports everything the paper's designs need:
//!
//! - enqueue may *reject the arriving packet* (tail drop) or *evict resident
//!   packets* (probe push-out, §3.1: "incoming data packets push out
//!   resident probe packets if the buffer is full");
//! - dequeue may answer "nothing is eligible before time T"
//!   ([`Dequeue::NotBefore`]), which is how non-work-conserving rate-limited
//!   schedulers (§2.1.2) are expressed without giving qdiscs access to the
//!   event queue.
//!
//! Implementations: [`DropTail`], [`Red`], [`StrictPrio`], [`Drr`], and the
//! [`VirtualQueue`] ECN marker that wraps a link.

mod drr;
mod fifo;
mod prio;
mod red;
mod vq;

pub use drr::Drr;
pub use fifo::DropTail;
pub use prio::{class_band_map, Band, StrictPrio};
pub use red::{Red, RedMode, RedParams};
pub use vq::VirtualQueue;

use crate::packet::Packet;
use simcore::SimTime;

/// Capacity limit for a buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Limit {
    /// At most this many packets.
    Packets(usize),
    /// At most this many bytes.
    Bytes(u64),
}

impl Limit {
    /// Would a buffer currently holding (`pkts`, `bytes`) overflow by
    /// admitting one more packet of `size` bytes?
    #[inline]
    pub fn would_overflow(self, pkts: usize, bytes: u64, size: u32) -> bool {
        match self {
            Limit::Packets(n) => pkts + 1 > n,
            Limit::Bytes(b) => bytes + size as u64 > b,
        }
    }
}

/// Result of an enqueue attempt.
#[derive(Debug, Default)]
pub struct Enqueued {
    /// The arriving packet was accepted into the buffer.
    pub accepted: bool,
    /// Resident packets evicted to make room (probe push-out). Empty in the
    /// common case; `Vec::new()` does not allocate.
    pub evicted: Vec<Packet>,
}

impl Enqueued {
    /// The packet was queued and nothing was evicted.
    pub fn ok() -> Self {
        Enqueued {
            accepted: true,
            evicted: Vec::new(),
        }
    }

    /// The packet was tail-dropped.
    pub fn dropped() -> Self {
        Enqueued {
            accepted: false,
            evicted: Vec::new(),
        }
    }
}

/// Result of a dequeue attempt.
#[derive(Debug)]
pub enum Dequeue {
    /// A packet is ready to transmit.
    Packet(Packet),
    /// Packets are queued but none is eligible before this time (rate
    /// limiter exhausted). The link schedules a retry then.
    NotBefore(SimTime),
    /// The buffer is empty.
    Empty,
}

/// A queueing discipline.
///
/// Implementations must be `Send` so whole simulations can run on worker
/// threads.
pub trait Qdisc: Send {
    /// Offer `pkt` to the buffer at time `now`, appending any evicted
    /// resident packets (probe push-out, longest-queue drop) to `evicted`.
    /// Returns whether the arriving packet was accepted.
    ///
    /// `evicted` is caller-owned scratch: the link layer reuses one buffer
    /// across all enqueues so the per-packet hot path allocates nothing.
    fn enqueue_into(&mut self, pkt: Packet, now: SimTime, evicted: &mut Vec<Packet>) -> bool;

    /// Offer `pkt` to the buffer at time `now`.
    ///
    /// Convenience wrapper over [`enqueue_into`](Qdisc::enqueue_into) that
    /// allocates a fresh eviction list per call; fine for tests and cold
    /// paths, avoid in per-packet loops.
    fn enqueue(&mut self, pkt: Packet, now: SimTime) -> Enqueued {
        let mut evicted = Vec::new();
        let accepted = self.enqueue_into(pkt, now, &mut evicted);
        Enqueued { accepted, evicted }
    }

    /// Ask for the next packet to transmit at time `now`.
    fn dequeue(&mut self, now: SimTime) -> Dequeue;

    /// Packets currently buffered.
    fn len_packets(&self) -> usize;

    /// Bytes currently buffered.
    fn len_bytes(&self) -> u64;

    /// True if no packets are buffered.
    fn is_empty(&self) -> bool {
        self.len_packets() == 0
    }
}

/// A token bucket used as a dequeue rate limiter (non-work-conserving
/// schedulers) and exported for reuse by traffic policers.
///
/// Tokens are tracked in *bytes* with nanosecond-exact accrual.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_bps: u64,
    depth_bytes: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket that refills at `rate_bps` and holds at most `depth_bytes`,
    /// starting full.
    pub fn new(rate_bps: u64, depth_bytes: f64) -> Self {
        assert!(rate_bps > 0 && depth_bytes > 0.0);
        TokenBucket {
            rate_bps,
            depth_bytes,
            tokens: depth_bytes,
            last: SimTime::ZERO,
        }
    }

    /// Refill rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_bps as f64 / 8.0).min(self.depth_bytes);
        self.last = now;
    }

    /// Current token level in bytes.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Try to spend `bytes` tokens; returns true on success.
    pub fn try_take(&mut self, bytes: u32, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens + 1e-9 >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Earliest time at which `bytes` tokens will be available (never
    /// earlier than `now`). Panics if `bytes` exceeds the bucket depth —
    /// such a packet could never be sent.
    pub fn ready_at(&mut self, bytes: u32, now: SimTime) -> SimTime {
        assert!(
            bytes as f64 <= self.depth_bytes,
            "packet larger than bucket depth"
        );
        self.refill(now);
        if self.tokens + 1e-9 >= bytes as f64 {
            now
        } else {
            let deficit = bytes as f64 - self.tokens;
            let secs = deficit * 8.0 / self.rate_bps as f64;
            // Round up to at least one tick: a sub-nanosecond deficit must
            // not produce "ready now" while try_take still refuses.
            let d =
                simcore::SimDuration::from_secs_f64(secs).max(simcore::SimDuration::from_nanos(1));
            now + d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn limit_overflow_checks() {
        assert!(Limit::Packets(2).would_overflow(2, 0, 1));
        assert!(!Limit::Packets(2).would_overflow(1, 0, 1));
        assert!(Limit::Bytes(100).would_overflow(0, 90, 11));
        assert!(!Limit::Bytes(100).would_overflow(0, 90, 10));
    }

    #[test]
    fn token_bucket_accrues_and_caps() {
        let mut tb = TokenBucket::new(8_000, 1_000.0); // 1000 B/s refill, 1000 B depth
        let t0 = SimTime::ZERO;
        assert!(tb.try_take(1_000, t0)); // starts full
        assert!(!tb.try_take(100, t0));
        let t1 = t0 + SimDuration::from_millis(100); // +100 B
        assert!(tb.try_take(100, t1));
        // Far future: capped at depth, not unbounded.
        let t2 = t1 + SimDuration::from_secs(1_000);
        assert!((tb.available(t2) - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn token_bucket_ready_at() {
        let mut tb = TokenBucket::new(8_000, 1_000.0);
        let t0 = SimTime::ZERO;
        assert!(tb.try_take(1_000, t0));
        // Need 500 bytes: at 1000 B/s that's 0.5 s away.
        let ready = tb.ready_at(500, t0);
        assert_eq!(ready, t0 + SimDuration::from_millis(500));
        // And it is actually takeable then.
        assert!(tb.try_take(500, ready));
    }

    #[test]
    #[should_panic]
    fn oversized_packet_panics() {
        let mut tb = TokenBucket::new(8_000, 100.0);
        tb.ready_at(200, SimTime::ZERO);
    }
}
