//! # netsim — packet-level network simulation substrate
//!
//! The workspace's middle layer — the stand-in for the ns-2 models the
//! paper used (§3.1): store-and-forward
//! links driven by a discrete-event calendar, the router queueing
//! mechanisms the paper's architectural discussion needs (drop-tail, RED,
//! strict priority with probe push-out and aggregate rate limits, DRR fair
//! queueing, virtual-queue ECN marking), static minimum-hop routing, and an
//! ns-2-style [`Agent`] framework for endpoints.
//!
//! Layering:
//!
//! ```text
//!   eac / traffic / tcpsim agents      (endpoints)
//!            │  Agent trait, Api
//!   ┌────────┴─────────┐
//!   │  Sim (run loop)  │  Event calendar (simcore::EventQueue)
//!   │  Network         │  routing, inject/forward
//!   │  Link            │  bandwidth, propagation, stats
//!   │  Qdisc           │  DropTail / Red / StrictPrio / Drr (+ VirtualQueue)
//!   └──────────────────┘
//! ```

pub mod audit;
pub mod fault;
pub mod link;
pub mod packet;
pub mod qdisc;
pub mod sim;
pub mod topo;
pub mod trace;

pub use audit::{check_conservation, AuditCounters, AuditError};
pub use fault::{FaultPlan, FaultStats, Impairment, LinkFlap};
pub use link::{ClassStats, Link, LinkStats};
pub use packet::{FlowId, LinkId, NodeId, Packet, TrafficClass};
pub use qdisc::{
    class_band_map, Band, Dequeue, DropTail, Drr, Enqueued, Limit, Qdisc, Red, RedMode, RedParams,
    StrictPrio, TokenBucket, VirtualQueue,
};
pub use sim::{Agent, Api, Event, RunError, Sim};
pub use topo::Network;
pub use trace::{TraceKind, TraceRecord, Tracer};
