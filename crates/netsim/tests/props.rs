//! Property-based tests of the queueing disciplines' invariants.

use netsim::{
    Dequeue, DropTail, Drr, Enqueued, FlowId, Limit, NodeId, Packet, Qdisc, StrictPrio,
    TokenBucket, TrafficClass,
};
use proptest::prelude::*;
use simcore::{SimDuration, SimTime};

fn pkt(id: u64, flow: u64, size: u32, class: TrafficClass) -> Packet {
    Packet::new(
        id,
        FlowId(flow),
        NodeId(0),
        NodeId(1),
        size,
        class,
        id,
        SimTime::ZERO,
    )
}

/// An arbitrary workload step: enqueue (with class/size) or dequeue.
#[derive(Clone, Debug)]
enum Step {
    Enq { flow: u64, size: u32, class: u8 },
    Deq,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..8, 40u32..1500, 0u8..4).prop_map(|(flow, size, class)| Step::Enq {
                flow,
                size,
                class
            }),
            Just(Step::Deq),
        ],
        1..400,
    )
}

fn class_of(idx: u8) -> TrafficClass {
    TrafficClass::ALL[idx as usize % TrafficClass::COUNT]
}

/// Run a workload and check conservation: every packet offered is either
/// rejected at enqueue, evicted, dequeued, or still queued at the end.
fn check_conservation(q: &mut dyn Qdisc, steps: &[Step]) -> Result<(), TestCaseError> {
    let now = SimTime::ZERO;
    let (mut offered, mut rejected, mut evicted, mut dequeued) = (0u64, 0u64, 0u64, 0u64);
    let mut id = 0;
    for s in steps {
        match s {
            Step::Enq { flow, size, class } => {
                offered += 1;
                let Enqueued {
                    accepted,
                    evicted: ev,
                } = q.enqueue(pkt(id, *flow, *size, class_of(*class)), now);
                id += 1;
                if !accepted {
                    rejected += 1;
                }
                evicted += ev.len() as u64;
            }
            Step::Deq => {
                if let Dequeue::Packet(_) = q.dequeue(now) {
                    dequeued += 1;
                }
            }
        }
    }
    prop_assert_eq!(
        offered,
        rejected + evicted + dequeued + q.len_packets() as u64,
        "packet conservation violated"
    );
    Ok(())
}

proptest! {
    #[test]
    fn droptail_conserves_packets(s in steps(), limit in 1usize..64) {
        let mut q = DropTail::new(Limit::Packets(limit));
        check_conservation(&mut q, &s)?;
        prop_assert!(q.len_packets() <= limit);
    }

    #[test]
    fn droptail_byte_limit_never_exceeded(s in steps(), limit in 100u64..20_000) {
        let mut q = DropTail::new(Limit::Bytes(limit));
        let now = SimTime::ZERO;
        let mut id = 0;
        for step in &s {
            if let Step::Enq { flow, size, class } = step {
                let _ = q.enqueue(pkt(id, *flow, *size, class_of(*class)), now);
                id += 1;
                prop_assert!(q.len_bytes() <= limit);
            } else if let Dequeue::Packet(_) = q.dequeue(now) {}
        }
    }

    #[test]
    fn strict_prio_conserves_and_respects_shared_limit(s in steps(), limit in 1usize..64) {
        let mut q = StrictPrio::admission_queue(Limit::Packets(limit), true);
        check_conservation(&mut q, &s)?;
        // Shared buffer covers data+probe only; control is unbounded, so
        // bound the two shared bands via their own lens.
        prop_assert!(q.band_len(1) + q.band_len(2) <= limit);
    }

    /// Strict priority: the dequeued packet always comes from the highest
    /// non-empty band (no rate limiting configured here).
    #[test]
    fn strict_prio_dequeues_highest_band(s in steps()) {
        let mut q = StrictPrio::admission_queue(Limit::Packets(1000), true);
        let now = SimTime::ZERO;
        let mut id = 0;
        for step in &s {
            match step {
                Step::Enq { flow, size, class } => {
                    let _ = q.enqueue(pkt(id, *flow, *size, class_of(*class)), now);
                    id += 1;
                }
                Step::Deq => {
                    let top = [
                        (TrafficClass::Control, 0usize),
                        (TrafficClass::Data, 1),
                        (TrafficClass::Probe, 2),
                    ]
                    .iter()
                    .find(|(_, b)| q.band_len(*b) > 0)
                    .map(|(c, _)| *c);
                    if let Dequeue::Packet(p) = q.dequeue(now) {
                        // BestEffort maps onto the probe band in this queue.
                        let got = if p.class == TrafficClass::BestEffort {
                            TrafficClass::Probe
                        } else {
                            p.class
                        };
                        prop_assert_eq!(Some(got), top);
                    }
                }
            }
        }
    }

    /// Push-out only ever evicts from bands strictly below the arriving
    /// packet's priority (data evicts probes, never the reverse).
    #[test]
    fn pushout_only_evicts_lower_priority(s in steps(), limit in 1usize..32) {
        let mut q = StrictPrio::admission_queue(Limit::Packets(limit), true);
        let now = SimTime::ZERO;
        let mut id = 0;
        for step in &s {
            if let Step::Enq { flow, size, class } = step {
                let class = class_of(*class);
                let r = q.enqueue(pkt(id, *flow, *size, class), now);
                id += 1;
                for victim in &r.evicted {
                    // The probe band also carries best-effort packets in
                    // this queue's class map.
                    prop_assert!(
                        victim.class == TrafficClass::Probe
                            || victim.class == TrafficClass::BestEffort
                    );
                    prop_assert_eq!(class, TrafficClass::Data);
                }
            } else if let Dequeue::Packet(_) = q.dequeue(now) {}
        }
    }

    #[test]
    fn drr_conserves_packets(s in steps(), limit in 1usize..64, quantum in 1u64..4_000) {
        let mut q = Drr::new(quantum, Limit::Packets(limit));
        check_conservation(&mut q, &s)?;
        prop_assert!(q.len_packets() <= limit);
    }

    /// DRR long-run byte fairness: two continuously-backlogged flows with
    /// equal-size packets drain within one packet of each other.
    #[test]
    fn drr_equal_flows_fair(size in 40u32..1500, n in 10usize..80) {
        let mut q = Drr::new(size as u64, Limit::Packets(10_000));
        let now = SimTime::ZERO;
        for i in 0..n as u64 {
            let _ = q.enqueue(pkt(i * 2, 1, size, TrafficClass::Data), now);
            let _ = q.enqueue(pkt(i * 2 + 1, 2, size, TrafficClass::Data), now);
        }
        let mut counts = [0i64; 3];
        for _ in 0..n {
            if let Dequeue::Packet(p) = q.dequeue(now) {
                counts[p.flow.0 as usize] += 1;
            }
        }
        prop_assert!((counts[1] - counts[2]).abs() <= 1, "{counts:?}");
    }

    /// Token bucket conformance: over any horizon, accepted bytes never
    /// exceed depth + rate × time.
    #[test]
    fn token_bucket_conformance(
        rate in 8_000u64..10_000_000,
        depth in 200f64..100_000.0,
        offers in prop::collection::vec((0u64..1_000_000u64, 40u32..1500), 1..200)
    ) {
        let mut tb = TokenBucket::new(rate, depth);
        let mut t = SimTime::ZERO;
        let mut accepted_bytes = 0u64;
        for (gap_us, size) in offers {
            t += SimDuration::from_micros(gap_us);
            if size as f64 <= depth && tb.try_take(size, t) {
                accepted_bytes += size as u64;
            }
        }
        let budget = depth + rate as f64 / 8.0 * t.as_secs_f64() + 1.0;
        prop_assert!(accepted_bytes as f64 <= budget,
            "{accepted_bytes} bytes exceeds budget {budget}");
    }
}
