//! Integration tests for fault injection, the conservation auditor, and
//! the event-budget watchdog.

use netsim::qdisc::{DropTail, Limit, Qdisc};
use netsim::sim::{Agent, Api, RunError};
use netsim::{FaultPlan, FlowId, Impairment, Network, NodeId, Packet, Sim, TrafficClass};
use simcore::{SimDuration, SimRng, SimTime};
use std::any::Any;

fn dt() -> Box<dyn Qdisc> {
    Box::new(DropTail::new(Limit::Packets(1000)))
}

/// Sends `n` packets, one per `gap`, to `peer`.
struct Blaster {
    peer: NodeId,
    n: u64,
    gap: SimDuration,
    sent: u64,
}

impl Agent for Blaster {
    fn on_start(&mut self, api: &mut Api) {
        api.timer_in(SimDuration::ZERO, 0, 0);
    }
    fn on_packet(&mut self, _pkt: Packet, _api: &mut Api) {}
    fn on_timer(&mut self, _k: u32, _d: u64, api: &mut Api) {
        if self.sent < self.n {
            let pkt = Packet::new(
                self.sent,
                FlowId(1),
                api.node,
                self.peer,
                125,
                TrafficClass::Data,
                self.sent,
                api.now(),
            );
            api.send(pkt);
            self.sent += 1;
            api.timer_in(self.gap, 0, 0);
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct Counter {
    received: u64,
    dup_seqs: u64,
    seen: Vec<u64>,
}

impl Counter {
    fn new() -> Self {
        Counter {
            received: 0,
            dup_seqs: 0,
            seen: Vec::new(),
        }
    }
}

impl Agent for Counter {
    fn on_packet(&mut self, pkt: Packet, _api: &mut Api) {
        if self.seen.contains(&pkt.seq) {
            self.dup_seqs += 1;
        }
        self.seen.push(pkt.seq);
        self.received += 1;
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn two_node_sim(n: u64, gap_ms: u64) -> (Sim, NodeId, NodeId) {
    let mut net = Network::new();
    let a = net.add_node();
    let b = net.add_node();
    net.add_link(a, b, 1_000_000, SimDuration::from_millis(1), dt(), None);
    let mut sim = Sim::new(net);
    sim.attach(
        a,
        Box::new(Blaster {
            peer: b,
            n,
            gap: SimDuration::from_millis(gap_ms),
            sent: 0,
        }),
    );
    sim.attach(b, Box::new(Counter::new()));
    (sim, a, b)
}

#[test]
fn flap_drops_wire_packet_and_partitions_routing() {
    // 100 packets, one per 10 ms, 1 ms serialisation each. The flap at
    // 0.2505 s cuts the packet sent at 0.25 s mid-transmission (a
    // down-drop); sends during the outage find no route (counted drops);
    // delivery resumes once the link is back at 0.595 s.
    let (mut sim, _a, b) = two_node_sim(100, 10);
    let plan = FaultPlan::new().flap(
        netsim::LinkId(0),
        SimTime::from_secs_f64(0.2505),
        SimTime::from_secs_f64(0.595),
    );
    sim.install_faults(plan, SimRng::new(7));
    sim.run_to_completion();

    let stats = sim.net.fault_stats().copied().unwrap();
    assert_eq!(stats.down_drops, 1, "exactly the in-flight packet dies");
    // Sends at 0.26 .. 0.59 s (34 packets) happen while partitioned.
    assert_eq!(sim.net.audit.no_route_drops, 34);
    let got = sim.agent::<Counter>(b).unwrap().received;
    assert_eq!(got, 100 - 1 - 34);
    sim.check_conservation().unwrap();
}

#[test]
fn wire_loss_is_counted_and_conserved() {
    let (mut sim, _a, b) = two_node_sim(400, 2);
    let plan = FaultPlan::new().impair(Impairment::loss(
        netsim::LinkId(0),
        Some(TrafficClass::Data),
        0.25,
    ));
    sim.install_faults(plan, SimRng::new(11));
    sim.run_to_completion();

    let stats = sim.net.fault_stats().copied().unwrap();
    assert!(
        stats.wire_lost > 50 && stats.wire_lost < 150,
        "p=0.25 of 400: {}",
        stats.wire_lost
    );
    let got = sim.agent::<Counter>(b).unwrap().received;
    assert_eq!(got + stats.wire_lost, 400);
    sim.check_conservation().unwrap();
}

#[test]
fn duplication_delivers_extra_copies() {
    let (mut sim, _a, b) = two_node_sim(200, 2);
    let plan = FaultPlan::new().impair(Impairment {
        link: netsim::LinkId(0),
        class: None,
        loss: 0.0,
        duplicate: 0.3,
        reorder: 0.0,
        jitter: SimDuration::ZERO,
    });
    sim.install_faults(plan, SimRng::new(5));
    sim.run_to_completion();

    let stats = sim.net.fault_stats().copied().unwrap();
    assert!(stats.duplicated > 20, "duplicated {}", stats.duplicated);
    let counter = sim.agent::<Counter>(b).unwrap();
    assert_eq!(counter.received, 200 + stats.duplicated);
    assert_eq!(counter.dup_seqs, stats.duplicated);
    sim.check_conservation().unwrap();
}

#[test]
fn reorder_jitter_breaks_fifo_order() {
    let (mut sim, _a, b) = two_node_sim(300, 2);
    let plan = FaultPlan::new().impair(Impairment {
        link: netsim::LinkId(0),
        class: None,
        loss: 0.0,
        duplicate: 0.0,
        reorder: 0.5,
        jitter: SimDuration::from_millis(8),
    });
    sim.install_faults(plan, SimRng::new(13));
    sim.run_to_completion();

    let stats = sim.net.fault_stats().copied().unwrap();
    assert!(stats.reordered > 50, "reordered {}", stats.reordered);
    let counter = sim.agent::<Counter>(b).unwrap();
    assert_eq!(counter.received, 300);
    let sorted = {
        let mut s = counter.seen.clone();
        s.sort_unstable();
        s
    };
    assert_ne!(counter.seen, sorted, "jitter should reorder arrivals");
    sim.check_conservation().unwrap();
}

#[test]
fn identical_seed_and_plan_reproduce_identical_runs() {
    let run = |seed: u64| {
        let (mut sim, _a, b) = two_node_sim(250, 3);
        let plan = FaultPlan::new()
            .flap(
                netsim::LinkId(0),
                SimTime::from_secs_f64(0.2),
                SimTime::from_secs_f64(0.3),
            )
            .impair(Impairment {
                link: netsim::LinkId(0),
                class: None,
                loss: 0.1,
                duplicate: 0.1,
                reorder: 0.2,
                jitter: SimDuration::from_millis(5),
            });
        sim.install_faults(plan, SimRng::new(seed));
        sim.run_to_completion();
        let stats = sim.net.fault_stats().copied().unwrap();
        let seen = sim.agent::<Counter>(b).unwrap().seen.clone();
        (
            seen,
            stats.wire_lost,
            stats.duplicated,
            stats.reordered,
            stats.down_drops,
            sim.queue.events_fired(),
        )
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).0, run(43).0, "different seeds should diverge");
}

#[test]
fn no_route_is_a_counted_drop_not_a_panic() {
    // Single link flapped down forever-ish: injections while down and
    // after route recomputation find no path and are counted.
    let (mut sim, _a, _b) = two_node_sim(50, 10);
    let plan = FaultPlan::new().flap(
        netsim::LinkId(0),
        SimTime::from_secs_f64(0.05),
        SimTime::from_secs_f64(100.0),
    );
    sim.install_faults(plan, SimRng::new(1));
    sim.run_until(SimTime::from_secs(2));
    assert!(
        sim.net.audit.no_route_drops > 0,
        "sends while partitioned should be counted drops"
    );
    sim.check_conservation().unwrap();
}

#[test]
fn event_budget_turns_storms_into_errors() {
    /// Re-arms a zero-delay timer forever.
    struct Storm;
    impl Agent for Storm {
        fn on_start(&mut self, api: &mut Api) {
            api.timer_in(SimDuration::ZERO, 0, 0);
        }
        fn on_packet(&mut self, _p: Packet, _api: &mut Api) {}
        fn on_timer(&mut self, _k: u32, _d: u64, api: &mut Api) {
            api.timer_in(SimDuration::ZERO, 0, 0);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut net = Network::new();
    let a = net.add_node();
    net.add_node();
    let mut sim = Sim::new(net);
    sim.attach(a, Box::new(Storm));
    sim.set_event_budget(10_000);
    match sim.try_run_until(SimTime::from_secs(1)) {
        Err(RunError::EventBudgetExceeded { budget, .. }) => assert_eq!(budget, 10_000),
        other => panic!("expected budget error, got {other:?}"),
    }
}

#[test]
fn stray_timer_is_counted_not_fatal() {
    let mut net = Network::new();
    let a = net.add_node();
    net.add_node();
    let mut sim = Sim::new(net);
    sim.attach(a, Box::new(Counter::new()));
    // Arm a timer for node 1, which has no agent.
    sim.queue.schedule_at(
        SimTime::from_secs_f64(0.001),
        netsim::Event::Timer {
            node: NodeId(1),
            kind: 0,
            data: 0,
        },
    );
    sim.run_to_completion();
    assert_eq!(sim.net.audit.stray_timers, 1);
}
