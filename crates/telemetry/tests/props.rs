//! Property tests of the histogram-merge algebra.
//!
//! The pooled sweep merges per-seed metrics in seed order, but the
//! byte-identity guarantee (jobs 8 == jobs 1, PR 2) only holds if the
//! merge itself cannot observe ordering or grouping: bucket counts are
//! exact integers, so merging must form a commutative monoid and any
//! partition of the observations must produce the same histogram.

use proptest::prelude::*;
use telemetry::{LogHistogram, Metrics};

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// merge is commutative: a+b == b+a.
    #[test]
    fn merge_commutes(
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// merge is associative: (a+b)+c == a+(b+c).
    #[test]
    fn merge_associates(
        a in prop::collection::vec(any::<u64>(), 0..150),
        b in prop::collection::vec(any::<u64>(), 0..150),
        c in prop::collection::vec(any::<u64>(), 0..150),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Recording order is invisible: any permutation-ish regrouping of the
    /// observations (split at an arbitrary point, halves swapped) produces
    /// the identical histogram — the serial-vs-pooled equivalence in
    /// miniature.
    #[test]
    fn merge_is_order_independent(
        values in prop::collection::vec(any::<u64>(), 1..300),
        split in 0usize..10_000,
    ) {
        let cut = split % (values.len() + 1);
        let serial = hist_of(&values);
        let mut pooled = hist_of(&values[cut..]);
        pooled.merge(&hist_of(&values[..cut]));
        prop_assert_eq!(&serial, &pooled);
        // Quantiles and summary stats agree too, by consequence.
        prop_assert_eq!(serial.quantile(0.5), pooled.quantile(0.5));
        prop_assert_eq!(serial.count(), pooled.count());
        prop_assert_eq!(serial.max(), pooled.max());
    }

    /// The empty histogram is the identity element.
    #[test]
    fn empty_is_identity(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let h = hist_of(&values);
        let mut left = LogHistogram::new();
        left.merge(&h);
        let mut right = h.clone();
        right.merge(&LogHistogram::new());
        prop_assert_eq!(&left, &h);
        prop_assert_eq!(&right, &h);
    }

    /// The whole registry inherits the property: merging per-shard metrics
    /// in any grouping yields the same counters and histograms.
    #[test]
    fn registry_merge_is_partition_independent(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
        split in 0usize..10_000,
    ) {
        let cut = split % (values.len() + 1);
        let mk = |vs: &[u64]| {
            let mut m = Metrics::new();
            for &v in vs {
                m.inc("n", 1);
                m.observe("h", v);
            }
            m
        };
        let serial = mk(&values);
        let mut pooled = mk(&values[..cut]);
        pooled.merge(&mk(&values[cut..]));
        prop_assert_eq!(serial.counter("n"), pooled.counter("n"));
        prop_assert_eq!(serial.hist("h"), pooled.hist("h"));
    }
}
