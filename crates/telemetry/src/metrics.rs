//! Named counters, gauges and histograms behind one registry.
//!
//! Keys live in `BTreeMap`s so every iteration (serialization, gauge
//! column layout, merging) is in sorted-name order — a requirement for
//! the byte-identical serial-vs-pooled sweep guarantee.

use crate::hist::LogHistogram;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// A registry of named counters (`u64`, monotone), gauges (`f64`,
/// instantaneous) and log-bucketed histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LogHistogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `by` to a counter, creating it at zero.
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Set a gauge.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Add `by` (possibly negative) to a gauge, creating it at zero.
    pub fn add_gauge(&mut self, name: &str, by: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g += by;
        } else {
            self.gauges.insert(name.to_string(), by);
        }
    }

    /// Record one observation into a histogram, creating it empty.
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(v);
        } else {
            let mut h = LogHistogram::new();
            h.record(v);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Current counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value (0.0 if absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// A histogram by name.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Gauge names in sorted order (the sampler's column layout).
    pub fn gauge_names(&self) -> Vec<String> {
        self.gauges.keys().cloned().collect()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Fold another registry into this one: counters and gauges sum,
    /// histograms merge bucket-wise. Exact-integer counter/histogram
    /// merges are order-independent; the sweep folds in seed order so
    /// gauge sums are deterministic too.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }
}

impl Serialize for Metrics {
    fn to_value(&self) -> Value {
        let obj = |it: Vec<(String, Value)>| Value::Object(it);
        Value::Object(vec![
            (
                "counters".into(),
                obj(self
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                    .collect()),
            ),
            (
                "gauges".into(),
                obj(self
                    .gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Float(*v)))
                    .collect()),
            ),
            (
                "histograms".into(),
                obj(self
                    .hists
                    .iter()
                    .map(|(k, h)| (k.clone(), h.to_value()))
                    .collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let mut m = Metrics::new();
        m.inc("drops", 3);
        m.inc("drops", 2);
        m.set_gauge("flows", 4.0);
        m.add_gauge("flows", -1.0);
        m.observe("delay", 100);
        m.observe("delay", 200);
        assert_eq!(m.counter("drops"), 5);
        assert_eq!(m.gauge("flows"), 3.0);
        assert_eq!(m.hist("delay").unwrap().count(), 2);
        assert_eq!(m.counter("absent"), 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Metrics::new();
        a.inc("x", 1);
        a.observe("h", 10);
        let mut b = Metrics::new();
        b.inc("x", 2);
        b.inc("y", 7);
        b.set_gauge("g", 1.5);
        b.observe("h", 20);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        assert_eq!(a.gauge("g"), 1.5);
        assert_eq!(a.hist("h").unwrap().count(), 2);
    }

    #[test]
    fn serializes_in_sorted_key_order() {
        let mut m = Metrics::new();
        m.inc("zebra", 1);
        m.inc("alpha", 1);
        let json = serde_json::to_string(&m).unwrap();
        let za = json.find("zebra").unwrap();
        let al = json.find("alpha").unwrap();
        assert!(al < za, "{json}");
    }
}
