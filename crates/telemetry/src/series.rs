//! Columnar time-series: one row per sample tick, one `f64` column per
//! instrument, exported as CSV (header + rows) or JSONL.

use serde::{Serialize, Value};
use std::io::Write;
use std::path::Path;

/// A fixed-column table of samples indexed by simulation time.
///
/// Columns are frozen by the first [`set_columns`](Self::set_columns)
/// call; every row must match that width. Values print with Rust's
/// shortest-roundtrip `f64` formatting, so serialization is deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    columns: Vec<String>,
    times_ns: Vec<u64>,
    rows: Vec<Vec<f64>>,
}

impl TimeSeries {
    /// An empty series with no columns yet.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Freeze the column layout. Must be called before the first row.
    pub fn set_columns(&mut self, columns: Vec<String>) {
        assert!(
            self.rows.is_empty(),
            "column layout must be frozen before the first row"
        );
        self.columns = columns;
    }

    /// Whether the column layout is frozen.
    pub fn has_columns(&self) -> bool {
        !self.columns.is_empty()
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Append one sample row at `t_ns`.
    pub fn push_row(&mut self, t_ns: u64, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match the frozen column layout"
        );
        self.times_ns.push(t_ns);
        self.rows.push(values.to_vec());
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// One row's values (by index).
    pub fn row(&self, i: usize) -> (u64, &[f64]) {
        (self.times_ns[i], &self.rows[i])
    }

    /// One column's values over time, by name.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let ci = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[ci]).collect())
    }

    /// Render as CSV: `t_s,<col>,...` header, one row per sample.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (t, row) in self.times_ns.iter().zip(self.rows.iter()) {
            out.push_str(&format!("{}", *t as f64 / 1e9));
            for v in row {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Write the CSV to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }

    /// Element-wise mean across several series with the same columns,
    /// truncated to the shortest one (seeds can produce one ragged tick
    /// at the horizon). Times come from the first series.
    pub fn mean_across(all: &[&TimeSeries]) -> TimeSeries {
        let mut out = TimeSeries::new();
        let Some(first) = all.first() else {
            return out;
        };
        out.set_columns(first.columns.to_vec());
        let n_rows = all.iter().map(|s| s.len()).min().unwrap_or(0);
        let n = all.len() as f64;
        for i in 0..n_rows {
            let mut row = vec![0.0; first.columns.len()];
            for s in all {
                assert_eq!(s.columns, first.columns, "mean over mismatched columns");
                for (acc, v) in row.iter_mut().zip(s.rows[i].iter()) {
                    *acc += v;
                }
            }
            for acc in row.iter_mut() {
                *acc /= n;
            }
            out.push_row(first.times_ns[i], &row);
        }
        out
    }
}

impl Serialize for TimeSeries {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "columns".into(),
                Value::Array(self.columns.iter().map(|c| Value::Str(c.clone())).collect()),
            ),
            (
                "times_ns".into(),
                Value::Array(self.times_ns.iter().map(|t| Value::UInt(*t)).collect()),
            ),
            (
                "rows".into(),
                Value::Array(
                    self.rows
                        .iter()
                        .map(|r| Value::Array(r.iter().map(|v| Value::Float(*v)).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_layout_and_column_access() {
        let mut s = TimeSeries::new();
        s.set_columns(vec!["a".into(), "b".into()]);
        s.push_row(1_000_000_000, &[1.0, 2.5]);
        s.push_row(2_000_000_000, &[3.0, 4.0]);
        let csv = s.to_csv();
        assert_eq!(csv, "t_s,a,b\n1,1,2.5\n2,3,4\n");
        assert_eq!(s.column("b").unwrap(), vec![2.5, 4.0]);
        assert!(s.column("c").is_none());
    }

    #[test]
    fn mean_across_truncates_to_shortest() {
        let mut a = TimeSeries::new();
        a.set_columns(vec!["x".into()]);
        a.push_row(1, &[1.0]);
        a.push_row(2, &[5.0]);
        let mut b = TimeSeries::new();
        b.set_columns(vec!["x".into()]);
        b.push_row(1, &[3.0]);
        let m = TimeSeries::mean_across(&[&a, &b]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.row(0), (1, &[2.0][..]));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut s = TimeSeries::new();
        s.set_columns(vec!["a".into()]);
        s.push_row(0, &[1.0, 2.0]);
    }
}
