//! Flight recorder: a bounded ring of recent structured events.
//!
//! Always recording, never growing: the newest `capacity` events survive,
//! older ones are counted and discarded. When a run dies (a `RunError`, a
//! conservation-audit failure, a panicked sweep job) the ring is dumped to
//! JSONL so the last moments before the failure are inspectable.
//!
//! The handle is `Arc<Mutex<_>>`-cloneable so the sweep executor can keep
//! a reference outside a `catch_unwind` boundary while the simulation
//! records through its own clone; each simulation run owns exactly one
//! recorder, so the lock is uncontended.

use serde::{Serialize, Value};
use simcore::SimTime;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Monotone sequence number (survives ring eviction).
    pub seq: u64,
    /// Simulation time, nanoseconds.
    pub at_ns: u64,
    /// Event kind, e.g. `admission.accept`, `drop.queue`, `run.error`.
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

impl Serialize for FlightEvent {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("seq".into(), Value::UInt(self.seq)),
            ("t_s".into(), Value::Float(self.at_ns as f64 / 1e9)),
            ("kind".into(), Value::Str(self.kind.clone())),
            ("detail".into(), Value::Str(self.detail.clone())),
        ])
    }
}

struct Ring {
    capacity: usize,
    buf: VecDeque<FlightEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A cloneable handle to the event ring.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<Ring>>,
}

impl FlightRecorder {
    /// A recorder keeping the newest `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(Ring {
                capacity: capacity.max(1),
                buf: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
            })),
        }
    }

    /// Append an event, evicting the oldest past capacity.
    pub fn record(&self, at: SimTime, kind: &str, detail: impl Into<String>) {
        let mut r = self.inner.lock().expect("recorder lock");
        if r.buf.len() == r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
        let seq = r.next_seq;
        r.next_seq += 1;
        r.buf.push_back(FlightEvent {
            seq,
            at_ns: at.as_nanos(),
            kind: kind.to_string(),
            detail: detail.into(),
        });
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let r = self.inner.lock().expect("recorder lock");
        r.buf.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").buf.len()
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted past capacity so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("recorder lock").dropped
    }

    /// The retained events as JSONL (one JSON object per line). A header
    /// line records how many older events were evicted.
    pub fn to_jsonl(&self) -> String {
        let (events, dropped) = {
            let r = self.inner.lock().expect("recorder lock");
            (r.buf.iter().cloned().collect::<Vec<_>>(), r.dropped)
        };
        let mut out = String::new();
        let header = Value::Object(vec![
            ("kind".into(), Value::Str("flight.header".into())),
            ("retained".into(), Value::UInt(events.len() as u64)),
            ("evicted".into(), Value::UInt(dropped)),
        ]);
        out.push_str(&serde_json::to_string(&header).expect("header json"));
        out.push('\n');
        for ev in &events {
            out.push_str(&serde_json::to_string(ev).expect("event json"));
            out.push('\n');
        }
        out
    }

    /// Write the JSONL dump to `path`, creating parent directories.
    pub fn dump_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())
    }
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.inner.lock().expect("recorder lock");
        f.debug_struct("FlightRecorder")
            .field("capacity", &r.capacity)
            .field("len", &r.buf.len())
            .field("dropped", &r.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record(SimTime::from_nanos(i), "tick", format!("{i}"));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let evs = rec.snapshot();
        assert_eq!(evs[0].seq, 2);
        assert_eq!(evs[2].seq, 4);
        assert_eq!(evs[2].detail, "4");
    }

    #[test]
    fn jsonl_has_header_plus_one_line_per_event() {
        let rec = FlightRecorder::new(8);
        rec.record(SimTime::from_nanos(1_500_000_000), "drop.queue", "flow 7");
        let dump = rec.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("flight.header"));
        assert!(lines[1].contains("drop.queue"));
        assert!(lines[1].contains("1.5"));
    }

    #[test]
    fn clones_share_the_ring() {
        let a = FlightRecorder::new(4);
        let b = a.clone();
        b.record(SimTime::ZERO, "x", "");
        assert_eq!(a.len(), 1);
    }
}
