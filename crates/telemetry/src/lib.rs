//! # telemetry — observability for simulation runs
//!
//! Three instruments behind one hub, all zero-cost when disabled (the
//! simulator guards every touch point with a single `Option` check):
//!
//! - [`Metrics`]: named counters, gauges and log-bucketed (HDR-style)
//!   [`LogHistogram`]s. Exact-integer bucket counts make histogram merges
//!   associative, commutative and order-independent, so per-seed metrics
//!   merge deterministically across sweep workers.
//! - [`Sampler`]: periodic sampling driven by *simulation* time into a
//!   columnar [`TimeSeries`] (per-link queue depth, utilization, drop
//!   rates, admitted/probing flow gauges), exported as CSV.
//! - [`FlightRecorder`]: a bounded ring of recent structured events
//!   (admission verdicts, drops, flaps, watchdog trips) dumped to JSONL
//!   when a run dies, so post-mortems start with the final seconds of
//!   context instead of a bare error string.
//!
//! Observability is beyond the paper itself — it exists so the §3
//! experiments and the robustness extensions can be debugged from
//! instrument readings rather than re-runs. The crate is deliberately
//! low in the dependency graph (simcore + the serialization shims
//! only): `netsim` owns the hot-path touch points,
//! `eac` wires scenario plumbing, and `eac-bench` merges, aggregates and
//! exports across sweep grids.

pub mod hist;
pub mod metrics;
pub mod recorder;
pub mod sampler;
pub mod series;

pub use hist::{HistSummary, LogHistogram};
pub use metrics::Metrics;
pub use recorder::{FlightEvent, FlightRecorder};
pub use sampler::Sampler;
pub use series::TimeSeries;

use simcore::SimDuration;
use std::path::PathBuf;

/// The per-run instrument hub installed into a simulation.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// Counters, gauges, histograms.
    pub metrics: Metrics,
    /// Periodic time-series sampler.
    pub sampler: Sampler,
    /// Recent-event ring buffer.
    pub recorder: FlightRecorder,
}

/// How to instrument a run. `Default` gives a 1 s sampling period, a
/// 4096-event flight ring, no dump directory.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Sampler tick period, seconds of simulation time.
    pub sample_period_s: f64,
    /// Flight-recorder ring capacity.
    pub recorder_capacity: usize,
    /// Use this (shared) recorder handle instead of a fresh ring — the
    /// sweep executor passes one it retains outside `catch_unwind`.
    pub recorder: Option<FlightRecorder>,
    /// Where to dump the flight ring when the run fails; `None` leaves
    /// dumping to the caller.
    pub dump_dir: Option<PathBuf>,
    /// File-name stem for dumps (e.g. `d0_s1`).
    pub label: String,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_period_s: 1.0,
            recorder_capacity: 4096,
            recorder: None,
            dump_dir: None,
            label: "run".to_string(),
        }
    }
}

impl TelemetryConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the sampling period (seconds of simulation time).
    pub fn sample_period(mut self, secs: f64) -> Self {
        self.sample_period_s = secs;
        self
    }

    /// Set the flight-ring capacity.
    pub fn recorder_capacity(mut self, cap: usize) -> Self {
        self.recorder_capacity = cap;
        self
    }

    /// Record into an existing shared recorder handle.
    pub fn with_recorder(mut self, rec: FlightRecorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Dump the flight ring into `dir` when the run fails.
    pub fn dump_to(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dump_dir = Some(dir.into());
        self
    }

    /// Set the dump file-name stem.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Instantiate the instrument hub.
    pub fn build(&self) -> Telemetry {
        Telemetry {
            metrics: Metrics::new(),
            sampler: Sampler::new(SimDuration::from_secs_f64(self.sample_period_s)),
            recorder: self
                .recorder
                .clone()
                .unwrap_or_else(|| FlightRecorder::new(self.recorder_capacity)),
        }
    }
}
