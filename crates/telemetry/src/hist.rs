//! Log-bucketed (HDR-style) histogram over `u64` values.
//!
//! Buckets are exact below `2^SUB_BITS` and log-linear above: each octave
//! `[2^k, 2^{k+1})` is split into `2^SUB_BITS` equal-width sub-buckets,
//! bounding the relative quantization error at `2^-SUB_BITS` (~3% for the
//! default of 5) across the full 64-bit range. Counts are exact integers,
//! so merging histograms is associative, commutative and order-independent
//! — the property the deterministic sweep merge relies on (and that the
//! crate's proptests pin down).

use serde::{Serialize, Value};

/// Sub-bucket resolution: `2^SUB_BITS` sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// A dense log-linear histogram of `u64` observations.
///
/// The backing vector grows lazily to the highest bucket touched; two
/// histograms holding the same observations in any order (or merged from
/// any partition of them) compare equal.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value.
    fn index(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let shift = msb - SUB_BITS;
            (((shift + 1) << SUB_BITS) + ((v >> shift) as u32) - SUB as u32) as usize
        }
    }

    /// Inclusive lower bound of a bucket.
    fn lower_bound(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB {
            idx
        } else {
            let seg = idx >> SUB_BITS;
            let off = idx & (SUB - 1);
            (SUB + off) << (seg - 1)
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        let idx = Self::index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Forget every observation.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Fold another histogram into this one (bucket-wise integer sums).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (exact, not quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the observations (exact sum / count).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the bucket holding the `q`-quantile observation
    /// (`0 < q <= 1`); 0 when empty. Deterministic: nearest-rank on the
    /// cumulative bucket counts.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::lower_bound(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::lower_bound(i), c))
            .collect()
    }
}

impl Serialize for LogHistogram {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".into(), Value::UInt(self.count)),
            ("min".into(), Value::UInt(self.min())),
            ("max".into(), Value::UInt(self.max)),
            ("mean".into(), Value::Float(self.mean())),
            ("p50".into(), Value::UInt(self.quantile(0.50))),
            ("p90".into(), Value::UInt(self.quantile(0.90))),
            ("p99".into(), Value::UInt(self.quantile(0.99))),
            (
                "buckets".into(),
                Value::Array(
                    self.buckets()
                        .into_iter()
                        .map(|(lo, c)| Value::Array(vec![Value::UInt(lo), Value::UInt(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Scalar summary of a delay histogram, in milliseconds — the shape
/// end-of-run [`Report`](../../eac/metrics/struct.Report.html)s embed.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Minimum, ms.
    pub min_ms: f64,
    /// Median, ms.
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Maximum, ms.
    pub max_ms: f64,
}

impl HistSummary {
    /// Summarize a histogram whose observations are nanoseconds.
    pub fn from_nanos(h: &LogHistogram) -> HistSummary {
        let ms = |v: u64| v as f64 / 1e6;
        HistSummary {
            count: h.count(),
            min_ms: ms(h.min()),
            p50_ms: ms(h.quantile(0.50)),
            p90_ms: ms(h.quantile(0.90)),
            p99_ms: ms(h.quantile(0.99)),
            max_ms: ms(h.max()),
        }
    }

    /// Rebuild a summary from its serialized JSON object (the inverse of
    /// `Serialize`, for the reproduction gate re-reading `results/*.json`).
    /// Missing keys default to zero so reports written before the summary
    /// existed still parse.
    pub fn from_json(v: &Value) -> HistSummary {
        let num = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        HistSummary {
            count: v.get("count").and_then(Value::as_u64).unwrap_or(0),
            min_ms: num("min_ms"),
            p50_ms: num("p50_ms"),
            p90_ms: num("p90_ms"),
            p99_ms: num("p99_ms"),
            max_ms: num("max_ms"),
        }
    }

    /// Mean of several summaries: counts sum, quantiles average (an
    /// approximation — quantiles do not compose exactly across runs, but
    /// the per-seed histograms are already summarized by the time reports
    /// are averaged).
    pub fn average(all: &[&HistSummary]) -> HistSummary {
        if all.is_empty() {
            return HistSummary::default();
        }
        let n = all.len() as f64;
        HistSummary {
            count: all.iter().map(|s| s.count).sum(),
            min_ms: all.iter().map(|s| s.min_ms).sum::<f64>() / n,
            p50_ms: all.iter().map(|s| s.p50_ms).sum::<f64>() / n,
            p90_ms: all.iter().map(|s| s.p90_ms).sum::<f64>() / n,
            p99_ms: all.iter().map(|s| s.p99_ms).sum::<f64>() / n,
            max_ms: all.iter().map(|s| s.max_ms).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_lower_bound_roundtrip() {
        for v in (0..2048u64).chain([4097, 1 << 20, (1 << 20) + 12345, u64::MAX / 2, u64::MAX]) {
            let idx = LogHistogram::index(v);
            let lo = LogHistogram::lower_bound(idx);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            // The next bucket starts above v (widened to u128: the bound
            // of the very last bucket exceeds u64).
            let next = (idx + 1) as u128;
            let next_lo = if next < SUB as u128 {
                next
            } else {
                let (seg, off) = (next >> SUB_BITS, next & (SUB as u128 - 1));
                (SUB as u128 + off) << (seg - 1)
            };
            assert!(next_lo > v as u128, "next bucket {next_lo} not above {v}");
            // Relative quantization error bounded by 2^-SUB_BITS.
            if v >= SUB {
                assert!((v - lo) as f64 / v as f64 <= 1.0 / SUB as f64);
            } else {
                assert_eq!(lo, v);
            }
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1_000_000);
        let (p50, p90, p99) = (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
        // Nearest-rank p50 of 1k..=1M uniform: ~500k, within bucket error.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.05, "{p50}");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let values_a = [1u64, 5, 900, 1 << 30];
        let values_b = [0u64, 5, 77, 1 << 40];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in values_a {
            a.record(v);
            whole.record(v);
        }
        for v in values_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn summary_average_sums_counts() {
        let mut h = LogHistogram::new();
        h.record(2_000_000); // 2 ms
        let s = HistSummary::from_nanos(&h);
        assert_eq!(s.count, 1);
        assert!((s.max_ms - 2.0).abs() < 1e-9);
        let avg = HistSummary::average(&[&s, &s]);
        assert_eq!(avg.count, 2);
        assert!((avg.p50_ms - s.p50_ms).abs() < 1e-9);
    }
}
