//! Periodic sampling driven by simulation time.
//!
//! The simulator checks [`Sampler::due`] against the timestamp of the
//! event it is about to dispatch; when a tick boundary has been crossed
//! the instrumented state is read and stamped with the exact tick time
//! (`k * period`), so sample times never depend on event spacing.
//! Sampling is sample-and-hold at event granularity: an idle gap longer
//! than one period emits one row per elapsed tick with unchanged values.

use crate::series::TimeSeries;
use simcore::{SimDuration, SimTime};

/// Emits evenly spaced sample ticks into a columnar [`TimeSeries`].
#[derive(Clone, Debug)]
pub struct Sampler {
    period: SimDuration,
    next_at: SimTime,
    /// The collected samples.
    pub series: TimeSeries,
}

impl Sampler {
    /// A sampler ticking every `period`, first at `period` (not at 0:
    /// time zero predates the warm-up and holds no signal).
    pub fn new(period: SimDuration) -> Self {
        assert!(period.as_nanos() > 0, "sample period must be positive");
        Sampler {
            period,
            next_at: SimTime::ZERO + period,
            series: TimeSeries::new(),
        }
    }

    /// Whether a tick boundary is at or before `now`.
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_at
    }

    /// Consume the pending tick, returning its timestamp and advancing
    /// to the next boundary. Call only when [`due`](Self::due).
    pub fn tick(&mut self) -> SimTime {
        let at = self.next_at;
        self.next_at += self.period;
        at
    }

    /// The sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_land_on_period_multiples() {
        let mut s = Sampler::new(SimDuration::from_secs(2));
        assert!(!s.due(SimTime::from_secs_f64(1.0)));
        assert!(s.due(SimTime::from_secs_f64(2.0)));
        assert_eq!(s.tick(), SimTime::from_secs_f64(2.0));
        assert!(!s.due(SimTime::from_secs_f64(3.9)));
        // A long gap leaves several ticks pending, drained one by one.
        let now = SimTime::from_secs_f64(9.0);
        let mut ticks = Vec::new();
        while s.due(now) {
            ticks.push(s.tick().as_nanos() / 1_000_000_000);
        }
        assert_eq!(ticks, vec![4, 6, 8]);
    }
}
