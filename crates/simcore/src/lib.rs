//! # simcore — deterministic discrete-event simulation engine
//!
//! The bottom layer of the workspace: every other crate (netsim's packet
//! substrate, the traffic sources, the eac protocol, the bench sweeps)
//! schedules through this engine, and it in turn knows nothing about
//! networking or the paper — it exists so the §3 simulation methodology
//! (long horizons, warm-up discard, seed averaging) is exactly
//! repeatable. Provides:
//!
//! - [`SimTime`] / [`SimDuration`]: integer-nanosecond time, so event
//!   ordering never depends on floating-point rounding;
//! - [`EventQueue`]: a calendar-queue event calendar (bucketed timer wheel
//!   with an overflow heap) with a monotone sequence number for stable FIFO
//!   ordering of simultaneous events; [`queue::HeapEventQueue`] is the
//!   binary-heap reference implementation it is property-tested against;
//! - [`rng::SimRng`]: a seeded RNG with cheap derived streams and the
//!   distribution samplers the paper's workloads need (exponential, Pareto);
//! - [`stats`]: statistics accumulators (Welford mean/variance,
//!   time-weighted averages, counters, fixed-bin histograms).
//!
//! The engine is deliberately synchronous and single-threaded per
//! simulation run: determinism is a feature (identical seeds produce
//! bit-identical runs). Parallelism belongs one level up, across runs.

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use queue::{EventQueue, HeapEventQueue, QueueSnapshot, ScheduleViolation};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
