//! Statistics accumulators.
//!
//! The experiments report means, variances, rates and time-weighted
//! averages measured *after a warm-up period*; every accumulator here
//! supports `reset_at` so warm-up transients can be discarded in place.

use crate::time::SimTime;

/// Streaming mean/variance via Welford's algorithm.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Discard all observations.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue length,
/// number of flows in the system).
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_t: SimTime,
    value: f64,
    area: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial `value`.
    pub fn new(t0: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_t: t0,
            value,
            area: 0.0,
            start: t0,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.area += self.value * now.since(self.last_t).as_secs_f64();
        self.last_t = now;
        self.value = value;
    }

    /// Record an increment (convenience for counters of flows etc.).
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-average over `[start, now]` (0.0 for an empty interval).
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        let area = self.area + self.value * now.since(self.last_t).as_secs_f64();
        area / total
    }

    /// Forget everything before `now` (keeping the current value); used to
    /// discard warm-up.
    pub fn reset_at(&mut self, now: SimTime) {
        self.area = 0.0;
        self.last_t = now;
        self.start = now;
    }
}

/// Monotone event counter that supports a warm-up snapshot: `since_mark()`
/// reports events after the most recent `mark()`.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    total: u64,
    mark: u64,
}

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.total += 1;
    }

    /// Increment by `k`.
    #[inline]
    pub fn add(&mut self, k: u64) {
        self.total += k;
    }

    /// Lifetime total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Snapshot the current total as the new baseline.
    pub fn mark(&mut self) {
        self.mark = self.total;
    }

    /// Events counted since the last `mark()` (or since creation).
    pub fn since_mark(&self) -> u64 {
        self.total - self.mark
    }
}

/// Fixed-width histogram over `[lo, hi)` with saturating outer bins,
/// used for distributional sanity checks in tests and examples.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// `nbins` equal bins over `[lo, hi)`. Panics on a degenerate range.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            count: 0,
            sum: 0.0,
        }
    }

    /// Add an observation; values outside the range land in the edge bins.
    pub fn add(&mut self, x: f64) {
        let n = self.bins.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = if frac < 0.0 {
            0
        } else {
            ((frac * n as f64) as usize).min(n - 1)
        };
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q` in \[0,1\] from the binned data (bin lower edge).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return self.lo;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut acc = 0;
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, b) in self.bins.iter().enumerate() {
            acc += b;
            if acc >= target {
                return self.lo + i as f64 * w;
            }
        }
        self.hi
    }
}

/// A ratio-of-counters metric (losses/sent, marks/received, ...), with
/// warm-up marking on both numerator and denominator.
#[derive(Clone, Debug, Default)]
pub struct Ratio {
    pub num: Counter,
    pub den: Counter,
}

impl Ratio {
    /// Zeroed ratio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Numerator/denominator since the last mark (0.0 if denominator is 0).
    pub fn value(&self) -> f64 {
        let d = self.den.since_mark();
        if d == 0 {
            0.0
        } else {
            self.num.since_mark() as f64 / d as f64
        }
    }

    /// Mark both counters (start of measurement window).
    pub fn mark(&mut self) {
        self.num.mark();
        self.den.mark();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn welford_matches_direct() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 5);
        w.reset();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn time_weighted_piecewise() {
        let t0 = SimTime::ZERO;
        let mut tw = TimeWeighted::new(t0, 0.0);
        tw.set(SimTime::from_secs(10), 5.0); // 0 for 10s
        tw.set(SimTime::from_secs(20), 10.0); // 5 for 10s
        let avg = tw.average(SimTime::from_secs(30)); // 10 for 10s
        assert!((avg - (0.0 * 10.0 + 5.0 * 10.0 + 10.0 * 10.0) / 30.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_reset_discards_warmup() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 100.0);
        tw.reset_at(SimTime::from_secs(50));
        tw.set(SimTime::from_secs(60), 0.0);
        // 100 for 10s then 0 for 10s, measured from t=50.
        assert!((tw.average(SimTime::from_secs(70)) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_secs(1), 2.0);
        assert_eq!(tw.current(), 3.0);
        tw.add(SimTime::from_secs(2), -3.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn counter_marking() {
        let mut c = Counter::new();
        c.add(10);
        c.mark();
        c.inc();
        c.inc();
        assert_eq!(c.total(), 12);
        assert_eq!(c.since_mark(), 2);
    }

    #[test]
    fn ratio_basics() {
        let mut r = Ratio::new();
        r.den.add(100);
        r.num.add(5);
        assert!((r.value() - 0.05).abs() < 1e-12);
        r.mark();
        assert_eq!(r.value(), 0.0);
        r.den.add(10);
        r.num.add(1);
        assert!((r.value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.add(i as f64 / 10.0); // 0.0 .. 9.9 uniformly
        }
        assert_eq!(h.count(), 100);
        assert!(h.bins().iter().all(|&b| b == 10));
        assert!((h.mean() - 4.95).abs() < 1e-9);
        assert!((h.quantile(0.5) - 4.0).abs() < 1.01);
        // Out-of-range values saturate.
        h.add(-5.0);
        h.add(50.0);
        assert_eq!(h.bins()[0], 11);
        assert_eq!(h.bins()[9], 11);
    }

    #[test]
    fn time_weighted_zero_interval() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 3.0);
        assert_eq!(tw.average(SimTime::from_secs(5)), 0.0);
        let later = SimTime::from_secs(5) + SimDuration::from_nanos(1);
        assert!((tw.average(later) - 3.0).abs() < 1e-9);
    }
}
