//! Integer simulation time.
//!
//! All simulation timestamps are unsigned nanoseconds since the start of the
//! run. 64 bits of nanoseconds cover ~584 years, far beyond any simulation
//! horizon, while keeping event ordering exact (no float rounding). A
//! separate [`SimDuration`] type prevents accidentally adding two instants.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Nanoseconds per second, as used throughout the crate.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant in simulation time (nanoseconds since run start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounded to the nearest nanosecond).
    ///
    /// Panics on negative or non-finite input: simulation time never runs
    /// backwards and a NaN timestamp is always a bug at the call site.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid SimTime seconds: {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since run start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start, as f64 (for reporting; never for ordering).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`. Saturates at zero rather than wrapping,
    /// so a stale timestamp produces a zero interval instead of ~584 years.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounded to the nearest nanosecond).
    ///
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "invalid SimDuration seconds: {s}"
        );
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// The exact transmission time of `bytes` at `bits_per_sec`, rounded to
    /// the nearest nanosecond. `bits_per_sec` must be nonzero.
    #[inline]
    pub fn transmission(bytes: u32, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "zero-rate link");
        let bits = bytes as u128 * 8;
        let ns = (bits * NANOS_PER_SEC as u128 + (bits_per_sec as u128 / 2)) / bits_per_sec as u128;
        SimDuration(ns as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as f64 (for reporting and rate computation).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl SimDuration {
    /// Multiply by `k`, saturating at the representable maximum instead of
    /// panicking. Use for geometric growth (exponential back-off) where
    /// the factor is attacker- or parameter-controlled.
    #[inline]
    #[must_use]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_millis(20).as_nanos(), 20_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert!((SimTime::from_secs_f64(2.25).as_secs_f64() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(5);
        assert_eq!(t + d, SimTime::from_secs(15));
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO); // saturates
        assert_eq!(d * 3, SimDuration::from_secs(15));
        assert_eq!(d / 2, SimDuration::from_secs_f64(2.5));
    }

    #[test]
    fn transmission_time_exact() {
        // 125 bytes at 10 Mbps = 1000 bits / 1e7 bps = 100 microseconds.
        assert_eq!(
            SimDuration::transmission(125, 10_000_000),
            SimDuration::from_micros(100)
        );
        // 1500 bytes at 1 Gbps = 12 microseconds.
        assert_eq!(
            SimDuration::transmission(1500, 1_000_000_000),
            SimDuration::from_micros(12)
        );
    }

    #[test]
    fn transmission_rounds_to_nearest() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s -> 2666666667 ns (round up from .666..).
        assert_eq!(SimDuration::transmission(1, 3).as_nanos(), 2_666_666_667);
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_nanos(1) > SimDuration::ZERO);
    }
}
