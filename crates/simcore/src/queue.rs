//! The event calendar.
//!
//! A binary heap keyed on `(time, sequence)`. The monotone sequence number
//! guarantees that events scheduled for the same instant fire in the order
//! they were scheduled (FIFO), which keeps simulations deterministic and
//! makes "schedule B right after A" reasoning valid.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event calendar holding events of type `E`.
///
/// Tracks the current simulation clock: the clock advances to an event's
/// timestamp when that event is popped. Scheduling in the past is a bug and
/// panics (it would silently reorder causality otherwise).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// The current simulation clock.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events fired so far (for throughput reporting).
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` at absolute time `at`. Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` to fire `delay` after the current clock.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Drop every pending event (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
        assert_eq!(q.now(), t);
    }

    #[test]
    fn schedule_relative_to_clock() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(1), 1u32);
        q.pop().unwrap();
        q.schedule_in(SimDuration::from_secs(1), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(SimDuration::ZERO, ());
        q.schedule_in(SimDuration::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.events_fired(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), 10u64);
        q.schedule_at(SimTime::from_secs(4), 4);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 4);
        q.schedule_at(SimTime::from_secs(6), 6);
        q.schedule_at(SimTime::from_secs(5), 5);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, vec![5, 6, 10]);
    }
}
