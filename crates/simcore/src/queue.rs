//! The event calendar.
//!
//! Two implementations share one contract: events keyed on `(time, seq)`
//! pop in exact nondecreasing `(time, seq)` order. The monotone sequence
//! number guarantees that events scheduled for the same instant fire in
//! the order they were scheduled (FIFO), which keeps simulations
//! deterministic and makes "schedule B right after A" reasoning valid.
//!
//! - [`EventQueue`] — the production calendar: a non-sliding calendar
//!   queue (bucketed timer wheel) with a far-future overflow heap. The
//!   near window covers [`NUM_BUCKETS`] buckets of `2^`[`WIDTH_BITS`] ns
//!   each (~67 ms), which is wide enough that the packet-level hot path
//!   (transmission completions, 20 ms propagation deliveries, dequeue
//!   wake-ups) lands in O(1) buckets; only long-lived protocol timers
//!   (flow arrivals, lifetimes, probe deadlines) pay the overflow heap.
//!   Bucket storage and the active-bucket heap retain their capacity
//!   across a run, so steady-state scheduling allocates nothing.
//! - [`HeapEventQueue`] — the original binary-heap calendar, kept as the
//!   reference implementation for differential property tests and the
//!   engine benchmarks.
//!
//! Because `(time, seq)` is a total order, both implementations produce
//! bit-identical pop sequences; `tests/props.rs` checks them against each
//! other on random schedules (including same-instant ties).

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the calendar bucket width in nanoseconds (2^15 ns ≈ 32.8 µs).
pub const WIDTH_BITS: u32 = 15;
/// Number of buckets in the near window (must be a multiple of 64).
pub const NUM_BUCKETS: usize = 2048;
const OCC_WORDS: usize = NUM_BUCKETS / 64;

/// A scheduling-into-the-past violation recorded in lenient mode.
///
/// Scheduling behind the clock would silently reorder causality, so it is
/// always a bug; lenient mode (armed by watchdog-carrying runs) records
/// the first offense for the driver to surface as a graceful error
/// instead of panicking the whole process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleViolation {
    /// The requested (past) timestamp.
    pub at: SimTime,
    /// The clock when the request was made.
    pub now: SimTime,
}

/// A cheap point-in-time view of a calendar, read by periodic samplers
/// (clock, throughput, backlog) without touching queue internals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// The current simulation clock.
    pub now: SimTime,
    /// Events fired so far.
    pub fired: u64,
    /// Events pending.
    pub pending: usize,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event calendar holding events of type `E`.
///
/// Tracks the current simulation clock: the clock advances to an event's
/// timestamp when that event is popped. Scheduling in the past is a bug
/// and panics (it would silently reorder causality otherwise) unless
/// lenient mode is armed ([`EventQueue::set_lenient`]), in which case the
/// offending event is dropped and the violation is recorded for the run
/// driver to turn into a graceful error.
pub struct EventQueue<E> {
    /// Near-window buckets; bucket `i` holds entries with
    /// `at >> WIDTH_BITS == base + i`, unsorted. Vecs keep their capacity
    /// when drained (a free-list in place), so steady state allocates
    /// nothing.
    buckets: Vec<Vec<Entry<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occ: [u64; OCC_WORDS],
    /// Entries in the near window, excluding `current`.
    near_count: usize,
    /// Absolute bucket index (time >> WIDTH_BITS) of `buckets[0]`.
    base: u64,
    /// Bucket offsets `< cursor` have been activated (drained into
    /// `current`); insertions targeting them go straight to `current`.
    cursor: usize,
    /// The active min-heap: every pending entry at or before the activated
    /// boundary. Always pops before any bucket or overflow entry.
    current: BinaryHeap<Entry<E>>,
    /// Entries beyond the near window, migrated in when the window rebases.
    far: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
    lenient: bool,
    violation: Option<ScheduleViolation>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occ: [0; OCC_WORDS],
            near_count: 0,
            base: 0,
            cursor: 0,
            current: BinaryHeap::new(),
            far: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
            lenient: false,
            violation: None,
        }
    }

    /// The current simulation clock.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.current.len() + self.near_count + self.far.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events fired so far (for throughput reporting).
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.popped
    }

    /// A point-in-time view of the calendar for samplers and telemetry.
    #[inline]
    pub fn snapshot(&self) -> QueueSnapshot {
        QueueSnapshot {
            now: self.now,
            fired: self.popped,
            pending: self.len(),
        }
    }

    /// In lenient mode a past-timestamp schedule records a
    /// [`ScheduleViolation`] (and drops the event) instead of panicking;
    /// run drivers with a watchdog armed poll
    /// [`take_violation`](EventQueue::take_violation) and abort the run
    /// gracefully.
    pub fn set_lenient(&mut self, lenient: bool) {
        self.lenient = lenient;
    }

    /// Take the recorded scheduling violation, if any.
    pub fn take_violation(&mut self) -> Option<ScheduleViolation> {
        self.violation.take()
    }

    /// Schedule `event` at absolute time `at`. Panics if `at` is in the
    /// past (or records a violation in lenient mode; see
    /// [`set_lenient`](EventQueue::set_lenient)).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        if at < self.now {
            if self.lenient {
                if self.violation.is_none() {
                    self.violation = Some(ScheduleViolation { at, now: self.now });
                }
                return;
            }
            panic!("scheduling into the past: {at:?} < now {:?}", self.now);
        }
        let seq = self.seq;
        self.seq += 1;
        self.push_entry(Entry { at, seq, event });
    }

    /// Schedule `event` to fire `delay` after the current clock.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next pending event, if any.
    ///
    /// Takes `&mut self`: peeking may activate the next calendar bucket
    /// (the work is shared with the following [`pop`](EventQueue::pop)).
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.ensure_current();
        self.current.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.ensure_current();
        let entry = self.current.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Drop every pending event (the clock is left where it is).
    pub fn clear(&mut self) {
        for w in 0..OCC_WORDS {
            let mut bits = self.occ[w];
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                self.buckets[b].clear();
                bits &= bits - 1;
            }
            self.occ[w] = 0;
        }
        self.near_count = 0;
        self.current.clear();
        self.far.clear();
    }

    #[inline]
    fn push_entry(&mut self, entry: Entry<E>) {
        let abs = entry.at.as_nanos() >> WIDTH_BITS;
        if abs < self.base + self.cursor as u64 {
            // At or behind the activated boundary: the heap keeps exact
            // (time, seq) order, so late arrivals into the active region
            // still pop in their correct place.
            self.current.push(entry);
        } else if abs - self.base < NUM_BUCKETS as u64 {
            let off = (abs - self.base) as usize;
            if self.buckets[off].is_empty() {
                self.occ[off / 64] |= 1u64 << (off % 64);
            }
            self.buckets[off].push(entry);
            self.near_count += 1;
        } else {
            self.far.push(entry);
        }
    }

    /// Make `current` hold the globally earliest pending entries (or be
    /// empty if the whole calendar is). Activates buckets left to right;
    /// when the near window drains, rebases it onto the earliest overflow
    /// entry and migrates overflow entries that now fit.
    fn ensure_current(&mut self) {
        while self.current.is_empty() {
            if self.near_count > 0 {
                let off = self.next_occupied(self.cursor).expect("near_count > 0");
                self.occ[off / 64] &= !(1u64 << (off % 64));
                self.near_count -= self.buckets[off].len();
                self.current.extend(self.buckets[off].drain(..));
                self.cursor = off + 1;
            } else if let Some(e) = self.far.peek() {
                self.base = e.at.as_nanos() >> WIDTH_BITS;
                self.cursor = 0;
                let end_abs = self.base + NUM_BUCKETS as u64;
                while let Some(e) = self.far.peek() {
                    if e.at.as_nanos() >> WIDTH_BITS >= end_abs {
                        break;
                    }
                    let entry = self.far.pop().expect("peeked");
                    self.push_entry(entry);
                }
            } else {
                return; // truly empty
            }
        }
    }

    /// First occupied bucket at or after `from`, via the occupancy bitmap.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= NUM_BUCKETS {
            return None;
        }
        let mut w = from / 64;
        let mut bits = self.occ[w] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w >= OCC_WORDS {
                return None;
            }
            bits = self.occ[w];
        }
    }
}

/// The original binary-heap event calendar, kept as the reference
/// implementation the calendar queue is differential-tested against (and
/// benchmarked against in `benches/engine.rs`). Same `(time, seq)`
/// contract and API as [`EventQueue`].
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty calendar with the clock at zero.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// The current simulation clock.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events fired so far.
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.popped
    }

    /// A point-in-time view of the calendar for samplers and telemetry.
    #[inline]
    pub fn snapshot(&self) -> QueueSnapshot {
        QueueSnapshot {
            now: self.now,
            fired: self.popped,
            pending: self.len(),
        }
    }

    /// Schedule `event` at absolute time `at`. Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` to fire `delay` after the current clock.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Drop every pending event (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
        assert_eq!(q.now(), t);
    }

    #[test]
    fn schedule_relative_to_clock() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(1), 1u32);
        q.pop().unwrap();
        q.schedule_in(SimDuration::from_secs(1), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn lenient_mode_records_violation_and_drops_event() {
        let mut q = EventQueue::new();
        q.set_lenient(true);
        q.schedule_at(SimTime::from_secs(2), 1u32);
        q.pop();
        q.schedule_at(SimTime::from_secs(1), 2u32);
        let v = q.take_violation().expect("violation recorded");
        assert_eq!(v.at, SimTime::from_secs(1));
        assert_eq!(v.now, SimTime::from_secs(2));
        assert!(q.take_violation().is_none(), "violation is taken once");
        assert!(q.is_empty(), "offending event was dropped");
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(SimDuration::ZERO, ());
        q.schedule_in(SimDuration::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.events_fired(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), 10u64);
        q.schedule_at(SimTime::from_secs(4), 4);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 4);
        q.schedule_at(SimTime::from_secs(6), 6);
        q.schedule_at(SimTime::from_secs(5), 5);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, vec![5, 6, 10]);
    }

    #[test]
    fn insert_into_activated_region_pops_in_order() {
        // Activate a bucket by peeking, then schedule an event earlier
        // than the activated bucket (but >= now): it must pop first.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(5 << WIDTH_BITS), "late");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5 << WIDTH_BITS)));
        q.schedule_at(SimTime::from_nanos(2 << WIDTH_BITS), "early");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["early", "late"]);
    }

    #[test]
    fn far_future_rebase_keeps_order() {
        // Events far beyond the near window (hundreds of seconds) force
        // overflow-heap migration and window rebasing.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(300), "d");
        q.schedule_at(SimTime::from_nanos(10), "a");
        q.schedule_at(SimTime::from_secs(900), "e");
        q.schedule_at(SimTime::from_secs(1), "b");
        q.schedule_at(SimTime::from_secs(2), "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c", "d", "e"]);
        assert_eq!(q.now(), SimTime::from_secs(900));
    }

    #[test]
    fn matches_heap_reference_on_mixed_horizons() {
        // Deterministic LCG schedule mixing microsecond and multi-second
        // delays, interleaved with pops — both calendars must agree
        // exactly (the property tests randomize this further).
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let mut step = |cal: &mut EventQueue<u64>, heap: &mut HeapEventQueue<u64>, i: u64| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let delay = match x % 4 {
                0 => x % 1_000,          // sub-µs
                1 => x % 1_000_000,      // sub-ms
                2 => x % 100_000_000,    // sub-100ms (window edge)
                _ => x % 10_000_000_000, // up to 10 s (overflow)
            };
            cal.schedule_in(SimDuration::from_nanos(delay), i);
            heap.schedule_in(SimDuration::from_nanos(delay), i);
        };
        for i in 0..500 {
            step(&mut cal, &mut heap, i);
            if i % 3 == 0 {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(cal.now(), heap.now());
        assert_eq!(cal.events_fired(), heap.events_fired());
    }
}
