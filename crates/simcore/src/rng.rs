//! Deterministic random numbers for simulations.
//!
//! Every run takes a single master seed; every component derives its own
//! independent stream with [`SimRng::derive`] so that adding a new consumer
//! of randomness never perturbs the draws seen by existing components
//! (stream independence is what makes variance-reduction across designs
//! meaningful — the paper compares designs under the "same" traffic).
//!
//! Samplers for the distributions the paper's workloads use are provided
//! directly: exponential (on/off times, flow lifetimes, interarrivals) and
//! Pareto (the POO1 source, aggregate LRD traffic).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random stream.
///
/// Thin wrapper around a seeded [`StdRng`] adding derived sub-streams and
/// the inverse-transform samplers used by the traffic models.
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream identified by `tag`.
    ///
    /// Uses SplitMix64-style mixing of `(seed, tag)` so children with
    /// different tags are decorrelated, and the same `(seed, tag)` always
    /// yields the same stream.
    pub fn derive(&self, tag: u64) -> SimRng {
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponential with the given `mean` (inverse transform).
    ///
    /// Panics if `mean` is not strictly positive.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be > 0");
        // 1 - U is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Pareto with shape `alpha` and the given `mean`.
    ///
    /// For `alpha > 1` the mean of a Pareto with scale `x_m` is
    /// `alpha * x_m / (alpha - 1)`, so `x_m = mean * (alpha - 1) / alpha`.
    /// The paper's POO1 source uses `alpha = 1.2`, which has finite mean but
    /// infinite variance — the ingredient for LRD aggregate traffic.
    ///
    /// Panics unless `alpha > 1` and `mean > 0`.
    #[inline]
    pub fn pareto(&mut self, alpha: f64, mean: f64) -> f64 {
        assert!(alpha > 1.0, "pareto needs alpha > 1 for a finite mean");
        assert!(mean > 0.0);
        let xm = mean * (alpha - 1.0) / alpha;
        let u = 1.0 - self.uniform(); // (0, 1]
        xm / u.powf(1.0 / alpha)
    }

    /// Standard normal via Box–Muller (polar form avoided for simplicity;
    /// this is not on any hot path).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0);
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Lognormal such that the *resulting variable* has the given mean and
    /// coefficient of variation `cv` (std/mean). Used by the synthetic
    /// video source for frame sizes.
    pub fn lognormal(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(mean > 0.0 && cv >= 0.0);
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.normal(0.0, 1.0)).exp()
    }

    /// Raw 64 random bits (for hashing-style uses).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRng(seed={})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ_and_are_stable() {
        let root = SimRng::new(7);
        let mut c1 = root.derive(1);
        let mut c2 = root.derive(2);
        let mut c1b = root.derive(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
        let _ = c1b.next_u64();
        // Same tag gives same stream.
        assert_eq!(c1.next_u64(), c1b.next_u64());
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(1);
        let n = 200_000;
        let mean = 3.5;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() < 0.05, "sample mean {m}");
    }

    #[test]
    fn pareto_mean_close_and_heavy_tailed() {
        let mut r = SimRng::new(2);
        let n = 2_000_000;
        let mean = 0.5;
        let alpha = 1.9; // finite-variance-ish so the sample mean converges in test time
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        for _ in 0..n {
            let x = r.pareto(alpha, mean);
            sum += x;
            max = max.max(x);
        }
        let m = sum / n as f64;
        assert!((m - mean).abs() / mean < 0.05, "sample mean {m}");
        // Heavy tail: the max of 2M draws should dwarf the mean.
        assert!(max > mean * 50.0, "max {max}");
    }

    #[test]
    fn pareto_minimum_is_scale() {
        let mut r = SimRng::new(3);
        let alpha = 1.2;
        let mean = 1.0;
        let xm = mean * (alpha - 1.0) / alpha;
        for _ in 0..10_000 {
            assert!(r.pareto(alpha, mean) >= xm * 0.999_999);
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(4);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_frequency() {
        let mut r = SimRng::new(5);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.3).abs() < 0.01, "freq {f}");
    }

    #[test]
    fn lognormal_moments() {
        let mut r = SimRng::new(6);
        let n = 200_000;
        let (mean, cv) = (10.0, 0.5);
        let xs: Vec<f64> = (0..n).map(|_| r.lognormal(mean, cv)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - mean).abs() / mean < 0.02, "mean {m}");
        assert!((var.sqrt() / m - cv).abs() < 0.02, "cv {}", var.sqrt() / m);
    }
}
