//! Property-based tests of the simulation engine's core invariants.

use proptest::prelude::*;
use simcore::queue::HeapEventQueue;
use simcore::stats::{Histogram, Welford};
use simcore::{EventQueue, SimDuration, SimRng, SimTime};

proptest! {
    /// The calendar queue pops the exact same (time, event) sequence as the
    /// binary-heap reference on arbitrary schedules — including same-instant
    /// ties (delay 0 collisions are common at small ranges) and delays that
    /// straddle the near-window/overflow boundary.
    #[test]
    fn calendar_matches_heap_reference(
        ops in prop::collection::vec((0u64..200_000_000, 0u8..4), 1..300),
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, &(delay, pops)) in ops.iter().enumerate() {
            cal.schedule_in(SimDuration::from_nanos(delay), i);
            heap.schedule_in(SimDuration::from_nanos(delay), i);
            for _ in 0..pops {
                prop_assert_eq!(cal.pop(), heap.pop());
                prop_assert_eq!(cal.now(), heap.now());
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
        prop_assert_eq!(cal.events_fired(), heap.events_fired());
    }

    /// Ties scheduled across both implementations pop FIFO in both.
    #[test]
    fn calendar_matches_heap_on_ties(
        times in prop::collection::vec(0u64..1_000, 2..150),
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            // Coarse quantization forces many exact-tie collisions.
            let at = SimTime::from_nanos((t / 100) * 100);
            cal.schedule_at(at, i);
            heap.schedule_at(at, i);
        }
        let a: Vec<_> = std::iter::from_fn(|| cal.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| heap.pop()).collect();
        prop_assert_eq!(a, b);
    }

    /// Events always pop in nondecreasing time order, regardless of the
    /// schedule order.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Simultaneous events preserve scheduling (FIFO) order.
    #[test]
    fn event_queue_fifo_on_ties(n in 1usize..100, t in 0u64..1_000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// The clock after draining equals the max scheduled time.
    #[test]
    fn clock_lands_on_last_event(times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule_at(SimTime::from_nanos(t), ());
        }
        while q.pop().is_some() {}
        prop_assert_eq!(q.now().as_nanos(), *times.iter().max().unwrap());
    }

    /// SimTime arithmetic: (t + d) - t == d for all representable values.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(t);
        let d = SimDuration::from_nanos(d);
        prop_assert_eq!((t + d) - t, d);
    }

    /// Transmission time is monotone in size and antitone in rate.
    #[test]
    fn transmission_monotonicity(bytes in 1u32..100_000, rate in 1_000u64..10_000_000_000) {
        let t = SimDuration::transmission(bytes, rate);
        prop_assert!(SimDuration::transmission(bytes + 1, rate) >= t);
        prop_assert!(SimDuration::transmission(bytes, rate * 2) <= t);
    }

    /// Welford matches the two-pass formulas.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
    }

    /// Histograms never lose observations.
    #[test]
    fn histogram_conserves_count(xs in prop::collection::vec(-100f64..200.0, 0..300)) {
        let mut h = Histogram::new(0.0, 100.0, 17);
        for &x in &xs {
            h.add(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.bins().iter().sum::<u64>(), xs.len() as u64);
    }

    /// Derived RNG streams are reproducible and tag-sensitive.
    #[test]
    fn rng_derivation_deterministic(seed in any::<u64>(), tag in any::<u64>()) {
        let root = SimRng::new(seed);
        let mut a = root.derive(tag);
        let mut b = root.derive(tag);
        let mut c = root.derive(tag.wrapping_add(1));
        let xa = a.next_u64();
        prop_assert_eq!(xa, b.next_u64());
        // Different tags virtually never collide on the first draw.
        prop_assert_ne!(xa, c.next_u64());
    }

    /// Exponential samples are nonnegative and finite.
    #[test]
    fn exponential_support(seed in any::<u64>(), mean in 1e-6f64..1e6) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let x = rng.exponential(mean);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    /// Pareto samples never fall below the scale parameter.
    #[test]
    fn pareto_support(seed in any::<u64>(), alpha in 1.01f64..5.0, mean in 1e-3f64..1e3) {
        let mut rng = SimRng::new(seed);
        let xm = mean * (alpha - 1.0) / alpha;
        for _ in 0..100 {
            let x = rng.pareto(alpha, mean);
            prop_assert!(x.is_finite() && x >= xm * 0.999_999);
        }
    }
}
