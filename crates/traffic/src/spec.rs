//! Source specifications — Table 1 of the paper, plus the video trace
//! stand-in — and flow demography (Poisson arrivals, exponential
//! lifetimes, §3.2).

use crate::process::{Cbr, OnOff, PacketProcess, PeriodDist};
use crate::shaper::TokenBucketSpec;
use crate::video::{VideoConfig, VideoSource};
use simcore::SimRng;

/// What kind of packet process a spec builds.
#[derive(Clone, Debug)]
pub enum SourceKind {
    /// On/off source (Table 1's EXP and POO rows).
    OnOff {
        /// Burst (ON) rate, bits/second.
        burst_rate_bps: f64,
        /// Mean ON time, seconds.
        mean_on_s: f64,
        /// Mean OFF time, seconds.
        mean_off_s: f64,
        /// Period length distribution.
        dist: PeriodDist,
    },
    /// Constant bit rate.
    Cbr {
        /// Rate, bits/second.
        rate_bps: f64,
    },
    /// Synthetic LRD VBR video (the Star Wars stand-in).
    Video(VideoConfig),
}

/// A reusable description of a traffic source: how it emits packets and
/// the (r, b) token bucket it declares to admission control. The token
/// rate `r` is also the rate the flow probes at.
#[derive(Clone, Debug)]
pub struct SourceSpec {
    /// Human-readable name ("EXP1", "POO1", "StarWars", ...).
    pub name: &'static str,
    /// Emission process.
    pub kind: SourceKind,
    /// Declared token bucket (probing rate = `token.rate_bps`).
    pub token: TokenBucketSpec,
    /// Packet size, bytes.
    pub pkt_bytes: u32,
}

impl SourceSpec {
    /// EXP1: 256k burst, 500 ms on/off, 128k average (Table 1).
    pub fn exp1() -> Self {
        SourceSpec {
            name: "EXP1",
            kind: SourceKind::OnOff {
                burst_rate_bps: 256_000.0,
                mean_on_s: 0.5,
                mean_off_s: 0.5,
                dist: PeriodDist::Exponential,
            },
            token: TokenBucketSpec::new(256_000, 125.0),
            pkt_bytes: 125,
        }
    }

    /// EXP2: 1024k burst, 125 ms on / 875 ms off, 128k average (Table 1).
    pub fn exp2() -> Self {
        SourceSpec {
            name: "EXP2",
            kind: SourceKind::OnOff {
                burst_rate_bps: 1_024_000.0,
                mean_on_s: 0.125,
                mean_off_s: 0.875,
                dist: PeriodDist::Exponential,
            },
            token: TokenBucketSpec::new(1_024_000, 125.0),
            pkt_bytes: 125,
        }
    }

    /// EXP3: 512k burst, 500 ms on/off, 256k average (Table 1).
    pub fn exp3() -> Self {
        SourceSpec {
            name: "EXP3",
            kind: SourceKind::OnOff {
                burst_rate_bps: 512_000.0,
                mean_on_s: 0.5,
                mean_off_s: 0.5,
                dist: PeriodDist::Exponential,
            },
            token: TokenBucketSpec::new(512_000, 125.0),
            pkt_bytes: 125,
        }
    }

    /// EXP4: 256k burst, 5 s on/off, 128k average (Table 1).
    pub fn exp4() -> Self {
        SourceSpec {
            name: "EXP4",
            kind: SourceKind::OnOff {
                burst_rate_bps: 256_000.0,
                mean_on_s: 5.0,
                mean_off_s: 5.0,
                dist: PeriodDist::Exponential,
            },
            token: TokenBucketSpec::new(256_000, 125.0),
            pkt_bytes: 125,
        }
    }

    /// POO1: 256k burst, 500 ms Pareto(α=1.2) on/off, 128k average
    /// (Table 1); aggregate traffic is LRD.
    pub fn poo1() -> Self {
        SourceSpec {
            name: "POO1",
            kind: SourceKind::OnOff {
                burst_rate_bps: 256_000.0,
                mean_on_s: 0.5,
                mean_off_s: 0.5,
                dist: PeriodDist::Pareto(1.2),
            },
            token: TokenBucketSpec::new(256_000, 125.0),
            pkt_bytes: 125,
        }
    }

    /// The Star Wars trace stand-in: synthetic LRD VBR video, 200-byte
    /// packets, reshaped (by dropping) to r = 800 kbps, b = 200 kbit
    /// = 25 000 bytes (§3.2).
    pub fn starwars() -> Self {
        SourceSpec {
            name: "StarWars",
            kind: SourceKind::Video(VideoConfig::default()),
            token: TokenBucketSpec::new(800_000, 25_000.0),
            pkt_bytes: 200,
        }
    }

    /// Declared token rate `r` in bits/second — the probing rate.
    pub fn token_rate_bps(&self) -> u64 {
        self.token.rate_bps
    }

    /// Long-run average rate of the emission process, bits/second.
    pub fn avg_rate_bps(&self) -> f64 {
        match &self.kind {
            SourceKind::OnOff {
                burst_rate_bps,
                mean_on_s,
                mean_off_s,
                ..
            } => burst_rate_bps * mean_on_s / (mean_on_s + mean_off_s),
            SourceKind::Cbr { rate_bps } => *rate_bps,
            SourceKind::Video(cfg) => cfg.mean_rate_bps,
        }
    }

    /// Instantiate the packet process.
    pub fn build(&self) -> Box<dyn PacketProcess> {
        match &self.kind {
            SourceKind::OnOff {
                burst_rate_bps,
                mean_on_s,
                mean_off_s,
                dist,
            } => Box::new(OnOff::new(
                *burst_rate_bps,
                *mean_on_s,
                *mean_off_s,
                *dist,
                self.pkt_bytes,
            )),
            SourceKind::Cbr { rate_bps } => Box::new(Cbr::new(*rate_bps, self.pkt_bytes)),
            SourceKind::Video(cfg) => Box::new(VideoSource::synthetic(cfg.clone())),
        }
    }
}

/// Flow-level demography: Poisson flow arrivals with mean interarrival
/// `tau`, exponential lifetimes (§3.2: mean lifetime 300 s).
#[derive(Clone, Copy, Debug)]
pub struct Demography {
    /// Mean flow interarrival time τ, seconds.
    pub mean_interarrival_s: f64,
    /// Mean flow lifetime, seconds.
    pub mean_lifetime_s: f64,
}

impl Demography {
    /// Construct; both means must be positive.
    pub fn new(mean_interarrival_s: f64, mean_lifetime_s: f64) -> Self {
        assert!(mean_interarrival_s > 0.0 && mean_lifetime_s > 0.0);
        Demography {
            mean_interarrival_s,
            mean_lifetime_s,
        }
    }

    /// Sample the gap to the next flow arrival.
    pub fn sample_interarrival(&self, rng: &mut SimRng) -> f64 {
        rng.exponential(self.mean_interarrival_s)
    }

    /// Sample a flow lifetime.
    pub fn sample_lifetime(&self, rng: &mut SimRng) -> f64 {
        rng.exponential(self.mean_lifetime_s)
    }

    /// Offered load in flows (Erlang): lifetime / interarrival.
    pub fn offered_flows(&self) -> f64 {
        self.mean_lifetime_s / self.mean_interarrival_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_average_rates() {
        assert!((SourceSpec::exp1().avg_rate_bps() - 128_000.0).abs() < 1e-6);
        assert!((SourceSpec::exp2().avg_rate_bps() - 128_000.0).abs() < 1e-6);
        assert!((SourceSpec::exp3().avg_rate_bps() - 256_000.0).abs() < 1e-6);
        assert!((SourceSpec::exp4().avg_rate_bps() - 128_000.0).abs() < 1e-6);
        assert!((SourceSpec::poo1().avg_rate_bps() - 128_000.0).abs() < 1e-6);
    }

    #[test]
    fn table1_token_rates_are_burst_rates() {
        assert_eq!(SourceSpec::exp1().token_rate_bps(), 256_000);
        assert_eq!(SourceSpec::exp2().token_rate_bps(), 1_024_000);
        assert_eq!(SourceSpec::exp3().token_rate_bps(), 512_000);
        assert_eq!(SourceSpec::starwars().token_rate_bps(), 800_000);
    }

    #[test]
    fn build_produces_working_processes() {
        let mut rng = SimRng::new(1);
        for spec in [
            SourceSpec::exp1(),
            SourceSpec::exp2(),
            SourceSpec::exp3(),
            SourceSpec::exp4(),
            SourceSpec::poo1(),
            SourceSpec::starwars(),
        ] {
            let mut p = spec.build();
            let (gap, size) = p.next_packet(&mut rng);
            assert!(gap.as_secs_f64() >= 0.0);
            assert_eq!(size, spec.pkt_bytes);
        }
    }

    #[test]
    fn demography_samples_and_load() {
        let d = Demography::new(3.5, 300.0);
        assert!((d.offered_flows() - 85.714).abs() < 0.01);
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample_interarrival(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean interarrival {mean}");
        let life: f64 = (0..n).map(|_| d.sample_lifetime(&mut rng)).sum::<f64>() / n as f64;
        assert!((life - 300.0).abs() < 5.0, "mean lifetime {life}");
    }
}
