//! Token-bucket policing.
//!
//! Hosts "must characterize their flows as conforming to an (r, b) token
//! bucket" (§3.1). The policer drops non-conforming packets — the paper
//! reshapes the video trace "by dropping" — and is also used in tests to
//! verify that the Table 1 sources conform to their declared buckets.

use netsim::TokenBucket;
use simcore::SimTime;

/// A (rate, bucket) traffic descriptor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TokenBucketSpec {
    /// Token rate, bits/second.
    pub rate_bps: u64,
    /// Bucket depth, bytes.
    pub bucket_bytes: f64,
}

impl TokenBucketSpec {
    /// Construct a descriptor.
    pub fn new(rate_bps: u64, bucket_bytes: f64) -> Self {
        assert!(rate_bps > 0 && bucket_bytes > 0.0);
        TokenBucketSpec {
            rate_bps,
            bucket_bytes,
        }
    }
}

/// A policer that drops non-conforming packets.
#[derive(Clone, Debug)]
pub struct Policer {
    bucket: TokenBucket,
    conformant: u64,
    dropped: u64,
}

impl Policer {
    /// A policer for the given descriptor (bucket starts full).
    pub fn new(spec: TokenBucketSpec) -> Self {
        Policer {
            bucket: TokenBucket::new(spec.rate_bps, spec.bucket_bytes),
            conformant: 0,
            dropped: 0,
        }
    }

    /// Offer a packet of `bytes` at time `now`; true if it conforms (and
    /// the tokens are consumed), false if it must be dropped.
    pub fn conforms(&mut self, bytes: u32, now: SimTime) -> bool {
        if self.bucket.try_take(bytes, now) {
            self.conformant += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Packets passed so far.
    pub fn passed(&self) -> u64 {
        self.conformant
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Cbr, OnOff, PacketProcess, PeriodDist};
    use simcore::{SimDuration, SimRng};

    #[test]
    fn conforming_cbr_never_dropped() {
        // CBR at exactly the token rate conforms.
        let mut p = Policer::new(TokenBucketSpec::new(256_000, 125.0));
        let mut src = Cbr::new(256_000.0, 125);
        let mut rng = SimRng::new(1);
        let mut t = SimTime::ZERO;
        for _ in 0..10_000 {
            let (gap, size) = src.next_packet(&mut rng);
            t += gap;
            assert!(p.conforms(size, t));
        }
        assert_eq!(p.dropped(), 0);
    }

    #[test]
    fn oversubscribed_cbr_dropped_proportionally() {
        // CBR at twice the token rate: ~half the packets must drop.
        let mut p = Policer::new(TokenBucketSpec::new(128_000, 125.0));
        let mut src = Cbr::new(256_000.0, 125);
        let mut rng = SimRng::new(2);
        let mut t = SimTime::ZERO;
        let n = 20_000;
        for _ in 0..n {
            let (gap, size) = src.next_packet(&mut rng);
            t += gap;
            p.conforms(size, t);
        }
        let frac = p.dropped() as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn table1_sources_conform_to_declared_bucket() {
        // Table 1: each on/off source conforms to (r = burst rate,
        // b = 125 bytes).
        let cases: [(f64, f64, f64, PeriodDist); 4] = [
            (256_000.0, 0.5, 0.5, PeriodDist::Exponential), // EXP1
            (1_024_000.0, 0.125, 0.875, PeriodDist::Exponential), // EXP2
            (512_000.0, 0.5, 0.5, PeriodDist::Exponential), // EXP3
            (256_000.0, 5.0, 5.0, PeriodDist::Exponential), // EXP4
        ];
        for (i, (burst, on, off, dist)) in cases.into_iter().enumerate() {
            let mut src = OnOff::new(burst, on, off, dist, 125);
            // Tiny slack (1 packet) absorbs nanosecond rounding of gaps.
            let mut p = Policer::new(TokenBucketSpec::new(burst as u64, 250.0));
            let mut rng = SimRng::new(100 + i as u64);
            let mut t = SimTime::ZERO;
            for _ in 0..50_000 {
                let (gap, size) = src.next_packet(&mut rng);
                t += gap;
                assert!(
                    p.conforms(size, t),
                    "source {i} violated its bucket at {t:?}"
                );
            }
        }
    }

    #[test]
    fn bucket_absorbs_bursts_up_to_depth() {
        // b = 1000 bytes allows an 8-packet back-to-back burst of 125 B.
        let mut p = Policer::new(TokenBucketSpec::new(8_000, 1_000.0));
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        for i in 0..8 {
            assert!(p.conforms(125, t), "packet {i}");
        }
        assert!(!p.conforms(125, t));
    }
}
