//! Packet emission processes.
//!
//! A [`PacketProcess`] is a pull-based generator: each call yields the gap
//! to the next packet and that packet's size. Host agents turn these into
//! timer-driven packet emissions. Keeping sources pure (no agent plumbing)
//! makes their statistics directly testable.

use simcore::{SimDuration, SimRng};

/// A stream of packets described by inter-emission gaps.
pub trait PacketProcess: Send {
    /// Gap from the previous emission to the next packet, and its size in
    /// bytes.
    fn next_packet(&mut self, rng: &mut SimRng) -> (SimDuration, u32);

    /// The long-run average rate of this process, bits/second (used for
    /// sanity checks and MBAC bookkeeping, not by the generator itself).
    fn avg_rate_bps(&self) -> f64;
}

/// Constant bit rate: fixed-size packets at exact spacing.
#[derive(Clone, Debug)]
pub struct Cbr {
    rate_bps: f64,
    pkt_bytes: u32,
}

impl Cbr {
    /// A CBR stream of `pkt_bytes`-byte packets at `rate_bps`.
    pub fn new(rate_bps: f64, pkt_bytes: u32) -> Self {
        assert!(rate_bps > 0.0 && pkt_bytes > 0);
        Cbr {
            rate_bps,
            pkt_bytes,
        }
    }

    /// The exact inter-packet spacing.
    pub fn spacing(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.pkt_bytes as f64 * 8.0 / self.rate_bps)
    }
}

impl PacketProcess for Cbr {
    fn next_packet(&mut self, _rng: &mut SimRng) -> (SimDuration, u32) {
        (self.spacing(), self.pkt_bytes)
    }

    fn avg_rate_bps(&self) -> f64 {
        self.rate_bps
    }
}

/// Distribution family for on/off period lengths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PeriodDist {
    /// Exponential periods (the EXP sources of Table 1).
    Exponential,
    /// Pareto periods with this shape α (the POO1 source, α = 1.2);
    /// produces LRD traffic in the aggregate.
    Pareto(f64),
}

impl PeriodDist {
    fn sample(self, mean: f64, rng: &mut SimRng) -> f64 {
        match self {
            PeriodDist::Exponential => rng.exponential(mean),
            PeriodDist::Pareto(alpha) => rng.pareto(alpha, mean),
        }
    }
}

/// An on/off source: during ON it emits fixed-size packets at the burst
/// rate; OFF is silent. Period lengths are drawn from [`PeriodDist`].
///
/// The generator carries fractional "on-time budget" across period
/// boundaries so the long-run rate is exactly
/// `burst_rate × mean_on / (mean_on + mean_off)`.
#[derive(Clone, Debug)]
pub struct OnOff {
    burst_rate_bps: f64,
    mean_on_s: f64,
    mean_off_s: f64,
    dist: PeriodDist,
    pkt_bytes: u32,
    /// Seconds of the current ON period not yet consumed by emissions.
    remaining_on: f64,
    /// Whether the source still has to draw its first period (randomised
    /// initial phase: start OFF with probability mean_off/(mean_on+mean_off)).
    fresh: bool,
}

impl OnOff {
    /// Build an on/off source.
    pub fn new(
        burst_rate_bps: f64,
        mean_on_s: f64,
        mean_off_s: f64,
        dist: PeriodDist,
        pkt_bytes: u32,
    ) -> Self {
        assert!(burst_rate_bps > 0.0 && mean_on_s > 0.0 && mean_off_s >= 0.0 && pkt_bytes > 0);
        OnOff {
            burst_rate_bps,
            mean_on_s,
            mean_off_s,
            dist,
            pkt_bytes,
            remaining_on: 0.0,
            fresh: true,
        }
    }

    /// Packet spacing while ON.
    fn spacing_s(&self) -> f64 {
        self.pkt_bytes as f64 * 8.0 / self.burst_rate_bps
    }

    /// The burst (ON) rate, bits/second — this is also the token-bucket
    /// rate `r` the flow declares, and hence its probing rate.
    pub fn burst_rate_bps(&self) -> f64 {
        self.burst_rate_bps
    }
}

impl PacketProcess for OnOff {
    fn next_packet(&mut self, rng: &mut SimRng) -> (SimDuration, u32) {
        let spacing = self.spacing_s();
        let mut gap = 0.0;
        if self.fresh {
            // Random initial phase so simultaneous flow starts don't sync.
            self.fresh = false;
            let duty = self.mean_on_s / (self.mean_on_s + self.mean_off_s);
            if rng.chance(duty) {
                // Start mid-ON: residual ON time (memoryless approximation).
                self.remaining_on = self.dist.sample(self.mean_on_s, rng) * rng.uniform();
            } else {
                gap += self.dist.sample(self.mean_off_s, rng) * rng.uniform();
                self.remaining_on = self.dist.sample(self.mean_on_s, rng);
            }
        }
        let mut need = spacing;
        loop {
            if self.remaining_on >= need {
                self.remaining_on -= need;
                gap += need;
                return (SimDuration::from_secs_f64(gap), self.pkt_bytes);
            }
            // Exhaust the ON period, wait out an OFF period, keep the
            // residual need so long-run rate is exact.
            gap += self.remaining_on;
            need -= self.remaining_on;
            gap += self.dist.sample(self.mean_off_s, rng);
            self.remaining_on = self.dist.sample(self.mean_on_s, rng);
        }
    }

    fn avg_rate_bps(&self) -> f64 {
        self.burst_rate_bps * self.mean_on_s / (self.mean_on_s + self.mean_off_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured_rate(p: &mut dyn PacketProcess, seed: u64, horizon_s: f64) -> f64 {
        let mut rng = SimRng::new(seed);
        let mut t = 0.0;
        let mut bytes = 0u64;
        loop {
            let (gap, size) = p.next_packet(&mut rng);
            t += gap.as_secs_f64();
            if t > horizon_s {
                break;
            }
            bytes += size as u64;
        }
        bytes as f64 * 8.0 / horizon_s
    }

    #[test]
    fn cbr_exact_rate_and_spacing() {
        let mut c = Cbr::new(256_000.0, 125);
        let (gap, size) = c.next_packet(&mut SimRng::new(1));
        assert_eq!(size, 125);
        // 1000 bits / 256 kbps = 3.90625 ms
        assert_eq!(gap, SimDuration::from_secs_f64(0.00390625));
        let r = measured_rate(&mut c, 1, 100.0);
        assert!((r - 256_000.0).abs() / 256_000.0 < 0.01, "rate {r}");
    }

    #[test]
    fn exp_onoff_long_run_rate() {
        // EXP1: 256k burst, 500 ms on, 500 ms off -> 128k average.
        let mut s = OnOff::new(256_000.0, 0.5, 0.5, PeriodDist::Exponential, 125);
        let r = measured_rate(&mut s, 7, 5_000.0);
        assert!((r - 128_000.0).abs() / 128_000.0 < 0.03, "rate {r}");
        assert!((s.avg_rate_bps() - 128_000.0).abs() < 1e-9);
    }

    #[test]
    fn exp4_long_periods_rate() {
        // EXP4: 256k burst, 5 s on, 5 s off -> 128k average.
        let mut s = OnOff::new(256_000.0, 5.0, 5.0, PeriodDist::Exponential, 125);
        let r = measured_rate(&mut s, 9, 20_000.0);
        assert!((r - 128_000.0).abs() / 128_000.0 < 0.05, "rate {r}");
    }

    #[test]
    fn pareto_onoff_rate_and_burstiness() {
        // POO1: 256k burst, 500 ms mean on/off, alpha 1.2.
        let mut s = OnOff::new(256_000.0, 0.5, 0.5, PeriodDist::Pareto(1.2), 125);
        let r = measured_rate(&mut s, 11, 50_000.0);
        // alpha=1.2 converges slowly; allow wide tolerance.
        assert!(
            (r - 128_000.0).abs() / 128_000.0 < 0.25,
            "rate {r} (heavy tails converge slowly)"
        );
    }

    #[test]
    fn onoff_emits_at_burst_spacing_within_bursts() {
        let mut s = OnOff::new(256_000.0, 0.5, 0.5, PeriodDist::Exponential, 125);
        let mut rng = SimRng::new(3);
        let spacing = 0.00390625;
        let mut at_spacing = 0;
        let mut total = 0;
        for _ in 0..10_000 {
            let (gap, _) = s.next_packet(&mut rng);
            total += 1;
            if (gap.as_secs_f64() - spacing).abs() < 1e-9 {
                at_spacing += 1;
            }
        }
        // Most gaps are within-burst: mean on 0.5 s / 3.9 ms ≈ 128 packets
        // per burst, so ≳ 98% of gaps equal the spacing.
        assert!(
            at_spacing as f64 / total as f64 > 0.95,
            "{at_spacing}/{total}"
        );
    }

    #[test]
    fn pareto_onoff_has_much_longer_bursts_than_exp() {
        // Count the longest run of consecutive spacing-sized gaps.
        fn longest_burst(dist: PeriodDist, seed: u64) -> u32 {
            let mut s = OnOff::new(256_000.0, 0.5, 0.5, dist, 125);
            let mut rng = SimRng::new(seed);
            let spacing = 0.00390625;
            let (mut run, mut best) = (0u32, 0u32);
            for _ in 0..200_000 {
                let (gap, _) = s.next_packet(&mut rng);
                if (gap.as_secs_f64() - spacing).abs() < 1e-9 {
                    run += 1;
                    best = best.max(run);
                } else {
                    run = 0;
                }
            }
            best
        }
        let exp = longest_burst(PeriodDist::Exponential, 5);
        let par = longest_burst(PeriodDist::Pareto(1.2), 5);
        assert!(par > exp * 3, "pareto {par} vs exp {exp}");
    }
}
