//! # traffic — workload generation
//!
//! The paper's traffic sources (Table 1: EXP1–EXP4, POO1, and the Star
//! Wars video trace, here a synthetic LRD VBR stand-in), token-bucket
//! policing, and flow demography (Poisson arrivals, exponential
//! lifetimes).
//!
//! Sources are pull-based [`PacketProcess`]es — pure generators returning
//! (gap, size) pairs — which host agents in the `eac` crate turn into
//! timer-driven packet emissions. In the workspace layering this crate
//! sits beside `netsim` (it models what endpoints *send*, per the
//! paper's §3.2 workload catalogue, not how the network carries it) and
//! below `eac`, which owns the admission protocol.

pub mod process;
pub mod shaper;
pub mod spec;
pub mod video;

pub use process::{Cbr, OnOff, PacketProcess, PeriodDist};
pub use shaper::{Policer, TokenBucketSpec};
pub use spec::{Demography, SourceKind, SourceSpec};
pub use video::{VideoConfig, VideoSource};
