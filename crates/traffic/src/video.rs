//! Synthetic variable-bit-rate video — the stand-in for the Star Wars
//! MPEG trace of Garrett & Willinger used in Fig 8(d).
//!
//! The trace itself is proprietary; what the experiment needs from it is a
//! source that is (a) bursty at the frame timescale, (b) long-range
//! dependent at the scene timescale, (c) packetised into 200-byte packets,
//! and (d) reshaped by dropping to an (r = 800 kbps, b = 200 kbit) token
//! bucket, exactly as the paper does. This generator produces frames at a
//! fixed frame rate whose sizes are lognormal around a *scene mean*;
//! scene means are themselves lognormal around the global mean, and scene
//! durations are Pareto — the classic construction for LRD VBR video.
//!
//! External traces (one frame size in bytes per line) can also be loaded
//! with [`VideoSource::from_frame_sizes`].

use crate::process::PacketProcess;
use simcore::{SimDuration, SimRng};

/// Configuration for the synthetic VBR video generator.
#[derive(Clone, Debug)]
pub struct VideoConfig {
    /// Frames per second (the trace uses 24).
    pub fps: f64,
    /// Global mean rate, bits/second (pre-shaping).
    pub mean_rate_bps: f64,
    /// Coefficient of variation of frame sizes within a scene.
    pub frame_cv: f64,
    /// Coefficient of variation of scene means across scenes.
    pub scene_cv: f64,
    /// Pareto shape for scene durations (α ≤ 2 gives LRD).
    pub scene_alpha: f64,
    /// Mean scene duration, seconds.
    pub scene_mean_s: f64,
    /// Packet size used for packetisation, bytes (the trace uses 200).
    pub pkt_bytes: u32,
}

impl Default for VideoConfig {
    fn default() -> Self {
        VideoConfig {
            fps: 24.0,
            mean_rate_bps: 600_000.0,
            frame_cv: 0.35,
            scene_cv: 0.6,
            scene_alpha: 1.5,
            scene_mean_s: 10.0,
            pkt_bytes: 200,
        }
    }
}

enum FrameSource {
    Synthetic {
        cfg: VideoConfig,
        /// Frames left in the current scene.
        scene_frames_left: u64,
        /// Mean frame size (bytes) of the current scene.
        scene_mean_bytes: f64,
    },
    Trace {
        sizes: Vec<u32>,
        next: usize,
        fps: f64,
        pkt_bytes: u32,
    },
}

/// A VBR video packet process: frames at fixed intervals, each packetised
/// into `pkt_bytes`-byte packets spread evenly across the frame interval.
pub struct VideoSource {
    frames: FrameSource,
    /// Remaining packets of the current frame and their spacing.
    pkts_left: u32,
    pkt_gap: SimDuration,
    pkt_bytes: u32,
}

impl VideoSource {
    /// A synthetic LRD VBR source.
    pub fn synthetic(cfg: VideoConfig) -> Self {
        assert!(cfg.fps > 0.0 && cfg.mean_rate_bps > 0.0 && cfg.pkt_bytes > 0);
        assert!(cfg.scene_alpha > 1.0);
        let pkt_bytes = cfg.pkt_bytes;
        VideoSource {
            frames: FrameSource::Synthetic {
                cfg,
                scene_frames_left: 0,
                scene_mean_bytes: 0.0,
            },
            pkts_left: 0,
            pkt_gap: SimDuration::ZERO,
            pkt_bytes,
        }
    }

    /// A trace-driven source from per-frame sizes in bytes (looped).
    pub fn from_frame_sizes(sizes: Vec<u32>, fps: f64, pkt_bytes: u32) -> Self {
        assert!(!sizes.is_empty() && fps > 0.0 && pkt_bytes > 0);
        VideoSource {
            frames: FrameSource::Trace {
                sizes,
                next: 0,
                fps,
                pkt_bytes,
            },
            pkts_left: 0,
            pkt_gap: SimDuration::ZERO,
            pkt_bytes,
        }
    }

    fn next_frame(&mut self, rng: &mut SimRng) -> (f64, u32) {
        match &mut self.frames {
            FrameSource::Synthetic {
                cfg,
                scene_frames_left,
                scene_mean_bytes,
            } => {
                if *scene_frames_left == 0 {
                    let dur = rng.pareto(cfg.scene_alpha, cfg.scene_mean_s);
                    *scene_frames_left = (dur * cfg.fps).ceil().max(1.0) as u64;
                    let global_mean_bytes = cfg.mean_rate_bps / cfg.fps / 8.0;
                    *scene_mean_bytes = rng.lognormal(global_mean_bytes, cfg.scene_cv);
                }
                *scene_frames_left -= 1;
                let size = rng.lognormal(*scene_mean_bytes, cfg.frame_cv).max(1.0) as u32;
                (1.0 / cfg.fps, size)
            }
            FrameSource::Trace {
                sizes,
                next,
                fps,
                pkt_bytes: _,
            } => {
                let size = sizes[*next];
                *next = (*next + 1) % sizes.len();
                (1.0 / *fps, size)
            }
        }
    }
}

impl PacketProcess for VideoSource {
    fn next_packet(&mut self, rng: &mut SimRng) -> (SimDuration, u32) {
        if self.pkts_left == 0 {
            let (interval_s, frame_bytes) = self.next_frame(rng);
            let n = frame_bytes.div_ceil(self.pkt_bytes).max(1);
            self.pkts_left = n;
            // Spread the frame's packets evenly across the frame interval.
            self.pkt_gap = SimDuration::from_secs_f64(interval_s / n as f64);
        }
        self.pkts_left -= 1;
        (self.pkt_gap, self.pkt_bytes)
    }

    fn avg_rate_bps(&self) -> f64 {
        match &self.frames {
            FrameSource::Synthetic { cfg, .. } => cfg.mean_rate_bps,
            FrameSource::Trace {
                sizes,
                fps,
                pkt_bytes,
                ..
            } => {
                // Rate after packetisation padding.
                let total: u64 = sizes
                    .iter()
                    .map(|&s| (s.div_ceil(*pkt_bytes).max(1) * pkt_bytes) as u64)
                    .sum();
                total as f64 * 8.0 * fps / sizes.len() as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(src: &mut VideoSource, seed: u64, horizon_s: f64) -> (f64, Vec<f64>) {
        // Returns (rate bps, per-second byte counts).
        let mut rng = SimRng::new(seed);
        let mut t = 0.0;
        let mut per_sec = vec![0.0; horizon_s as usize];
        let mut bytes = 0u64;
        loop {
            let (gap, size) = src.next_packet(&mut rng);
            t += gap.as_secs_f64();
            if t >= horizon_s {
                break;
            }
            bytes += size as u64;
            per_sec[t as usize] += size as f64 * 8.0;
        }
        (bytes as f64 * 8.0 / horizon_s, per_sec)
    }

    #[test]
    fn synthetic_mean_rate_in_range() {
        let mut v = VideoSource::synthetic(VideoConfig::default());
        let (rate, _) = measure(&mut v, 42, 2_000.0);
        // Lognormal scene structure converges slowly; check the ballpark.
        assert!(rate > 300_000.0 && rate < 1_200_000.0, "rate {rate}");
    }

    #[test]
    fn synthetic_is_bursty_across_seconds() {
        let mut v = VideoSource::synthetic(VideoConfig::default());
        let (_, per_sec) = measure(&mut v, 7, 500.0);
        let mean = per_sec.iter().sum::<f64>() / per_sec.len() as f64;
        let var = per_sec.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / per_sec.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 0.2, "per-second rate CV {cv} — not bursty enough");
    }

    #[test]
    fn trace_driven_replays_and_loops() {
        // Two frames: 400 B and 200 B at 1 fps, 200-byte packets.
        let mut v = VideoSource::from_frame_sizes(vec![400, 200], 1.0, 200);
        let mut rng = SimRng::new(1);
        // Frame 1: two packets spaced 0.5 s.
        let (g1, s1) = v.next_packet(&mut rng);
        let (g2, _) = v.next_packet(&mut rng);
        assert_eq!(s1, 200);
        assert_eq!(g1, SimDuration::from_millis(500));
        assert_eq!(g2, SimDuration::from_millis(500));
        // Frame 2: one packet spaced 1 s.
        let (g3, _) = v.next_packet(&mut rng);
        assert_eq!(g3, SimDuration::from_secs(1));
        // Loops back to frame 1.
        let (g4, _) = v.next_packet(&mut rng);
        assert_eq!(g4, SimDuration::from_millis(500));
    }

    #[test]
    fn trace_avg_rate_accounts_padding() {
        let v = VideoSource::from_frame_sizes(vec![300], 2.0, 200);
        // 300 B -> 2 packets of 200 B = 400 B per frame, 2 fps = 6400 bps.
        assert!((v.avg_rate_bps() - 6_400.0).abs() < 1e-9);
    }

    #[test]
    fn scene_structure_creates_rate_correlation() {
        // Consecutive seconds within a scene should correlate: lag-1
        // autocorrelation of per-second rates must be clearly positive.
        let mut v = VideoSource::synthetic(VideoConfig::default());
        let (_, per_sec) = measure(&mut v, 13, 1_000.0);
        let n = per_sec.len() - 1;
        let mean = per_sec.iter().sum::<f64>() / per_sec.len() as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n {
            num += (per_sec[i] - mean) * (per_sec[i + 1] - mean);
        }
        for x in &per_sec {
            den += (x - mean) * (x - mean);
        }
        let rho = num / den;
        assert!(rho > 0.3, "lag-1 autocorrelation {rho}");
    }
}
