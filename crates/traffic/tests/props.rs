//! Property-based tests of the traffic sources and policers.

use proptest::prelude::*;
use simcore::{SimRng, SimTime};
use traffic::{Cbr, OnOff, PacketProcess, PeriodDist, Policer, SourceSpec, TokenBucketSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On/off sources hit their declared long-run average rate for
    /// arbitrary (burst rate, duty cycle) combinations.
    #[test]
    fn onoff_long_run_rate(
        seed in any::<u64>(),
        burst_kbps in 64u32..2_048,
        on_ms in 50u32..2_000,
        off_ms in 50u32..2_000,
    ) {
        let burst = burst_kbps as f64 * 1_000.0;
        let (on, off) = (on_ms as f64 / 1_000.0, off_ms as f64 / 1_000.0);
        let mut src = OnOff::new(burst, on, off, PeriodDist::Exponential, 125);
        let mut rng = SimRng::new(seed);
        let horizon = 2_000.0;
        let mut t = 0.0;
        let mut bytes = 0u64;
        loop {
            let (gap, size) = src.next_packet(&mut rng);
            t += gap.as_secs_f64();
            if t > horizon {
                break;
            }
            bytes += size as u64;
        }
        let rate = bytes as f64 * 8.0 / horizon;
        let expect = src.avg_rate_bps();
        prop_assert!(
            (rate - expect).abs() / expect < 0.15,
            "measured {rate} vs declared {expect}"
        );
    }

    /// Gaps are never negative and sizes match the configured packet size.
    #[test]
    fn onoff_emissions_well_formed(seed in any::<u64>(), pkt in 40u32..1500) {
        let mut src = OnOff::new(256_000.0, 0.5, 0.5, PeriodDist::Pareto(1.2), pkt);
        let mut rng = SimRng::new(seed);
        for _ in 0..1_000 {
            let (gap, size) = src.next_packet(&mut rng);
            prop_assert!(gap.as_secs_f64() >= 0.0);
            prop_assert_eq!(size, pkt);
        }
    }

    /// CBR through a policer at its own rate never drops (given one
    /// packet of slack for nanosecond rounding).
    #[test]
    fn cbr_conforms_to_own_bucket(rate_kbps in 64u32..4_096, pkt in 64u32..1_000) {
        let rate = rate_kbps as u64 * 1_000;
        let mut src = Cbr::new(rate as f64, pkt);
        let mut p = Policer::new(TokenBucketSpec::new(rate, 2.0 * pkt as f64));
        let mut rng = SimRng::new(1);
        let mut t = SimTime::ZERO;
        for _ in 0..5_000 {
            let (gap, size) = src.next_packet(&mut rng);
            t += gap;
            prop_assert!(p.conforms(size, t));
        }
    }

    /// A policer's accepted volume respects the (r, b) envelope for any
    /// offered pattern.
    #[test]
    fn policer_envelope(
        rate_kbps in 64u32..4_096,
        bucket in 200f64..50_000.0,
        offers in prop::collection::vec((0u64..200_000u64, 40u32..1500), 1..300),
    ) {
        let rate = rate_kbps as u64 * 1_000;
        let mut p = Policer::new(TokenBucketSpec::new(rate, bucket));
        let mut t = SimTime::ZERO;
        let mut accepted = 0u64;
        for (gap_us, size) in offers {
            t += simcore::SimDuration::from_micros(gap_us);
            if size as f64 <= bucket && p.conforms(size, t) {
                accepted += size as u64;
            }
        }
        let envelope = bucket + rate as f64 / 8.0 * t.as_secs_f64() + 1.0;
        prop_assert!(accepted as f64 <= envelope);
        prop_assert_eq!(p.passed() + p.dropped(), p.passed() + p.dropped());
    }

    /// Every Table 1 preset builds a process whose first emissions carry
    /// the spec's packet size, and declares a positive token rate.
    #[test]
    fn specs_are_consistent(seed in any::<u64>()) {
        for spec in [
            SourceSpec::exp1(),
            SourceSpec::exp2(),
            SourceSpec::exp3(),
            SourceSpec::exp4(),
            SourceSpec::poo1(),
            SourceSpec::starwars(),
        ] {
            let mut proc = spec.build();
            let mut rng = SimRng::new(seed);
            let (gap, size) = proc.next_packet(&mut rng);
            prop_assert!(gap.as_secs_f64() >= 0.0);
            prop_assert_eq!(size, spec.pkt_bytes);
            prop_assert!(spec.token_rate_bps() > 0);
            prop_assert!(spec.avg_rate_bps() > 0.0);
            // Declared average never exceeds the token (peak) rate.
            prop_assert!(spec.avg_rate_bps() <= spec.token_rate_bps() as f64 + 1e-9);
        }
    }
}
