//! # fluid — the paper's analytical models
//!
//! Section 2 of the paper argues architecture with two kinds of
//! mathematics, both implemented here:
//!
//! - [`statics`]: closed-form results (stolen bandwidth under fair
//!   queueing, acceptance-threshold windows, the in-band drop-rate floor,
//!   priority stealing);
//! - [`thrash`]: the dynamic fluid model behind Figure 1 — a CTMC over
//!   (admitted, probing) flow counts with perfect probing, evaluated by
//!   finite-horizon Monte-Carlo (the collapsed regime is absorbing, so
//!   the stationary distribution is uninformative — see `thrash` docs).

pub mod statics;
pub mod thrash;

pub use thrash::{fig1_sweep, RunAreas, ThrashModel, ThrashPoint};
