//! The thrashing fluid model of §2.2.3 (Figure 1).
//!
//! A single link of capacity C carries fluid flows of fixed rate r. Flows
//! arrive Poisson(λ) and start probing at full rate immediately; probe
//! lengths are exponential (mean `T`) and measurements are perfect. A
//! probe completing while the link has spare capacity admits its flow;
//! otherwise the flow *keeps probing* — this is the paper's thrashing
//! mechanism: "the number of probing flows begins to accumulate without
//! bound (because the incoming rate is higher than the outgoing rate)".
//! Admitted flows hold the link for an exponential lifetime and depart.
//!
//! The CTMC on (n admitted, k probing):
//!
//! - (n, k) → (n, k+1) at λ (arrival),
//! - (n, k) → (n−1, k) at n·μ (departure),
//! - (n, k) → (n+1, k−1) at k·μp if (n+k)·r ≤ C (successful probe);
//!   a completion in an overloaded state re-enters probing (self-loop).
//!
//! Once k exceeds C/r the chain can never admit again — the collapsed
//! regime is absorbing, so the *stationary* distribution is trivially the
//! collapse and Figure 1 is necessarily a finite-horizon measure. We
//! therefore evaluate the model exactly the way the paper evaluates its
//! packet simulations: time averages over a long horizon from an empty
//! start, with an initial warm-up discarded, pooled over seeds.
//!
//! **Parameter reconciliation.** The Fig 1 caption lists τ = 3.5 s,
//! 30 s lifetimes, a 10 Mbps link and 128 kbps flows. As printed that
//! offers 30/3.5 ≈ 8.6 flows against a 78-flow link (11 % load) — no
//! thrashing regime exists there under any probing semantics we could
//! construct, and with 300 s lifetimes (the simulation sections' value)
//! the system is *over* capacity and collapses at every probe length.
//! We keep the caption's link and flow rates and tune the demography to
//! τ = 0.315 s, 15 s lifetimes (≈ 61 % offered load), which places the
//! sharp metastability transition at ~2.6–3.0 s of probe length —
//! inside the caption's 1.8–3.6 s x-range, as published. The qualitative claims of
//! Fig 1 — high utilization and low in-band loss below a critical probe
//! length, utilization collapsing toward zero and in-band loss toward
//! one above it, identical utilization for in-band and out-of-band
//! probing, zero out-of-band data loss — all hold. See EXPERIMENTS.md.

use simcore::SimRng;

/// Model parameters.
#[derive(Clone, Copy, Debug)]
pub struct ThrashModel {
    /// Flow arrival rate λ, flows/second.
    pub lambda: f64,
    /// Mean flow lifetime 1/μ, seconds.
    pub mean_lifetime_s: f64,
    /// Mean probe length 1/μp, seconds.
    pub mean_probe_s: f64,
    /// Link capacity, bits/second.
    pub capacity_bps: f64,
    /// Per-flow rate, bits/second.
    pub flow_bps: f64,
    /// Truncation of the probing population (collapse diagnostic bound).
    pub max_probing: usize,
}

/// Raw time-integrals of one finite-horizon run (poolable across seeds).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunAreas {
    /// ∫ n dt over the measured window.
    pub area_n: f64,
    /// ∫ k dt.
    pub area_k: f64,
    /// ∫ load dt — total offered volume (data + probes; in-band probes
    /// and data are indistinguishable to the router, so a packet's loss
    /// probability is the link overload fraction regardless of kind).
    pub area_load: f64,
    /// ∫ load·ρ dt (volume lost in-band), ρ = (load−C)⁺/load.
    pub area_lost: f64,
    /// Measured window length.
    pub measured_s: f64,
}

impl RunAreas {
    /// Pool another run's integrals into this one.
    pub fn merge(&mut self, other: &RunAreas) {
        self.area_n += other.area_n;
        self.area_k += other.area_k;
        self.area_load += other.area_load;
        self.area_lost += other.area_lost;
        self.measured_s += other.measured_s;
    }
}

/// One point of Fig 1.
#[derive(Clone, Copy, Debug)]
pub struct ThrashPoint {
    /// Mean probe duration, seconds (x-axis).
    pub mean_probe_s: f64,
    /// Useful utilization E\[n\]·r/C (Fig 1a; identical for in-band and
    /// out-of-band probing).
    pub utilization: f64,
    /// In-band data packet loss fraction (Fig 1b; out-of-band is zero by
    /// construction).
    pub loss_in_band: f64,
    /// Mean number of probing flows (collapse diagnostic).
    pub mean_probing: f64,
}

impl ThrashModel {
    /// Fig 1 parameters (see the module's reconciliation note):
    /// 10 Mbps link, 128 kbps flows, 15 s lifetimes, τ = 0.315 s.
    pub fn fig1(mean_probe_s: f64) -> Self {
        assert!(mean_probe_s > 0.0);
        ThrashModel {
            lambda: 1.0 / 0.315,
            mean_lifetime_s: 15.0,
            mean_probe_s,
            capacity_bps: 10e6,
            flow_bps: 128e3,
            max_probing: 4_000,
        }
    }

    /// Maximum admitted flows: the largest n with n·r ≤ C.
    pub fn max_admitted(&self) -> usize {
        (self.capacity_bps / self.flow_bps).floor() as usize
    }

    /// Offered load in flows (λ/μ).
    pub fn offered_flows(&self) -> f64 {
        self.lambda * self.mean_lifetime_s
    }

    fn admit_ok(&self, n: usize, k: usize) -> bool {
        (n + k) as f64 * self.flow_bps <= self.capacity_bps + 1e-9
    }

    /// Instantaneous in-band overload fraction at state (n, k).
    fn overload(&self, n: usize, k: usize) -> f64 {
        let load = (n + k) as f64 * self.flow_bps;
        if load <= self.capacity_bps {
            0.0
        } else {
            (load - self.capacity_bps) / load
        }
    }

    /// Simulate the jump chain for `horizon_s` of model time from an
    /// empty system, discarding the first 20 % as warm-up. Returns the
    /// raw integrals for pooling.
    pub fn run(&self, horizon_s: f64, seed: u64) -> RunAreas {
        let mut rng = SimRng::new(seed);
        let mu = 1.0 / self.mean_lifetime_s;
        let mup = 1.0 / self.mean_probe_s;
        let (mut n, mut k) = (0usize, 0usize);
        let mut t = 0.0;
        let warm = horizon_s * 0.2;
        let mut a = RunAreas::default();
        while t < horizon_s {
            let rate = self.lambda + n as f64 * mu + k as f64 * mup;
            let dt = rng.exponential(1.0 / rate);
            if t >= warm {
                let span = dt.min(horizon_s - t);
                a.area_n += n as f64 * span;
                a.area_k += k as f64 * span;
                let load = (n + k) as f64 * self.flow_bps * span;
                a.area_load += load;
                a.area_lost += load * self.overload(n, k);
                a.measured_s += span;
            }
            t += dt;
            let x = rng.uniform() * rate;
            if x < self.lambda {
                // New flow starts probing (the truncation only guards the
                // event rate once the system has collapsed).
                k = (k + 1).min(self.max_probing);
            } else if x < self.lambda + n as f64 * mu {
                n -= 1;
            } else if k > 0 && self.admit_ok(n, k) {
                // A probe completes in an uncongested system: admitted.
                // Completions under congestion keep probing (self-loop).
                n += 1;
                k -= 1;
            }
        }
        a
    }

    /// One Fig 1 point: pool `seeds` runs of `horizon_s` each.
    pub fn point(&self, horizon_s: f64, seeds: u64) -> ThrashPoint {
        assert!(seeds > 0);
        let mut pooled = RunAreas::default();
        for s in 0..seeds {
            pooled.merge(&self.run(horizon_s, 1_000 + s));
        }
        ThrashPoint {
            mean_probe_s: self.mean_probe_s,
            utilization: pooled.area_n / pooled.measured_s * self.flow_bps / self.capacity_bps,
            loss_in_band: if pooled.area_load > 0.0 {
                pooled.area_lost / pooled.area_load
            } else {
                0.0
            },
            mean_probing: pooled.area_k / pooled.measured_s,
        }
    }
}

/// Sweep Fig 1's x-axis: one pooled point per probe duration.
pub fn fig1_sweep(probe_secs: &[f64], horizon_s: f64, seeds: u64) -> Vec<ThrashPoint> {
    probe_secs
        .iter()
        .map(|&t| ThrashModel::fig1(t).point(horizon_s, seeds))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_and_offered_load() {
        let m = ThrashModel::fig1(2.0);
        assert_eq!(m.max_admitted(), 78);
        assert!((m.offered_flows() - 47.6).abs() < 0.1);
    }

    #[test]
    fn short_probes_sustain_high_utilization() {
        let p = ThrashModel::fig1(1.0).point(6_000.0, 4);
        assert!(p.utilization > 0.5, "util {}", p.utilization);
        assert!(p.loss_in_band < 0.05, "loss {}", p.loss_in_band);
    }

    #[test]
    fn long_probes_collapse_utilization_and_raise_loss() {
        let p = ThrashModel::fig1(5.0).point(6_000.0, 4);
        assert!(p.utilization < 0.15, "util {}", p.utilization);
        // In-band, the collapsed system drops almost everything.
        assert!(p.loss_in_band > 0.8, "loss {}", p.loss_in_band);
        assert!(p.mean_probing > 100.0, "probing {}", p.mean_probing);
    }

    #[test]
    fn transition_falls_and_loss_rises_across_the_sweep() {
        let pts = fig1_sweep(&[1.0, 2.8, 5.0], 6_000.0, 4);
        assert!(
            pts[0].utilization > pts[2].utilization + 0.3,
            "no collapse: {} -> {}",
            pts[0].utilization,
            pts[2].utilization
        );
        assert!(pts[2].loss_in_band > pts[0].loss_in_band + 0.5);
        // The midpoint sits between the extremes (transition in range).
        assert!(pts[1].utilization <= pts[0].utilization + 0.02);
        assert!(pts[1].utilization >= pts[2].utilization - 0.02);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = ThrashModel::fig1(2.0);
        let a = m.run(2_000.0, 42);
        let b = m.run(2_000.0, 42);
        assert_eq!(a.area_n, b.area_n);
        assert_eq!(a.area_lost, b.area_lost);
    }

    #[test]
    fn overload_fraction_math() {
        let m = ThrashModel::fig1(2.0);
        assert_eq!(m.overload(10, 0), 0.0);
        // 100 flows of 128k on 10 Mbps: load 12.8M, overload 2.8/12.8.
        let o = m.overload(50, 50);
        assert!((o - (12.8 - 10.0) / 12.8).abs() < 1e-9);
    }

    #[test]
    fn areas_pool_linearly() {
        let m = ThrashModel::fig1(1.5);
        let a = m.run(2_000.0, 1);
        let b = m.run(2_000.0, 2);
        let mut pool = RunAreas::default();
        pool.merge(&a);
        pool.merge(&b);
        assert!((pool.area_n - (a.area_n + b.area_n)).abs() < 1e-9);
        assert!((pool.measured_s - (a.measured_s + b.measured_s)).abs() < 1e-9);
    }
}
