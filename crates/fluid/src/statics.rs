//! Closed-form architectural statics from §2.
//!
//! These are the little algebra results the paper's architectural
//! arguments rest on; having them as functions lets the examples and
//! tests state the arguments quantitatively.

/// §2.1.1 — stolen bandwidth under fair queueing. Two groups of flows
/// with rates `r1 < r2` share a max-min fair link. Small flows keep
/// arriving until they saturate their fair share; at that point the large
/// flows' loss fraction is `(r2 - r1) / r2`, even though they probed an
/// uncongested link.
pub fn fq_stolen_loss_fraction(r1: f64, r2: f64) -> f64 {
    assert!(r1 > 0.0 && r2 >= r1);
    (r2 - r1) / r2
}

/// §2.2.1 — the maximum number of same-rate flows (probing or accepted)
/// the link sustains under acceptance threshold ε:
/// `n = (C / r) · 1 / (1 − ε)`.
pub fn max_flows(capacity_bps: f64, rate_bps: f64, epsilon: f64) -> f64 {
    assert!(capacity_bps > 0.0 && rate_bps > 0.0 && (0.0..1.0).contains(&epsilon));
    capacity_bps / rate_bps / (1.0 - epsilon)
}

/// §2.2.1 — the relative size of the occupancy window in which only the
/// less-stringent group (threshold ε₂ > ε₁) is admitted:
/// `(n₂ − n₁) / n₂ = (ε₂ − ε₁) / (1 − ε₁)`.
pub fn threshold_window(eps1: f64, eps2: f64) -> f64 {
    assert!((0.0..1.0).contains(&eps1) && (eps1..1.0).contains(&eps2));
    (eps2 - eps1) / (1.0 - eps1)
}

/// §4.1 — the rule-of-thumb floor on the drop rate that in-band dropping
/// with ε = 0 can verify: with `n_packets` probe packets, a flow is
/// admitted with 50 % probability when the link drop rate is
/// `ν = 1 − 2^(−1/n)`.
pub fn in_band_drop_floor(n_packets: u32) -> f64 {
    assert!(n_packets > 0);
    1.0 - 2f64.powf(-1.0 / n_packets as f64)
}

/// §4.1 — admission probability under simple probing at ε = 0 when the
/// link drops a fraction `nu` of packets independently:
/// `(1 − ν)^n`.
pub fn admission_probability(nu: f64, n_packets: u32) -> f64 {
    assert!((0.0..=1.0).contains(&nu));
    (1.0 - nu).powi(n_packets as i32)
}

/// §2.1.3 — multiple priority levels with in-band probing: once the
/// higher level's load `n1 · r` reaches capacity, level-2 flows lose
/// everything. Returns the level-2 loss fraction given loads in bps.
pub fn priority_stealing_loss(level1_load: f64, level2_load: f64, capacity: f64) -> f64 {
    assert!(level1_load >= 0.0 && level2_load > 0.0 && capacity > 0.0);
    let leftover = (capacity - level1_load).max(0.0);
    ((level2_load - leftover) / level2_load).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fq_stealing_paper_example() {
        // "If we take r2 = 2 r1 then this loss fraction is 1/2."
        assert!((fq_stolen_loss_fraction(1.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(fq_stolen_loss_fraction(1.0, 1.0), 0.0);
    }

    #[test]
    fn max_flows_examples() {
        // 10 Mbps / 128 kbps = 78.125 at eps = 0.
        assert!((max_flows(10e6, 128e3, 0.0) - 78.125).abs() < 1e-9);
        // eps = 0.2 admits 25% more.
        assert!((max_flows(10e6, 128e3, 0.2) - 97.65625).abs() < 1e-9);
    }

    #[test]
    fn window_examples() {
        // Small thresholds -> small window.
        assert!((threshold_window(0.0, 0.05) - 0.05).abs() < 1e-12);
        assert!(threshold_window(0.01, 0.02) < 0.011);
        // Large eps2 dominates.
        assert!(threshold_window(0.0, 0.5) > 0.49);
    }

    #[test]
    fn drop_floor_matches_paper_rule_of_thumb() {
        // §4.1: for the basic scenario (slow-start probing of EXP1:
        // 496 probe packets) "this results in a rule-of-thumb drop rate
        // of 0.13%".
        let floor = in_band_drop_floor(496);
        assert!((floor - 0.0013).abs() < 2e-4, "floor {floor}");
        // And admission probability at that floor is 50%.
        let p = admission_probability(floor, 496);
        assert!((p - 0.5).abs() < 1e-6, "p {p}");
    }

    #[test]
    fn admission_probability_edges() {
        assert_eq!(admission_probability(0.0, 1000), 1.0);
        assert_eq!(admission_probability(1.0, 3), 0.0);
        assert!(admission_probability(0.01, 100) < 0.4);
    }

    #[test]
    fn priority_stealing() {
        // Level 1 saturates the link: level 2 completely starved.
        assert_eq!(priority_stealing_loss(10e6, 2e6, 10e6), 1.0);
        // Level 1 idle: no loss.
        assert_eq!(priority_stealing_loss(0.0, 2e6, 10e6), 0.0);
        // Half the level-2 load fits.
        assert!((priority_stealing_loss(9e6, 2e6, 10e6) - 0.5).abs() < 1e-12);
    }
}
