//! Robustness properties: bit-exact determinism under fault injection and
//! packet-conservation audits on the paper's topologies.

use endpoint_admission::eac::design::Design;
use endpoint_admission::eac::multihop::MultihopScenario;
use endpoint_admission::eac::probe::{Placement, ProbeStyle, Signal};
use endpoint_admission::eac::scenario::Scenario;
use proptest::prelude::*;

/// The Fig 2 single-bottleneck scenario with the full fault kit switched
/// on: a link flap, Bernoulli control-channel loss, verdict timeouts, the
/// conservation auditor and the event-budget watchdog.
fn faulty(seed: u64, ctrl_loss: f64, flap_at: f64) -> Scenario {
    Scenario::basic()
        .design(Design::endpoint(
            Signal::Drop,
            Placement::InBand,
            ProbeStyle::SlowStart,
            0.01,
        ))
        .horizon_secs(240.0)
        .warmup_secs(60.0)
        .seed(seed)
        .control_loss(ctrl_loss)
        .flap(flap_at, flap_at + 6.0)
        .verdict_timeout(5.0)
        .audited()
        .event_budget(500_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed + same FaultPlan ⇒ bit-identical Reports. Fault draws
    /// come from a dedicated RNG stream, so the whole run — traffic,
    /// probes, losses, flap timing — replays exactly.
    #[test]
    fn same_seed_same_fault_plan_is_bit_identical(
        seed in 1u64..1_000,
        loss_i in 0usize..3,
        flap_at in 70.0f64..180.0,
    ) {
        let losses = [0.0, 0.05, 0.15];
        let s = faulty(seed, losses[loss_i], flap_at);
        let a = s.run().expect("first run");
        let b = s.run().expect("second run");
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    /// Different seeds under the same FaultPlan still diverge.
    #[test]
    fn different_seeds_diverge_under_the_same_fault_plan(seed in 1u64..1_000) {
        let a = faulty(seed, 0.1, 100.0).run().expect("seed a");
        let b = faulty(seed + 1, 0.1, 100.0).run().expect("seed b");
        prop_assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}

#[test]
fn fig2_scenario_conserves_packets() {
    // Fault-free: every injected packet is delivered, queued, in flight,
    // or accounted as a drop.
    Scenario::basic()
        .horizon_secs(300.0)
        .warmup_secs(75.0)
        .seed(5)
        .audited()
        .run()
        .expect("fault-free conservation");
    // And with the full fault kit: wire losses, duplicates and down-drops
    // must balance the books too.
    let r = faulty(5, 0.1, 100.0).run().expect("faulty conservation");
    assert!(r.measured_s > 0.0);
}

#[test]
fn multihop_tables56_conserves_packets() {
    let r = MultihopScenario::tables56()
        .horizon_secs(400.0)
        .warmup_secs(100.0)
        .seed(2)
        .audited()
        .run()
        .expect("multi-hop conservation");
    assert_eq!(r.groups.len(), 4);
}
