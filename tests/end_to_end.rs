//! Cross-crate integration tests: the full probing protocol, the MBAC
//! benchmark and the measurement pipeline, exercised through the facade
//! crate end to end.

use endpoint_admission::eac::design::{Design, Group};
use endpoint_admission::eac::probe::{Placement, ProbeStyle, Signal};
use endpoint_admission::eac::scenario::Scenario;
use endpoint_admission::traffic::SourceSpec;

fn quick(design: Design, tau: f64, seed: u64) -> endpoint_admission::eac::Report {
    Scenario::basic()
        .design(design)
        .tau(tau)
        .horizon_secs(600.0)
        .warmup_secs(150.0)
        .seed(seed)
        .run()
        .expect("scenario run")
}

#[test]
fn same_seed_same_world_across_designs_is_deterministic() {
    let d = Design::endpoint(
        Signal::Mark,
        Placement::OutOfBand,
        ProbeStyle::SlowStart,
        0.05,
    );
    let a = quick(d, 3.5, 11);
    let b = quick(d, 3.5, 11);
    assert_eq!(a.utilization, b.utilization);
    assert_eq!(a.data_loss, b.data_loss);
    assert_eq!(a.blocking, b.blocking);
    assert_eq!(a.groups[0].data_sent, b.groups[0].data_sent);
}

#[test]
fn different_seeds_differ_but_agree_statistically() {
    let d = Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01);
    let a = quick(d, 3.5, 1);
    let b = quick(d, 3.5, 2);
    assert_ne!(a.groups[0].data_sent, b.groups[0].data_sent);
    assert!((a.utilization - b.utilization).abs() < 0.15);
}

#[test]
fn admission_control_actually_limits_load() {
    // Offered load ~400%: without admission control the link would melt;
    // with it, utilization stays near capacity and loss bounded.
    let d = Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01);
    let r = quick(d, 1.0, 3);
    assert!(r.blocking > 0.4, "blocking {}", r.blocking);
    assert!(
        r.utilization > 0.55 && r.utilization < 1.01,
        "util {}",
        r.utilization
    );
    assert!(r.data_loss < 0.1, "loss {}", r.data_loss);
}

#[test]
fn probe_overhead_is_modest_at_normal_load() {
    let d = Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01);
    let r = quick(d, 3.5, 4);
    assert!(
        r.probe_overhead < 0.10,
        "probe overhead {}",
        r.probe_overhead
    );
}

#[test]
fn marking_designs_mark_instead_of_dropping() {
    let mark = quick(
        Design::endpoint(Signal::Mark, Placement::InBand, ProbeStyle::SlowStart, 0.02),
        3.5,
        5,
    );
    assert!(
        mark.mark_fraction > 0.0,
        "virtual queue produced no marks: {mark:?}"
    );
    // Marks arrive before drops: the marking design's loss is below the
    // dropping design's at the same epsilon.
    let drop = quick(
        Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.02),
        3.5,
        5,
    );
    assert!(
        mark.data_loss <= drop.data_loss + 1e-3,
        "mark {} vs drop {}",
        mark.data_loss,
        drop.data_loss
    );
}

#[test]
fn mbac_blocking_grows_as_target_shrinks() {
    let strict = quick(Design::mbac(0.7), 2.0, 6);
    let loose = quick(Design::mbac(1.0), 2.0, 6);
    assert!(
        strict.blocking > loose.blocking,
        "eta=0.7 blocking {} vs eta=1.0 {}",
        strict.blocking,
        loose.blocking
    );
    assert!(strict.utilization < loose.utilization + 0.02);
}

#[test]
fn multi_group_scenarios_attribute_stats_per_group() {
    let d = Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.02);
    let r = Scenario::basic()
        .groups(vec![
            Group::new("EXP1", SourceSpec::exp1(), 3.0),
            Group::new("EXP2", SourceSpec::exp2(), 1.0),
        ])
        .design(d)
        .horizon_secs(600.0)
        .warmup_secs(150.0)
        .seed(7)
        .run()
        .expect("scenario run");
    assert_eq!(r.groups.len(), 2);
    let (g1, g2) = (&r.groups[0], &r.groups[1]);
    assert!(g1.decided > 0 && g2.decided > 0);
    // 3:1 weighting shows up in the arrival split.
    let ratio = g1.decided as f64 / g2.decided as f64;
    assert!(ratio > 1.8 && ratio < 5.0, "ratio {ratio}");
    // Aggregate counts equal the sum of groups.
    let sent: u64 = r.groups.iter().map(|g| g.data_sent).sum();
    assert!(sent > 0);
}

#[test]
fn rejected_flows_never_send_data() {
    // With eps=0 under heavy load many flows are rejected; every data
    // packet received must belong to an accepted flow, which shows up as
    // consistency between utilization and accepted counts.
    let d = Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::Simple, 0.0);
    let r = quick(d, 1.0, 8);
    assert!(r.blocking > 0.5);
    // Data was sent only by accepted flows: sent > 0 iff accepted > 0.
    let acc: u64 = r.groups.iter().map(|g| g.accepted).sum();
    let sent: u64 = r.groups.iter().map(|g| g.data_sent).sum();
    assert!(acc > 0 && sent > 0);
}

#[test]
fn longer_probes_reduce_loss_but_cost_utilization() {
    let d = Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01);
    let short = Scenario::basic()
        .design(d)
        .probe_secs(5.0)
        .horizon_secs(900.0)
        .warmup_secs(200.0)
        .seed(9)
        .run()
        .expect("scenario run");
    let long = Scenario::basic()
        .design(d)
        .probe_secs(25.0)
        .horizon_secs(900.0)
        .warmup_secs(200.0)
        .seed(9)
        .run()
        .expect("scenario run");
    // Fig 3's shape: longer probing spends more of the share on probes.
    assert!(
        long.probe_overhead > short.probe_overhead,
        "long {} vs short {}",
        long.probe_overhead,
        short.probe_overhead
    );
    assert!(long.data_loss <= short.data_loss + 5e-3);
}
