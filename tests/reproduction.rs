//! Shape tests against the paper's headline findings, at reduced scale.
//! These assert the *qualitative* results (who wins, what direction)
//! rather than absolute numbers — the quantitative record lives in
//! EXPERIMENTS.md.

use endpoint_admission::eac::design::{Design, Group};
use endpoint_admission::eac::probe::{Placement, ProbeStyle, Signal};
use endpoint_admission::eac::scenario::Scenario;
use endpoint_admission::fluid;
use endpoint_admission::traffic::SourceSpec;

fn basic(design: Design, seed: u64) -> endpoint_admission::eac::Report {
    Scenario::basic()
        .design(design)
        .horizon_secs(1_200.0)
        .warmup_secs(250.0)
        .seed(seed)
        .run()
        .expect("scenario run")
}

/// §4.1/Fig 2 — the range result: at ε = 0, out-of-band marking achieves
/// a far lower loss floor than in-band dropping for the same probing
/// length.
#[test]
fn fig2_out_of_band_marking_reaches_lower_loss_than_in_band_dropping() {
    let drop_ib = basic(
        Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.0),
        21,
    );
    let mark_oob = basic(
        Design::endpoint(
            Signal::Mark,
            Placement::OutOfBand,
            ProbeStyle::SlowStart,
            0.0,
        ),
        21,
    );
    assert!(
        mark_oob.data_loss < drop_ib.data_loss / 2.0,
        "mark oob {} should be well below drop in-band {}",
        mark_oob.data_loss,
        drop_ib.data_loss
    );
}

/// §4.1 — even at ε = 0, in-band dropping has a loss floor, of the order
/// of the rule-of-thumb 1 − 2^(−1/n).
#[test]
fn fig2_in_band_dropping_loss_floor() {
    let r = basic(
        Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.0),
        22,
    );
    let floor = fluid::statics::in_band_drop_floor(496); // slow-start EXP1 probe packets
    assert!(
        r.data_loss > floor / 10.0,
        "loss {} sits far below the rule-of-thumb floor {floor}",
        r.data_loss
    );
    assert!(r.data_loss < 0.05, "loss {} absurdly high", r.data_loss);
}

/// §4.2/Figs 4–5 — under ~400% offered load, slow-start probing keeps
/// utilization above simple probing (thrashing mitigation).
#[test]
fn fig4_slow_start_beats_simple_probing_under_high_load() {
    let mk = |style| {
        Scenario::basic()
            .design(Design::endpoint(
                Signal::Drop,
                Placement::InBand,
                style,
                0.01,
            ))
            .tau(1.0)
            .horizon_secs(1_200.0)
            .warmup_secs(250.0)
            .seed(23)
            .run()
            .expect("scenario run")
    };
    let simple = mk(ProbeStyle::Simple);
    let slow = mk(ProbeStyle::SlowStart);
    assert!(
        slow.utilization > simple.utilization - 0.02,
        "slow-start {} vs simple {}",
        slow.utilization,
        simple.utilization
    );
    // And the probe overhead of slow start is lower (it ramps).
    assert!(slow.probe_overhead < simple.probe_overhead + 1e-3);
}

/// §4.4/Table 3 — heterogeneous thresholds: a more stringent ε only buys
/// a higher blocking probability, not better service.
#[test]
fn table3_lower_epsilon_blocks_more_without_helping() {
    let d = Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.0);
    let r = Scenario::basic()
        .groups(vec![
            Group::new("low", SourceSpec::exp1(), 1.0).with_epsilon(0.0),
            Group::new("high", SourceSpec::exp1(), 1.0).with_epsilon(0.05),
        ])
        .design(d)
        .tau(2.5)
        .horizon_secs(1_500.0)
        .warmup_secs(300.0)
        .seed(24)
        .run()
        .expect("scenario run");
    let (low, high) = (&r.groups[0], &r.groups[1]);
    assert!(low.decided > 30 && high.decided > 30);
    assert!(
        low.blocking > high.blocking,
        "low-eps blocking {} should exceed high-eps {}",
        low.blocking,
        high.blocking
    );
    // Once admitted they share the same class: similar loss.
    assert!((low.loss - high.loss).abs() < 0.02);
}

/// §2.2.3/Fig 1 — the fluid model's sharp transition.
#[test]
fn fig1_fluid_transition_inside_published_range() {
    let before = fluid::ThrashModel::fig1(1.4).point(5_000.0, 4);
    let after = fluid::ThrashModel::fig1(4.5).point(5_000.0, 4);
    assert!(
        before.utilization > 0.5,
        "pre-transition {}",
        before.utilization
    );
    assert!(
        after.utilization < 0.25,
        "post-transition {}",
        after.utilization
    );
    assert!(
        after.loss_in_band > 0.7,
        "post-transition loss {}",
        after.loss_in_band
    );
}

/// §4.5/Table 4 — endpoint designs discriminate against large flows less
/// than MBAC does.
#[test]
fn table4_large_flows_blocked_more_than_small() {
    let d = Design::endpoint(Signal::Drop, Placement::InBand, ProbeStyle::SlowStart, 0.01);
    let r = Scenario::basic()
        .groups(vec![
            Group::new("EXP1", SourceSpec::exp1(), 1.0),
            Group::new("EXP2", SourceSpec::exp2(), 1.0),
            Group::new("EXP4", SourceSpec::exp4(), 1.0),
            Group::new("POO1", SourceSpec::poo1(), 1.0),
        ])
        .design(d)
        .tau(3.0)
        .horizon_secs(1_500.0)
        .warmup_secs(300.0)
        .seed(25)
        .run()
        .expect("scenario run");
    // EXP2 probes at 1024k, 4x the others: it faces higher blocking.
    let large = &r.groups[1];
    let small_avg = (r.groups[0].blocking + r.groups[2].blocking + r.groups[3].blocking) / 3.0;
    assert!(
        large.blocking >= small_avg,
        "large {} vs small avg {}",
        large.blocking,
        small_avg
    );
}

/// §4.1 — the loss-load trade: raising ε raises utilization and loss
/// together (the curve's two ends).
#[test]
fn loss_load_curve_moves_the_right_way() {
    let strict = basic(
        Design::endpoint(
            Signal::Drop,
            Placement::OutOfBand,
            ProbeStyle::SlowStart,
            0.0,
        ),
        26,
    );
    let loose = basic(
        Design::endpoint(
            Signal::Drop,
            Placement::OutOfBand,
            ProbeStyle::SlowStart,
            0.20,
        ),
        26,
    );
    assert!(
        loose.utilization >= strict.utilization - 0.02,
        "loose util {} vs strict {}",
        loose.utilization,
        strict.utilization
    );
    assert!(
        loose.blocking <= strict.blocking,
        "loose blocking {} vs strict {}",
        loose.blocking,
        strict.blocking
    );
}
