//! §2.1.2 end-to-end: the rate-limited strict-priority scheduler that
//! separates admission-controlled traffic from best effort. The
//! admission-controlled class must get its allocated share when it wants
//! it (never pre-empted), must never exceed it (never borrows), and best
//! effort must soak up whatever is left (the scheduler is
//! non-work-conserving only for the admission-controlled group).

use endpoint_admission::netsim::{
    Agent, Api, FlowId, Limit, Network, NodeId, Packet, Sim, StrictPrio, TrafficClass,
};
use endpoint_admission::simcore::{SimDuration, SimRng, SimTime};
use std::any::Any;

/// A jittered CBR source of one class.
struct Source {
    peer: NodeId,
    class: TrafficClass,
    rate_bps: f64,
    pkt: u32,
    rng: SimRng,
    seq: u64,
}

impl Agent for Source {
    fn on_start(&mut self, api: &mut Api) {
        api.timer_in(SimDuration::ZERO, 0, 0);
    }
    fn on_packet(&mut self, _p: Packet, _api: &mut Api) {}
    fn on_timer(&mut self, _k: u32, _d: u64, api: &mut Api) {
        let p = Packet::new(
            self.seq,
            FlowId(self.class as u64),
            api.node,
            self.peer,
            self.pkt,
            self.class,
            self.seq,
            api.now(),
        );
        self.seq += 1;
        api.send(p);
        let nominal = self.pkt as f64 * 8.0 / self.rate_bps;
        let gap = nominal * self.rng.uniform_range(0.95, 1.05);
        api.timer_in(SimDuration::from_secs_f64(gap), 0, 0);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct NullSink;
impl Agent for NullSink {
    fn on_packet(&mut self, _p: Packet, _api: &mut Api) {}
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Build a 10 Mbps link whose admission-controlled share is 3 Mbps, feed
/// it `ac_bps` of Data and `be_bps` of BestEffort, and return the two
/// classes' delivered rates over 20 s.
fn run(ac_bps: f64, be_bps: f64) -> (f64, f64) {
    const LINK: u64 = 10_000_000;
    const SHARE: u64 = 3_000_000;

    let mut net = Network::new();
    let ac_src = net.add_node();
    let be_src = net.add_node();
    let router = net.add_node();
    let dst = net.add_node();
    let fast = || Box::new(StrictPrio::admission_queue(Limit::Packets(100_000), false));
    net.add_link(
        ac_src,
        router,
        1_000_000_000,
        SimDuration::from_micros(10),
        fast(),
        None,
    );
    net.add_link(
        be_src,
        router,
        1_000_000_000,
        SimDuration::from_micros(10),
        fast(),
        None,
    );
    let qdisc = Box::new(StrictPrio::rate_limited_link(
        SHARE,
        Limit::Packets(200),
        Limit::Packets(200),
        false,
        1_500.0,
    ));
    let bottleneck = net.add_link(router, dst, LINK, SimDuration::from_millis(5), qdisc, None);

    let mut sim = Sim::new(net);
    if ac_bps > 0.0 {
        sim.attach(
            ac_src,
            Box::new(Source {
                peer: dst,
                class: TrafficClass::Data,
                rate_bps: ac_bps,
                pkt: 125,
                rng: SimRng::new(1),
                seq: 0,
            }),
        );
    }
    if be_bps > 0.0 {
        sim.attach(
            be_src,
            Box::new(Source {
                peer: dst,
                class: TrafficClass::BestEffort,
                rate_bps: be_bps,
                pkt: 1_000,
                rng: SimRng::new(2),
                seq: 0,
            }),
        );
    }
    sim.attach(dst, Box::new(NullSink));

    sim.run_until(SimTime::from_secs(20));
    let stats = &sim.net.link(bottleneck).stats;
    let rate = |c: TrafficClass| stats.class(c).transmitted_bytes.total() as f64 * 8.0 / 20.0;
    (rate(TrafficClass::Data), rate(TrafficClass::BestEffort))
}

#[test]
fn admission_controlled_class_never_exceeds_its_share() {
    // Offer 6 Mbps of admission-controlled traffic against a 3 Mbps share
    // on an otherwise idle link: the limiter must clamp it — no borrowing
    // even when the link has room (the probe-integrity requirement).
    let (ac, _) = run(6e6, 0.0);
    assert!(ac <= 3.1e6, "AC took {ac} bps of a 3 Mbps share");
    assert!(ac >= 2.8e6, "AC should saturate its share, got {ac}");
}

#[test]
fn best_effort_soaks_up_the_leftover() {
    let (ac, be) = run(6e6, 9e6);
    assert!((2.8e6..=3.1e6).contains(&ac), "AC rate {ac}");
    // BE gets ~7 Mbps (link minus the AC share).
    assert!(be >= 6.4e6, "BE rate {be}");
    assert!(ac + be <= 10.2e6, "combined {}", ac + be);
}

#[test]
fn best_effort_cannot_preempt_the_share() {
    // BE floods at 20 Mbps; AC offers exactly its share. AC must still
    // get through — strict priority protects it.
    let (ac, be) = run(2.9e6, 20e6);
    assert!(ac >= 2.75e6, "AC starved: {ac}");
    assert!((6.4e6..=7.4e6).contains(&be), "BE {be}");
}

#[test]
fn idle_share_is_not_given_away_to_admission_control() {
    // With no best effort at all, AC is still clamped: the scheduler is
    // non-work-conserving for the admission-controlled group, leaving
    // the link idle instead (§2.1.2).
    let (ac, be) = run(9e6, 0.0);
    assert!(ac <= 3.1e6, "AC borrowed idle bandwidth: {ac}");
    assert_eq!(be, 0.0);
}
